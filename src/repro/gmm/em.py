"""Expectation-Maximization training for the Gaussian mixture.

Sec. 3.3 of the paper: unsupervised EM with (1) an expectation step
computing, via Bayes' theorem, the probability of each trace belonging
to each Gaussian, (2) a maximization step updating ``pi``, ``mu`` and
``Sigma``, and (3) a convergence test on the change of the maximum
likelihood estimate between iterations.

Two execution paths share the trainer:

* The **reference path** (:meth:`EMTrainer.fit_reference`, built on
  :meth:`EMTrainer._fit_once`): sequential restarts threaded through
  one rng, reference k-means++ seeding, and the triangular-solve
  E-step of :mod:`repro.gmm.linalg`.  It is the executable
  specification and the baseline ``benchmarks/bench_train_throughput``
  measures against.
* The **fast path** (:meth:`EMTrainer.fit`, the default): restarts
  derive independent child rngs up front, seed through the vectorized
  :func:`repro.gmm.kmeans.kmeans_fast`, and run EM with a fused
  blocked E+M pass whose log-density is a single quadratic-form GEMM
  (``weighted = F @ coef.T + const`` over the precomputed quadratic
  features ``F``), with a per-component cancellation guard that falls
  back to the exact triangular solve when the expansion would lose
  precision.  All ``n_init`` restarts can run **stacked** in one pass
  (components concatenated along the mixture axis) or sequentially or
  under a :class:`~repro.core.parallel.ParallelExecutor` -- the three
  modes produce *identical* models at equal seeds, a property the
  training bench asserts per row.  A ``warm_start`` skips seeding
  entirely and iterates from a caller-supplied mixture, which is how
  the serving loop's :class:`~repro.serving.refresh.ModelRefresher`
  folds drifted traffic in without paying initialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gmm import linalg
from repro.gmm.kmeans import kmeans, kmeans_fast
from repro.gmm.model import GaussianMixture

#: Valid restart-execution modes of the fast path.
RESTART_MODES = ("batched", "sequential")

#: Valid seeding implementations (``init="kmeans"`` only).
SEEDINGS = ("fast", "reference")

#: Rows per block of the fused E+M pass.  Small enough that one
#: block's ``(rows, R * K)`` weighted-density slab stays cache-hot
#: across the softmax passes, large enough to amortise call overhead.
_EM_BLOCK_ROWS = 2048

#: Absolute tolerance on the Mahalanobis term below which the
#: quadratic-form expansion is accepted; components whose worst-case
#: cancellation error (``eps * |largest term|``) exceeds it are
#: rescored through the exact triangular solve.  The bound is very
#: conservative (global point span times the component's largest
#: precision entry), so the tolerance is set well above the noise of
#: healthy standardised fits -- including collapsed components on
#: discrete heavy-tailed features -- while still catching the
#: catastrophic raw-scale case (errors of order one and far beyond).
#: A 1e-4 Mahalanobis error perturbs log-densities by at most 5e-5,
#: orders of magnitude below the convergence tolerances in use.
_MAHA_GUARD_TOL = 1e-4


def _stacked_softmax(
    stacked: np.ndarray, with_responsibilities: bool = True
) -> tuple[np.ndarray | None, np.ndarray]:
    """Masked softmax over the last axis of a ``(rows, R, K)`` slab.

    Returns ``(responsibilities, log_norm)`` with shapes
    ``(rows, R, K)`` / ``(rows, R)``; pass
    ``with_responsibilities=False`` to get ``(None, log_norm)``.
    Rows that are ``-inf`` under every component yield ``-inf``
    normalisers (and NaN responsibilities, matching the reference
    E-step).  The one shared implementation keeps the E-step, its
    suspect-covariance recompute, and both fast scorers numerically
    in lockstep.
    """
    peak = stacked.max(axis=2)
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    shifted = np.exp(stacked - safe_peak[:, :, None])
    totals = shifted.sum(axis=2)
    responsibilities = None
    with np.errstate(divide="ignore", invalid="ignore"):
        if with_responsibilities:
            responsibilities = shifted / totals[:, :, None]
        log_norm = np.log(totals) + safe_peak
    log_norm = np.where(np.isfinite(peak), log_norm, -np.inf)
    return responsibilities, log_norm


@dataclass(frozen=True)
class FitResult:
    """Outcome of one EM fit.

    Attributes
    ----------
    model:
        The trained :class:`GaussianMixture`.
    converged:
        Whether the MLE-change test fired before ``max_iter``.
    n_iter:
        EM iterations executed.
    log_likelihood:
        Final mean per-sample log-likelihood.
    history:
        Mean log-likelihood after each iteration (monotonically
        non-decreasing -- a property the test suite asserts).
    """

    model: GaussianMixture
    converged: bool
    n_iter: int
    log_likelihood: float
    history: tuple[float, ...] = field(repr=False, default=())


class _QuadScorer:
    """Quadratic-form log-density machinery for one fit.

    The per-component log-density is an affine function of the
    quadratic feature expansion of each point::

        log N(x | mu_k, Sigma_k) + log pi_k  =  F(x) @ coef_k + const_k

    with ``F(x) = [x_i x_j (i <= j), x_i]`` and ``coef_k`` built from
    the precision matrix ``P_k = Sigma_k^{-1}``.  ``F`` depends only
    on the points, so a fit builds it once and every E-step becomes a
    single ``(N, T) @ (T, K)`` GEMM -- replacing the per-component
    triangular-solve pass, which allocated ``(N, K, D)`` temporaries.

    The expansion cancels catastrophically when ``|P| * |x - mu|^2``
    terms dwarf the resulting Mahalanobis value (raw-scale data far
    from the origin with near-singular components); ``coefficients``
    therefore also returns a per-component suspect mask, and the
    E-step rescores suspect components through the exact solve.
    """

    def __init__(self, points: np.ndarray) -> None:
        n, d = points.shape
        self.d = d
        self.pairs = [
            (i, j) for i in range(d) for j in range(i, d)
        ]
        t = len(self.pairs)
        features = np.empty((n, t + d), dtype=np.float64)
        for column, (i, j) in enumerate(self.pairs):
            np.multiply(
                points[:, i], points[:, j], out=features[:, column]
            )
        features[:, t:] = points
        self.features = features
        self.span = float(np.abs(points).max()) if n else 0.0
        self._stat_matrix: np.ndarray | None = None

    def stat_matrix(
        self, points: np.ndarray, moment_matrix: np.ndarray
    ) -> np.ndarray:
        """Per-sample sufficient-statistic columns ``[x, mm, 1]``.

        The M-step's three accumulations (component mass, first
        moments, shifted second moments) become *one* GEMM against
        this matrix.  Beyond speed, the single GEMM is what makes a
        stacked multi-restart pass bit-identical to single-restart
        passes: a GEMM's per-element accumulation order depends only
        on the contraction (row) dimension, whereas numpy's axis-0
        ``sum`` switches between pairwise and sequential accumulation
        with the column count.

        Both inputs are loop-invariant for one fit, so the matrix is
        built once and cached for every subsequent EM iteration.
        """
        if self._stat_matrix is None:
            n, d = points.shape
            stats = np.empty((n, d + d * d + 1), dtype=np.float64)
            stats[:, :d] = points
            stats[:, d : d + d * d] = moment_matrix
            stats[:, -1] = 1.0
            self._stat_matrix = stats
        return self._stat_matrix

    def coefficients(
        self,
        log_weights: np.ndarray,
        means: np.ndarray,
        log_det: np.ndarray,
        covariances: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-component ``(coef, const, suspect)`` of the expansion."""
        m, d = means.shape
        precision = np.linalg.inv(covariances)
        pm = np.einsum("kij,kj->ki", precision, means)
        t = len(self.pairs)
        coef = np.empty((m, t + d), dtype=np.float64)
        for column, (i, j) in enumerate(self.pairs):
            scale = -0.5 if i == j else -1.0
            coef[:, column] = scale * precision[:, i, j]
        coef[:, t:] = pm
        mu_pm = np.einsum("ki,ki->k", means, pm)
        const = (
            -0.5 * (d * np.log(2.0 * np.pi) + log_det + mu_pm)
            + log_weights
        )
        p_max = np.abs(precision).reshape(m, -1).max(axis=1)
        mu_span = (
            np.abs(means).max(axis=1) if d else np.zeros(m)
        )
        term_scale = p_max * (self.span + mu_span) ** 2
        suspect = (
            np.finfo(np.float64).eps * term_scale > _MAHA_GUARD_TOL
        )
        return coef, const, suspect


class EMTrainer:
    """Expectation-Maximization trainer for :class:`GaussianMixture`.

    Parameters
    ----------
    n_components:
        Number of Gaussians ``K`` (the paper's prototype uses 256; the
        simulator default in :mod:`repro.core.config` is smaller because
        miss-rate results saturate well below that on synthetic traces).
    max_iter:
        Upper bound on EM iterations.
    tol:
        Convergence threshold on the change in mean log-likelihood
        between iterations (the "change in MLE" test of Sec. 3.3).
    reg_covar:
        Diagonal ridge added to every covariance at each M-step, keeping
        components positive-definite when they collapse onto few points.
    init:
        ``"kmeans"`` (k-means++ seeding then per-cluster moments, the
        default) or ``"random"`` (random responsibilities).
    n_init:
        Number of independent restarts; the fit with the best final
        log-likelihood wins.
    seeding:
        ``"fast"`` (default) seeds ``init="kmeans"`` restarts through
        the vectorized :func:`~repro.gmm.kmeans.kmeans_fast`;
        ``"reference"`` uses the reference :func:`~repro.gmm.kmeans.
        kmeans`.  Only the fast :meth:`fit` consults this -- the
        reference path always seeds through the reference k-means.
    restart_mode:
        ``"batched"`` (default) runs all ``n_init`` restarts of
        :meth:`fit` stacked in one fused pass; ``"sequential"`` runs
        them one at a time.  Both produce identical models at equal
        seeds (asserted by the training bench and the gmm test
        suite).
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        init: str = "kmeans",
        n_init: int = 1,
        seeding: str = "fast",
        restart_mode: str = "batched",
    ) -> None:
        if n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        if init not in ("kmeans", "random"):
            raise ValueError(f"unknown init method: {init!r}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if seeding not in SEEDINGS:
            raise ValueError(
                f"seeding must be one of {SEEDINGS}, got {seeding!r}"
            )
        if restart_mode not in RESTART_MODES:
            raise ValueError(
                f"restart_mode must be one of {RESTART_MODES},"
                f" got {restart_mode!r}"
            )
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.init = init
        self.n_init = n_init
        self.seeding = seeding
        self.restart_mode = restart_mode

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _initial_parameters(
        self,
        points: np.ndarray,
        rng: np.random.Generator,
        moments=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce (weights, means, covariances) to start EM from.

        Reference-path initialisation: always the reference k-means.
        """
        n, d = points.shape
        k = self.n_components
        if self.init == "kmeans":
            result = kmeans(points, k, rng)
            labels = result.labels
            responsibilities = np.zeros((n, k), dtype=np.float64)
            responsibilities[np.arange(n), labels] = 1.0
        else:
            responsibilities = rng.random((n, k))
            responsibilities /= responsibilities.sum(axis=1, keepdims=True)
        return self._m_step(points, responsibilities, moments)

    def _initial_responsibilities(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Fast-path seeding: one ``(N, K)`` responsibility matrix."""
        n = points.shape[0]
        k = self.n_components
        if self.init == "kmeans":
            run = kmeans_fast if self.seeding == "fast" else kmeans
            labels = run(points, k, rng).labels
            responsibilities = np.zeros((n, k), dtype=np.float64)
            responsibilities[np.arange(n), labels] = 1.0
            return responsibilities
        responsibilities = rng.random((n, k))
        responsibilities /= responsibilities.sum(axis=1, keepdims=True)
        return responsibilities

    # ------------------------------------------------------------------
    # E and M steps (reference)
    # ------------------------------------------------------------------
    @staticmethod
    def _moment_features(
        points: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(global mean, per-sample shifted second moments).

        Both depend only on ``points``, so a fit computes them once
        and reuses them across every M-step (the flattened moment
        matrix is the larger of the two: ``(N, D*D)``).
        """
        n, d = points.shape
        global_mean = points.mean(axis=0)
        shifted = points - global_mean  # (N, D)
        moment_matrix = (
            shifted[:, :, None] * shifted[:, None, :]
        ).reshape(n, d * d)
        return global_mean, moment_matrix

    def _m_step(
        self,
        points: np.ndarray,
        responsibilities: np.ndarray,
        moments: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Maximisation step: moment-match each component.

        Given responsibilities ``r_{nk}``, computes

        * ``N_k = sum_n r_{nk}``
        * ``pi_k = N_k / N``
        * ``mu_k = sum_n r_{nk} x_n / N_k``
        * ``Sigma_k = sum_n r_{nk} (x_n - mu_k)(x_n - mu_k)^T / N_k``

        with a ``reg_covar`` ridge on each ``Sigma_k`` diagonal.
        """
        n, d = points.shape
        k = responsibilities.shape[1]
        nk = responsibilities.sum(axis=0)  # (K,)
        # A component that lost all mass keeps a tiny floor so the
        # division below stays finite; its weight becomes ~0.
        nk_safe = np.maximum(nk, 10.0 * np.finfo(np.float64).tiny)
        weights = nk / n
        weights = weights / weights.sum()
        means = (responsibilities.T @ points) / nk_safe[:, None]
        # All K scatter matrices from one GEMM over per-sample second
        # moments -- replaces the former component-at-a-time Python
        # loop (the EM hot spot: K skinny matmuls plus 3K
        # temporaries per iteration).  Moments are taken around the
        # *global* mean, so the usual E[yy^T] - E[y]E[y]^T
        # cancellation is scaled by the data spread rather than the
        # raw feature magnitude (numerically benign), and the result
        # is exactly symmetric.
        if moments is None:
            moments = self._moment_features(points)
        global_mean, moment_matrix = moments
        second_moment = (
            responsibilities.T @ moment_matrix
        ).reshape(k, d, d) / nk_safe[:, None, None]
        delta = means - global_mean  # (K, D)
        covariances = second_moment - delta[:, :, None] * delta[:, None, :]
        # A zero-mass component has means[j] = 0 (not the conditional
        # mean), so the identity above would yield the spurious
        # -global_mean outer product; match the old per-component
        # loop, which degraded to the regularized zero matrix.
        dead = nk <= 10.0 * np.finfo(np.float64).tiny
        if np.any(dead):
            covariances[dead] = 0.0
        # Cancellation guard: the shifted-moment identity loses about
        # eps * |terms| of absolute accuracy, which can swamp (or turn
        # negative) a genuinely tiny variance when a component sits
        # far from the global mean of raw-scale data.  Components
        # whose smallest variance falls inside that noise band are
        # recomputed with the exact centered form (PSD by
        # construction); the suspect set is empty on standardised
        # features, keeping the fast path one GEMM.
        eps = np.finfo(np.float64).eps
        term_scale = np.abs(second_moment).reshape(k, -1).max(axis=1)
        min_variance = covariances[:, np.arange(d), np.arange(d)].min(
            axis=1
        )
        suspect = (min_variance <= 64.0 * eps * term_scale) & ~dead
        for j in np.nonzero(suspect)[0]:
            centered = points - means[j]
            weighted = responsibilities[:, j : j + 1] * centered
            covariances[j] = (weighted.T @ centered) / nk_safe[j]
        covariances = linalg.regularize_covariances(
            covariances, self.reg_covar
        )
        return weights, means, covariances

    def _e_step(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Expectation step.

        Returns the responsibility matrix ``(N, K)`` and the mean
        per-sample log-likelihood under the current parameters.
        """
        log_density = linalg.log_gaussian_density(points, means, covariances)
        with np.errstate(divide="ignore"):
            weighted = log_density + np.log(weights)[None, :]
        log_norm = linalg.logsumexp(weighted, axis=1)
        log_resp = weighted - log_norm[:, None]
        return np.exp(log_resp), float(np.mean(log_norm))

    # ------------------------------------------------------------------
    # Fused blocked E+M pass (fast path)
    # ------------------------------------------------------------------
    def _stats_to_params(
        self,
        nk: np.ndarray,
        sum_points: np.ndarray,
        sum_moments: np.ndarray,
        n: int,
        moments: tuple[np.ndarray, np.ndarray],
        n_restarts: int,
        exact_cov,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """M-step closed form from accumulated sufficient statistics.

        Mirrors :meth:`_m_step` (same dead-component and cancellation
        guards) but consumes per-component sums instead of the full
        responsibility matrix; ``exact_cov(j, mean_j, nk_safe_j)``
        supplies the exact centered covariance for suspect
        components.  Weights normalise per restart block of
        ``n_components`` columns, so a stacked call is exactly a
        sequence of independent single-restart calls.
        """
        d = moments[0].shape[0]
        k = self.n_components
        m = nk.shape[0]
        nk_safe = np.maximum(nk, 10.0 * np.finfo(np.float64).tiny)
        weights = (nk / n).reshape(n_restarts, k)
        weights = weights / weights.sum(axis=1, keepdims=True)
        weights = weights.reshape(m)
        means = sum_points / nk_safe[:, None]
        second_moment = sum_moments.reshape(m, d, d) / nk_safe[
            :, None, None
        ]
        global_mean = moments[0]
        delta = means - global_mean
        covariances = (
            second_moment - delta[:, :, None] * delta[:, None, :]
        )
        dead = nk <= 10.0 * np.finfo(np.float64).tiny
        if np.any(dead):
            covariances[dead] = 0.0
        eps = np.finfo(np.float64).eps
        term_scale = np.abs(second_moment).reshape(m, -1).max(axis=1)
        min_variance = covariances[:, np.arange(d), np.arange(d)].min(
            axis=1
        )
        suspect = (min_variance <= 64.0 * eps * term_scale) & ~dead
        for j in np.nonzero(suspect)[0]:
            covariances[j] = exact_cov(j, means[j], nk_safe[j])
        covariances = linalg.regularize_covariances(
            covariances, self.reg_covar
        )
        return weights, means, covariances

    def _block_weighted(
        self,
        quad: _QuadScorer,
        points: np.ndarray,
        lo: int,
        hi: int,
        coef: np.ndarray,
        const: np.ndarray,
        suspect_cols: np.ndarray,
        means: np.ndarray,
        factors: np.ndarray,
        log_det: np.ndarray,
        log_weights: np.ndarray,
    ) -> np.ndarray:
        """One block's weighted log-densities ``(rows, M)``.

        Quadratic-form GEMM per restart block of ``n_components``
        columns (one GEMM of identical shape whether the pass is
        stacked or single-restart -- BLAS may pick different kernels
        for different output widths, so a single wide GEMM would
        break the stacked/sequential identity), with suspect columns
        rescored through the exact triangular solve.
        """
        k = self.n_components
        m = coef.shape[0]
        features = quad.features[lo:hi]
        weighted = np.empty((hi - lo, m), dtype=np.float64)
        for r in range(m // k):
            cols = slice(r * k, (r + 1) * k)
            weighted[:, cols] = features @ coef[cols].T
        weighted += const
        if suspect_cols.size:
            d = points.shape[1]
            maha = linalg.mahalanobis_squared_batch(
                points[lo:hi],
                means[suspect_cols],
                factors[suspect_cols],
            )
            weighted[:, suspect_cols] = (
                -0.5
                * (
                    d * np.log(2.0 * np.pi)
                    + log_det[suspect_cols]
                    + maha
                )
                + log_weights[suspect_cols]
            )
        return weighted

    def _em_pass(
        self,
        points: np.ndarray,
        quad: _QuadScorer,
        moments: tuple[np.ndarray, np.ndarray],
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
        n_restarts: int,
    ):
        """One fused E+M sweep over ``n_restarts`` stacked restarts.

        Blocks of rows go through: quadratic-GEMM weighted densities,
        per-restart softmax (responsibilities never materialise
        beyond the block), and accumulation of the M-step sufficient
        statistics -- so each block's slab stays cache-hot across all
        passes.  Returns per-restart mean log-likelihoods and the
        updated parameters.

        Block boundaries depend only on ``N``, every per-element
        operation only on its own restart's columns, and statistic
        accumulation only on block order -- which is why a stacked
        pass is bit-identical to running each restart alone.
        """
        n, d = points.shape
        m = weights.shape[0]
        k = self.n_components
        factors = linalg.cholesky_batch(covariances)
        log_det = linalg.log_det_from_cholesky(factors)
        with np.errstate(divide="ignore"):
            log_weights = np.log(weights)
        coef, const, suspect = quad.coefficients(
            log_weights, means, log_det, covariances
        )
        suspect_cols = np.nonzero(suspect)[0]
        stat_matrix = quad.stat_matrix(points, moments[1])
        stat_sums = np.zeros(
            (m, stat_matrix.shape[1]), dtype=np.float64
        )
        ll_sums = np.zeros(n_restarts, dtype=np.float64)
        for lo in range(0, n, _EM_BLOCK_ROWS):
            hi = min(lo + _EM_BLOCK_ROWS, n)
            weighted = self._block_weighted(
                quad, points, lo, hi, coef, const, suspect_cols,
                means, factors, log_det, log_weights,
            )
            resp, norm = _stacked_softmax(
                weighted.reshape(hi - lo, n_restarts, k)
            )
            # Per-restart accumulation with mode-independent shapes:
            # contiguous column sums (a strided axis-0 reduction
            # changes numpy's accumulation path with the restart
            # count) and one (K, rows) @ (rows, stats) GEMM per
            # restart (identical shape stacked or alone) keep the
            # batched pass bit-identical to sequential restarts.
            for r in range(n_restarts):
                ll_sums[r] += np.ascontiguousarray(norm[:, r]).sum()
                block = np.ascontiguousarray(resp[:, r, :])
                cols = slice(r * k, (r + 1) * k)
                stat_sums[cols] += block.T @ stat_matrix[lo:hi]
        nk = stat_sums[:, -1]
        sum_points = stat_sums[:, :d]
        sum_moments = stat_sums[:, d : d + d * d]

        def exact_cov(j: int, mean_j: np.ndarray, nk_safe_j: float):
            """Exact centered covariance for one suspect component,
            recomputing its responsibilities block by block."""
            restart = j // k
            cov = np.zeros((d, d), dtype=np.float64)
            cols = slice(restart * k, (restart + 1) * k)
            r_suspects = suspect_cols[
                (suspect_cols >= restart * k)
                & (suspect_cols < (restart + 1) * k)
            ] - restart * k
            for lo in range(0, n, _EM_BLOCK_ROWS):
                hi = min(lo + _EM_BLOCK_ROWS, n)
                weighted = self._block_weighted(
                    quad, points, lo, hi,
                    coef[cols], const[cols], r_suspects,
                    means[cols], factors[cols], log_det[cols],
                    log_weights[cols],
                )
                resp, _ = _stacked_softmax(
                    weighted.reshape(hi - lo, 1, k)
                )
                column = resp.reshape(hi - lo, k)[:, j - restart * k]
                centered = points[lo:hi] - mean_j
                cov += (column[:, None] * centered).T @ centered
            return cov / nk_safe_j

        new_params = self._stats_to_params(
            nk, sum_points, sum_moments, n, moments, n_restarts,
            exact_cov,
        )
        return ll_sums / n, new_params

    def _log_score_means(
        self,
        points: np.ndarray,
        quad: _QuadScorer,
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
        n_restarts: int,
    ) -> np.ndarray:
        """Final per-restart mean log-likelihood (fast density)."""
        n = points.shape[0]
        k = self.n_components
        factors = linalg.cholesky_batch(covariances)
        log_det = linalg.log_det_from_cholesky(factors)
        with np.errstate(divide="ignore"):
            log_weights = np.log(weights)
        coef, const, suspect = quad.coefficients(
            log_weights, means, log_det, covariances
        )
        suspect_cols = np.nonzero(suspect)[0]
        ll_sums = np.zeros(n_restarts, dtype=np.float64)
        for lo in range(0, n, _EM_BLOCK_ROWS):
            hi = min(lo + _EM_BLOCK_ROWS, n)
            weighted = self._block_weighted(
                quad, points, lo, hi, coef, const, suspect_cols,
                means, factors, log_det, log_weights,
            )
            _, norm = _stacked_softmax(
                weighted.reshape(hi - lo, n_restarts, k),
                with_responsibilities=False,
            )
            for r in range(n_restarts):
                ll_sums[r] += np.ascontiguousarray(norm[:, r]).sum()
        return ll_sums / n

    def _fit_restarts(
        self,
        points: np.ndarray,
        seeds=None,
        warm_start: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> list[FitResult]:
        """Fast-path EM over stacked restarts (or one warm start).

        ``seeds`` are per-restart child seeds; each restart seeds its
        initial responsibilities from its own fresh rng, so the
        result is independent of whether restarts run stacked here or
        one call at a time -- the identity the bench asserts.  With
        ``warm_start`` the (single) run skips seeding and iterates
        from the given ``(weights, means, covariances)``.
        """
        n, d = points.shape
        k = self.n_components
        moments = self._moment_features(points)
        quad = _QuadScorer(points)
        if warm_start is not None:
            n_restarts = 1
            weights = np.array(
                warm_start[0], dtype=np.float64
            ).reshape(k)
            means = np.array(
                warm_start[1], dtype=np.float64
            ).reshape(k, d)
            covariances = np.array(
                warm_start[2], dtype=np.float64
            ).reshape(k, d, d)
        else:
            n_restarts = len(seeds)
            responsibilities = np.empty(
                (n, n_restarts * k), dtype=np.float64
            )
            for r, seed in enumerate(seeds):
                rng = np.random.default_rng(int(seed))
                responsibilities[:, r * k : (r + 1) * k] = (
                    self._initial_responsibilities(points, rng)
                )
            stat_matrix = quad.stat_matrix(points, moments[1])
            stat_sums = np.empty(
                (n_restarts * k, stat_matrix.shape[1]),
                dtype=np.float64,
            )
            for r in range(n_restarts):
                cols = slice(r * k, (r + 1) * k)
                block = np.ascontiguousarray(
                    responsibilities[:, cols]
                )
                stat_sums[cols] = block.T @ stat_matrix
            nk = stat_sums[:, -1]
            sum_points = stat_sums[:, :d]
            sum_moments = stat_sums[:, d : d + d * d]

            def exact_cov(j, mean_j, nk_safe_j):
                centered = points - mean_j
                weighted = responsibilities[:, j : j + 1] * centered
                return (weighted.T @ centered) / nk_safe_j

            weights, means, covariances = self._stats_to_params(
                nk, sum_points, sum_moments, n, moments, n_restarts,
                exact_cov,
            )
            del responsibilities

        active = np.ones(n_restarts, dtype=bool)
        previous = np.full(n_restarts, -np.inf)
        histories: list[list[float]] = [[] for _ in range(n_restarts)]
        n_iter = np.zeros(n_restarts, dtype=np.int64)
        converged = np.zeros(n_restarts, dtype=bool)
        weights = weights.reshape(n_restarts, k)
        means = means.reshape(n_restarts, k, d)
        covariances = covariances.reshape(n_restarts, k, d, d)
        for iteration in range(1, self.max_iter + 1):
            alive = np.nonzero(active)[0]
            if alive.size == 0:
                break
            lls, (w_new, m_new, c_new) = self._em_pass(
                points,
                quad,
                moments,
                weights[alive].reshape(-1),
                means[alive].reshape(-1, d),
                covariances[alive].reshape(-1, d, d),
                alive.size,
            )
            weights[alive] = w_new.reshape(alive.size, k)
            means[alive] = m_new.reshape(alive.size, k, d)
            covariances[alive] = c_new.reshape(alive.size, k, d, d)
            n_iter[alive] = iteration
            for position, r in enumerate(alive):
                histories[r].append(float(lls[position]))
            done = np.abs(lls - previous[alive]) < self.tol
            converged[alive[done]] = True
            previous[alive] = lls
            active[alive[done]] = False

        repaired = np.empty_like(covariances)
        for r in range(n_restarts):
            repaired[r] = linalg.ensure_positive_definite(
                covariances[r], self.reg_covar
            )
        final_lls = self._log_score_means(
            points,
            quad,
            weights.reshape(-1),
            means.reshape(-1, d),
            repaired.reshape(-1, d, d),
            n_restarts,
        )
        return [
            FitResult(
                model=GaussianMixture(
                    weights[r], means[r], repaired[r]
                ),
                converged=bool(converged[r]),
                n_iter=int(n_iter[r]),
                log_likelihood=float(final_lls[r]),
                history=tuple(histories[r]),
            )
            for r in range(n_restarts)
        ]

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def _fit_once(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> FitResult:
        """One reference-path restart (executable specification)."""
        moments = self._moment_features(points)
        weights, means, covariances = self._initial_parameters(
            points, rng, moments
        )
        history: list[float] = []
        previous = -np.inf
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            responsibilities, log_likelihood = self._e_step(
                points, weights, means, covariances
            )
            weights, means, covariances = self._m_step(
                points, responsibilities, moments
            )
            history.append(log_likelihood)
            if abs(log_likelihood - previous) < self.tol:
                converged = True
                break
            previous = log_likelihood
        covariances = linalg.ensure_positive_definite(
            covariances, self.reg_covar
        )
        model = GaussianMixture(weights, means, covariances)
        return FitResult(
            model=model,
            converged=converged,
            n_iter=n_iter,
            log_likelihood=model.mean_log_likelihood(points),
            history=tuple(history),
        )

    def _validate_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(
                f"points must have shape (N, D), got {points.shape}"
            )
        if points.shape[0] < self.n_components:
            raise ValueError(
                f"need at least n_components={self.n_components} points,"
                f" got {points.shape[0]}"
            )
        return points

    @staticmethod
    def _best(results: list[FitResult]) -> FitResult:
        best: FitResult | None = None
        for result in results:
            if best is None or result.log_likelihood > best.log_likelihood:
                best = result
        assert best is not None  # n_init >= 1
        return best

    def fit_reference(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> FitResult:
        """Reference fit: sequential restarts through one rng.

        The pre-fast-path behaviour, kept as the baseline of
        ``benchmarks/bench_train_throughput`` and the differential
        anchor of the gmm test suite.
        """
        points = self._validate_points(points)
        return self._best(
            [self._fit_once(points, rng) for _ in range(self.n_init)]
        )

    def fit(
        self,
        points: np.ndarray,
        rng: np.random.Generator | None = None,
        warm_start=None,
        executor=None,
    ) -> FitResult:
        """Fit the mixture to ``points`` of shape ``(N, D)``.

        Runs ``n_init`` independent restarts through the fast path
        (see the module docstring) and returns the result with the
        highest final log-likelihood.

        Parameters
        ----------
        rng:
            Root randomness; each restart derives an independent
            child seed from it up front, making the result identical
            across the batched / sequential / executor execution
            modes.  Required unless ``warm_start`` is given.
        warm_start:
            A :class:`GaussianMixture` (or ``(weights, means,
            covariances)`` tuple) to start EM from; skips seeding and
            restarts entirely.  This is the
            :class:`~repro.serving.refresh.ModelRefresher` refresh
            path -- the deployed mixture is already a good starting
            point for the drifted traffic.
        executor:
            Optional :class:`~repro.core.parallel.ParallelExecutor`;
            with ``restart_mode="sequential"`` and more than one
            worker, the per-restart fits fan out through it
            (deterministic order-preserving merge, identical
            results).  Ignored in ``"batched"`` mode, whose single
            stacked pass has nothing to fan out.
        """
        points = self._validate_points(points)
        if warm_start is not None:
            if isinstance(warm_start, GaussianMixture):
                start = (
                    warm_start.weights,
                    warm_start.means,
                    warm_start.covariances,
                )
            else:
                start = tuple(warm_start)
            return self._fit_restarts(points, warm_start=start)[0]
        if rng is None:
            raise ValueError("fit needs an rng unless warm_start is given")
        seeds = rng.integers(0, 2**63 - 1, size=self.n_init)
        if self.restart_mode == "batched":
            # Stacked fused pass; an executor cannot help (the whole
            # point is one pass), so the knob keeps its meaning even
            # when a pool is available.
            results = self._fit_restarts(points, seeds)
        elif (
            executor is not None
            and executor.workers > 1
            and self.n_init > 1
        ):
            results = executor.map(
                _fit_one_restart,
                [(self, points, int(seed)) for seed in seeds],
                star=True,
            )
        else:
            results = [
                self._fit_restarts(points, [int(seed)])[0]
                for seed in seeds
            ]
        return self._best(results)


def _fit_one_restart(
    trainer: EMTrainer, points: np.ndarray, seed: int
) -> FitResult:
    """Module-level single-restart task (picklable for executors)."""
    return trainer._fit_restarts(points, [seed])[0]


def fast_log_score_samples(
    model: GaussianMixture, points: np.ndarray
) -> np.ndarray:
    """``log G(x)`` per point through the quadratic-form fast path.

    One GEMM over the quadratic feature expansion instead of the
    per-component triangular solve of
    :meth:`GaussianMixture.log_score_samples`, with the same
    cancellation guard (and exact rescore) as the fast E-step.
    Agrees with the exact scorer to well below any admission
    threshold's resolution; used where scores feed a quantile cut,
    not a bit-exactness contract (e.g. the serving refresh).
    """
    points = np.asarray(points, dtype=np.float64)
    quad = _QuadScorer(points)
    covariances = model.covariances
    factors = linalg.cholesky_batch(covariances)
    log_det = linalg.log_det_from_cholesky(factors)
    weights = model.weights
    means = model.means
    with np.errstate(divide="ignore"):
        log_weights = np.log(weights)
    coef, const, suspect = quad.coefficients(
        log_weights, means, log_det, covariances
    )
    suspect_cols = np.nonzero(suspect)[0]
    n = points.shape[0]
    out = np.empty(n, dtype=np.float64)
    d = points.shape[1]
    for lo in range(0, n, _EM_BLOCK_ROWS):
        hi = min(lo + _EM_BLOCK_ROWS, n)
        weighted = quad.features[lo:hi] @ coef.T
        weighted += const
        if suspect_cols.size:
            maha = linalg.mahalanobis_squared_batch(
                points[lo:hi],
                means[suspect_cols],
                factors[suspect_cols],
            )
            weighted[:, suspect_cols] = (
                -0.5
                * (
                    d * np.log(2.0 * np.pi)
                    + log_det[suspect_cols]
                    + maha
                )
                + log_weights[suspect_cols]
            )
        _, norm = _stacked_softmax(
            weighted.reshape(hi - lo, 1, weighted.shape[1]),
            with_responsibilities=False,
        )
        out[lo:hi] = norm[:, 0]
    return out


def fit_gmm(
    points: np.ndarray,
    n_components: int,
    rng: np.random.Generator,
    **kwargs,
) -> GaussianMixture:
    """Convenience wrapper: train and return just the model.

    Keyword arguments are forwarded to :class:`EMTrainer`.
    """
    trainer = EMTrainer(n_components=n_components, **kwargs)
    return trainer.fit(points, rng).model

"""From-scratch Gaussian Mixture Model substrate.

The paper's cache policy engine is a two-dimensional full-covariance GMM
(Sec. 2.3, Eq. 1-3) trained with Expectation-Maximization (Sec. 3.3).
This subpackage implements that model with numpy only:

* :mod:`repro.gmm.linalg` -- small dense linear-algebra kernels
  (Cholesky factors, log-determinants, log-sum-exp) shared by the model
  and the trainer.
* :mod:`repro.gmm.kmeans` -- k-means++ seeding and Lloyd iterations used
  to initialise EM.
* :mod:`repro.gmm.model` -- :class:`GaussianMixture`, the inference-side
  model holding (weights, means, covariances) and computing the paper's
  score ``G(pi, mu, Sigma)``.
* :mod:`repro.gmm.em` -- :class:`EMTrainer` implementing the E/M steps
  and the MLE-change convergence test of Sec. 3.3.
* :mod:`repro.gmm.quantized` -- :class:`QuantizedGmm`, a fixed-point
  re-implementation of the score pipeline mirroring the FPGA engine of
  Sec. 4.1.
* :mod:`repro.gmm.serialization` -- parameter save/load (the "weight
  buffer" loaded once from HBM before the kernel starts).
"""

from repro.gmm.em import EMTrainer, fit_gmm
from repro.gmm.kmeans import kmeans, kmeans_plus_plus_init
from repro.gmm.model import GaussianMixture
from repro.gmm.online import OnlineGmm
from repro.gmm.quantized import FixedPointFormat, QuantizedGmm
from repro.gmm.serialization import (
    gmm_from_dict,
    gmm_to_dict,
    load_gmm,
    save_gmm,
)

__all__ = [
    "EMTrainer",
    "FixedPointFormat",
    "GaussianMixture",
    "OnlineGmm",
    "QuantizedGmm",
    "fit_gmm",
    "gmm_from_dict",
    "gmm_to_dict",
    "kmeans",
    "kmeans_plus_plus_init",
    "load_gmm",
    "save_gmm",
]

# Convenience targets for the ICGMM reproduction.
#
# The pytest configuration lives in pyproject.toml (pythonpath=src,
# importlib import mode), so plain `pytest` works too; the explicit
# PYTHONPATH below keeps the targets usable from any cwd and matches
# the tier-1 verify command in ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test verify bench-throughput bench-smoke bench-serving \
	bench-serving-smoke bench-fabric bench-fabric-smoke \
	bench-parallel bench-parallel-smoke bench-train \
	bench-train-smoke bench-chaos bench-chaos-smoke \
	bench-obs bench-obs-smoke bench-ingest bench-ingest-smoke \
	bench-serve bench-serve-smoke

test:
	$(PYTHON) -m pytest -x -q

# Tier-1 tests plus every bench smoke validator (schema + acceptance
# checks on fresh smoke artifacts) -- the one-command CI gate.
verify: test bench-smoke bench-serving-smoke bench-fabric-smoke \
	bench-parallel-smoke bench-train-smoke bench-chaos-smoke \
	bench-obs-smoke bench-ingest-smoke bench-serve-smoke

# Full simulator-throughput matrix; writes BENCH_sim_throughput.json.
bench-throughput:
	$(PYTHON) benchmarks/bench_sim_throughput.py

# Short trace + policy subset, then schema-validate the emitted JSON.
bench-smoke:
	$(PYTHON) benchmarks/bench_sim_throughput.py --smoke \
		--output BENCH_sim_throughput.smoke.json
	$(PYTHON) benchmarks/bench_sim_throughput.py \
		--validate BENCH_sim_throughput.smoke.json

# Full serving-under-drift bench; writes BENCH_serving_drift.json.
bench-serving:
	$(PYTHON) benchmarks/bench_serving_drift.py

# Short drift stream, then schema-validate (acceptance: >= 50% gap
# recovery and bit-exact sharded/single-shot parity).
bench-serving-smoke:
	$(PYTHON) benchmarks/bench_serving_drift.py --smoke \
		--output BENCH_serving_drift.smoke.json
	$(PYTHON) benchmarks/bench_serving_drift.py \
		--validate BENCH_serving_drift.smoke.json

# Full fabric-scaling matrix (scalar CXL router vs vectorized fabric);
# writes BENCH_fabric_scaling.json (acceptance: bit-exact per-device
# stats/pricing and >= 8x on the paper geometry).
bench-fabric:
	$(PYTHON) benchmarks/bench_fabric_scaling.py

# Short fabric run, then schema-validate the emitted JSON.
bench-fabric-smoke:
	$(PYTHON) benchmarks/bench_fabric_scaling.py --smoke \
		--output BENCH_fabric_scaling.smoke.json
	$(PYTHON) benchmarks/bench_fabric_scaling.py \
		--validate BENCH_fabric_scaling.smoke.json

# Full multicore fabric-replay matrix (1/2/4/8 workers x 1-8 devices;
# bit-exactness enforced everywhere, the >= 2.5x 4-worker speedup
# gate only on hosts with >= 4 CPUs); writes BENCH_parallel_scaling.json.
bench-parallel:
	$(PYTHON) benchmarks/bench_parallel_scaling.py

# Small worker/device matrix, then schema-validate the emitted JSON.
bench-parallel-smoke:
	$(PYTHON) benchmarks/bench_parallel_scaling.py --smoke \
		--output BENCH_parallel_scaling.smoke.json
	$(PYTHON) benchmarks/bench_parallel_scaling.py \
		--validate BENCH_parallel_scaling.smoke.json

# Full GMM training/refresh throughput matrix (reference vs fast fit,
# stepwise vs warm refresh; acceptance: >= 4x fit and >= 3x refresh at
# the paper geometry, restart modes bit-identical); writes
# BENCH_train_throughput.json.
bench-train:
	$(PYTHON) benchmarks/bench_train_throughput.py

# Small fit/refresh pair, then schema-validate the emitted JSON.
bench-train-smoke:
	$(PYTHON) benchmarks/bench_train_throughput.py --smoke \
		--output BENCH_train_throughput.smoke.json
	$(PYTHON) benchmarks/bench_train_throughput.py \
		--validate BENCH_train_throughput.smoke.json

# Full chaos-recovery scorecard (all eight fault scenarios x monitor
# off/on x worker counts vs no-fault baselines; acceptance:
# deterministic timelines and monitor decisions, zero-loss failover,
# bounded post-recovery miss rate, transparent crash retries, and a
# monitor that strictly beats waiting on fail-slow while changing
# nothing elsewhere); writes BENCH_chaos_recovery.json.
bench-chaos:
	$(PYTHON) benchmarks/bench_chaos_recovery.py

# Short chaos stream over the same eight-scenario grid, then
# schema-validate the emitted JSON (CI uploads the payload as the
# resilience-scorecard artifact).
bench-chaos-smoke:
	$(PYTHON) benchmarks/bench_chaos_recovery.py --smoke \
		--output BENCH_chaos_recovery.smoke.json
	$(PYTHON) benchmarks/bench_chaos_recovery.py \
		--validate BENCH_chaos_recovery.smoke.json

# Full streaming-vs-materializing trace-ingest scorecard (per-mode
# subprocess peak-RSS deltas + checksum parity; acceptance: chunked
# CSV streaming stays within 25% of the materializing load's memory
# delta on the largest trace); writes BENCH_ingest_throughput.json.
bench-ingest:
	$(PYTHON) benchmarks/bench_ingest_throughput.py

# Small trace, then schema-validate the emitted JSON (the RSS gate is
# recorded but only enforced on full runs).
bench-ingest-smoke:
	$(PYTHON) benchmarks/bench_ingest_throughput.py --smoke \
		--output BENCH_ingest_throughput.smoke.json
	$(PYTHON) benchmarks/bench_ingest_throughput.py \
		--validate BENCH_ingest_throughput.smoke.json

# Full pipelined-front-end scorecard (sync loop vs deterministic and
# throughput pipelines on a streaming-CSV drift scenario; acceptance:
# deterministic runs byte-identical to sync including telemetry
# digests, zero requests lost or reordered, off-path refresh stall
# <= 10% of the inline build cost, and -- on multi-core hosts --
# >= 1.5x pipelined speedup); writes BENCH_serve_throughput.json.
bench-serve:
	$(PYTHON) benchmarks/bench_serve_throughput.py

# Short pipelined stream, then schema-validate the emitted JSON (the
# speedup gate is recorded but only enforced on multi-core full runs;
# the parity and zero-loss gates bind everywhere).
bench-serve-smoke:
	$(PYTHON) benchmarks/bench_serve_throughput.py --smoke \
		--output BENCH_serve_throughput.smoke.json
	$(PYTHON) benchmarks/bench_serve_throughput.py \
		--validate BENCH_serve_throughput.smoke.json

# Full telemetry-overhead scorecard (enabled vs disabled replay per
# layer; acceptance: <= 5% hot-path overhead, byte-identical results
# with telemetry attached, bit-reproducible snapshot digests); writes
# BENCH_obs_overhead.json.
bench-obs:
	$(PYTHON) benchmarks/bench_obs_overhead.py

# Short telemetry-overhead run, then schema-validate the emitted JSON.
bench-obs-smoke:
	$(PYTHON) benchmarks/bench_obs_overhead.py --smoke \
		--output BENCH_obs_overhead.smoke.json
	$(PYTHON) benchmarks/bench_obs_overhead.py \
		--validate BENCH_obs_overhead.smoke.json

# Convenience targets for the ICGMM reproduction.
#
# The pytest configuration lives in pyproject.toml (pythonpath=src,
# importlib import mode), so plain `pytest` works too; the explicit
# PYTHONPATH below keeps the targets usable from any cwd and matches
# the tier-1 verify command in ROADMAP.md.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-throughput bench-smoke bench-serving bench-serving-smoke

test:
	$(PYTHON) -m pytest -x -q

# Full simulator-throughput matrix; writes BENCH_sim_throughput.json.
bench-throughput:
	$(PYTHON) benchmarks/bench_sim_throughput.py

# Short trace + policy subset, then schema-validate the emitted JSON.
bench-smoke:
	$(PYTHON) benchmarks/bench_sim_throughput.py --smoke \
		--output BENCH_sim_throughput.smoke.json
	$(PYTHON) benchmarks/bench_sim_throughput.py \
		--validate BENCH_sim_throughput.smoke.json

# Full serving-under-drift bench; writes BENCH_serving_drift.json.
bench-serving:
	$(PYTHON) benchmarks/bench_serving_drift.py

# Short drift stream, then schema-validate (acceptance: >= 50% gap
# recovery and bit-exact sharded/single-shot parity).
bench-serving-smoke:
	$(PYTHON) benchmarks/bench_serving_drift.py --smoke \
		--output BENCH_serving_drift.smoke.json
	$(PYTHON) benchmarks/bench_serving_drift.py \
		--validate BENCH_serving_drift.smoke.json

"""Serving-under-drift benchmark: frozen vs online vs oracle.

A phase-shifted multi-tenant stream is replayed through the
:class:`repro.serving.IcgmmCacheService`: tenant 0's hot set is
stable, tenant 1's hot set *moves* at the phase boundary (a failover
/ cache-rebuild event).  Three deployments race on the post-drift
steady state:

* **frozen** -- the paper's deployment: the offline engine never
  changes, so post-drift traffic scores below its admission cut and
  the service bypasses/evicts exactly the pages that just became hot;
* **online** -- the serving subsystem's drift-aware refresh: the
  score-drift detector fires, recent chunks are folded into the
  mixture by stepwise EM, and the refreshed engine is swapped in;
* **oracle** -- an engine batch-trained on post-drift traffic (upper
  bound).

The bench asserts two acceptance properties and bakes them into the
emitted ``BENCH_serving_drift.json``:

1. ``recovered_gap_fraction >= 0.5`` -- the online engine recovers at
   least half of the frozen-vs-oracle post-drift miss-rate gap;
2. ``parity.identical`` -- with refresh disabled, the sharded,
   chunked, resumable serving loop's counters are *bit-identical* to
   a single-shot :meth:`repro.core.system.IcgmmSystem.run_strategy`
   on the same stream (chunking and sharding are exact, not
   approximate).

Usage::

    PYTHONPATH=src python benchmarks/bench_serving_drift.py           # full
    PYTHONPATH=src python benchmarks/bench_serving_drift.py --smoke   # quick
    PYTHONPATH=src python benchmarks/bench_serving_drift.py --validate out.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.setassoc import CacheGeometry
from repro.core.config import GmmEngineConfig, IcgmmConfig, ServingConfig
from repro.core.engine import GmmPolicyEngine
from repro.core.system import IcgmmSystem, PreparedWorkload
from repro.serving import IcgmmCacheService
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

#: Tenant partition stride in pages.
PARTITION = 1 << 20

#: Schema of every per-deployment entry in ``results``.
RESULT_SCHEMA = {
    "deployment": str,
    "post_drift_miss_rate": float,
    "post_drift_latency_us": float,
    "swaps": int,
    "final_generation": int,
}


def build_stream(n_phase: int, hot_pages: int, shift: int, seed: int):
    """Two-tenant stream whose second tenant drifts at the boundary.

    Returns ``(pages, is_write, phase_boundary)``.  Tenant 0 (stable
    key-value) lives in partition 0; tenant 1 lives in partition 1
    and its Zipf hot set jumps by ``shift`` pages at the boundary.
    """
    rng = np.random.default_rng(seed)
    stable = ZipfSampler(
        base_page=0, n_pages=hot_pages, alpha=1.2, write_fraction=0.3
    )
    moving_a = ZipfSampler(
        base_page=PARTITION,
        n_pages=hot_pages,
        alpha=1.2,
        write_fraction=0.1,
    )
    moving_b = ZipfSampler(
        base_page=PARTITION + shift,
        n_pages=hot_pages,
        alpha=1.2,
        write_fraction=0.1,
    )

    def interleave(sampler_one, n):
        choice = rng.random(n) < 0.5
        p0, w0 = stable.sample(int(np.sum(~choice)), rng)
        p1, w1 = sampler_one.sample(int(np.sum(choice)), rng)
        pages = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        pages[~choice], writes[~choice] = p0, w0
        pages[choice], writes[choice] = p1, w1
        return pages, writes

    pages_a, writes_a = interleave(moving_a, n_phase)
    pages_b, writes_b = interleave(moving_b, n_phase)
    return (
        np.concatenate([pages_a, pages_b]),
        np.concatenate([writes_a, writes_b]),
        n_phase,
    )


def train_engine(pages, n_train, gmm_config, seed):
    """Offline-train an engine on the stream's leading slice."""
    timestamps = transform_timestamps(n_train, mode="prose")
    features = np.column_stack(
        [
            pages[:n_train].astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, gmm_config, np.random.default_rng(seed)
    )


def train_oracle(pages, boundary, n_train, gmm_config, seed):
    """Engine trained on post-drift traffic (the upper bound)."""
    stop = min(boundary + n_train, pages.shape[0])
    timestamps = transform_timestamps(stop - boundary, mode="prose")
    features = np.column_stack(
        [
            pages[boundary:stop].astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, gmm_config, np.random.default_rng(seed)
    )


def run_service(engine, config, serving, pages, writes, measure_from):
    """Replay the stream; returns the finished service + wall time."""
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=serving,
        measure_from=measure_from,
    )
    t0 = time.perf_counter()
    service.ingest(pages, writes)
    return service, time.perf_counter() - t0


def parity_check(engine, config, serving, pages, writes):
    """Sharded serving loop vs single-shot IcgmmSystem, bit for bit."""
    frozen = ServingConfig(
        chunk_requests=serving.chunk_requests,
        n_shards=serving.n_shards,
        sharding="hash",
        partition_pages=serving.partition_pages,
        strategy=serving.strategy,
        refresh_enabled=False,
    )
    system = IcgmmSystem(config)
    timestamps = transform_timestamps(
        pages.shape[0],
        config.len_window,
        config.len_access_shot,
        config.timestamp_mode,
    )
    features = np.column_stack(
        [pages.astype(np.float64), timestamps.astype(np.float64)]
    )
    prepared = PreparedWorkload(
        name="serving-drift",
        page_indices=pages,
        is_write=writes.copy(),
        scores=engine.score(features),
        page_frequency_scores=engine.page_scores(pages),
        engine=engine,
    )
    expected = system.run_strategy(prepared, serving.strategy).stats
    service, _ = run_service(
        engine,
        config,
        frozen,
        pages,
        writes,
        measure_from=int(pages.shape[0] * config.warmup_fraction),
    )
    return {
        "identical": bool(service.totals == expected),
        "single_shot_miss_rate": round(expected.miss_rate, 6),
        "serving_miss_rate": round(service.totals.miss_rate, 6),
    }


def run(smoke: bool, seed: int = 7) -> dict:
    """Run the full bench; returns the JSON payload."""
    if smoke:
        n_phase, hot_pages, n_train = 30_000, 1_200, 15_000
        n_sets = 64
        gmm = GmmEngineConfig(
            n_components=8, max_iter=20, max_train_samples=8_000
        )
    else:
        n_phase, hot_pages, n_train = 120_000, 3_000, 60_000
        n_sets = 128
        gmm = GmmEngineConfig(
            n_components=16, max_iter=30, max_train_samples=20_000
        )
    pages, writes, boundary = build_stream(
        n_phase, hot_pages, shift=4 * hot_pages, seed=seed
    )
    geometry = CacheGeometry(
        capacity_bytes=n_sets * 8 * 4096,
        block_bytes=4096,
        associativity=8,
    )
    config = IcgmmConfig(geometry=geometry, gmm=gmm)
    serving = ServingConfig(
        chunk_requests=4_096,
        n_shards=4,
        sharding="hash",
        partition_pages=PARTITION,
        strategy="gmm-caching-eviction",
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    frozen_engine = train_engine(pages, n_train, gmm, seed)
    oracle_engine = train_oracle(pages, boundary, n_train, gmm, seed)
    # Post-drift steady state: the last 60% of phase 2 (the leading
    # 40% is the drift-detection + refresh + cache-churn transient).
    measure_from = boundary + int(0.4 * n_phase)

    deployments = [
        ("frozen", frozen_engine, False),
        ("online", frozen_engine, True),
        ("oracle", oracle_engine, False),
    ]
    results = []
    miss = {}
    for name, engine, refresh in deployments:
        deployment_serving = dataclasses.replace(
            serving, refresh_enabled=refresh
        )
        service, elapsed = run_service(
            engine, config, deployment_serving, pages, writes,
            measure_from,
        )
        stats = service.totals
        latency = service.shard_metrics.latency_model.average_access_time_us(
            stats
        )
        miss[name] = stats.miss_rate
        row = {
            "deployment": name,
            "post_drift_miss_rate": round(stats.miss_rate, 6),
            "post_drift_latency_us": round(latency, 3),
            "swaps": len(service.swaps),
            "final_generation": service.generation,
            "elapsed_s": round(elapsed, 3),
        }
        results.append(row)
        print(
            f"{name:8s} post-drift miss {100 * stats.miss_rate:6.2f}%"
            f"  latency {latency:8.2f} us"
            f"  swaps {len(service.swaps)}"
        )

    gap = miss["frozen"] - miss["oracle"]
    recovered = (miss["frozen"] - miss["online"]) / gap if gap > 0 else 1.0
    print(f"recovered {100 * recovered:.1f}% of the frozen-oracle gap")

    parity = parity_check(frozen_engine, config, serving, pages, writes)
    print(
        f"parity: identical={parity['identical']}"
        f" (miss {100 * parity['serving_miss_rate']:.2f}%)"
    )
    return {
        "bench": "serving_drift",
        "smoke": smoke,
        "stream": {
            "n_accesses": int(pages.shape[0]),
            "phase_boundary": int(boundary),
            "hot_pages": hot_pages,
            "measure_from": int(measure_from),
        },
        "geometry": {
            "capacity_bytes": geometry.capacity_bytes,
            "block_bytes": geometry.block_bytes,
            "associativity": geometry.associativity,
            "n_sets": geometry.n_sets,
        },
        "serving": {
            "chunk_requests": serving.chunk_requests,
            "n_shards": serving.n_shards,
            "sharding": serving.sharding,
            "strategy": serving.strategy,
        },
        "results": results,
        "recovered_gap_fraction": round(recovered, 4),
        "parity": parity,
    }


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("results", "recovered_gap_fraction", "parity"):
        if key not in payload:
            problems.append(f"missing top-level {key!r}")
    if problems:
        return problems
    if not isinstance(payload["results"], list) or len(
        payload["results"]
    ) != 3:
        return ["'results' must list the three deployments"]
    for i, row in enumerate(payload["results"]):
        for fieldname, kind in RESULT_SCHEMA.items():
            if fieldname not in row:
                problems.append(f"results[{i}]: missing {fieldname!r}")
            elif kind is float:
                if not isinstance(row[fieldname], (int, float)):
                    problems.append(
                        f"results[{i}].{fieldname}: not numeric"
                    )
            elif not isinstance(row[fieldname], kind):
                problems.append(
                    f"results[{i}].{fieldname}:"
                    f" expected {kind.__name__}"
                )
    recovered = payload["recovered_gap_fraction"]
    if not isinstance(recovered, (int, float)):
        problems.append("recovered_gap_fraction: not numeric")
    elif recovered < 0.5:
        problems.append(
            "acceptance: online engine recovered"
            f" {recovered:.2%} < 50% of the frozen-oracle gap"
        )
    if not payload["parity"].get("identical", False):
        problems.append(
            "acceptance: sharded serving loop diverged from the"
            " single-shot IcgmmSystem run"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short stream + small mixture (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_serving_drift.json, or"
            " BENCH_serving_drift.smoke.json with --smoke)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid")
        return 0

    payload = run(smoke=args.smoke, seed=args.seed)
    output = args.output or (
        "BENCH_serving_drift.smoke.json"
        if args.smoke
        else "BENCH_serving_drift.json"
    )
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

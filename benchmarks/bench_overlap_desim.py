"""Sec. 4.3/5.3 claim: the dataflow hides the GMM latency.

Paper: "GMM inference latency is 3 us, which is quick enough to be
overlapped with the SSD read (75 us) or write (900 us) request
latency" -- the dataflow architecture triggers the policy engine and
the SSD emulator concurrently, so misses see only the SSD time.

The discrete-event model of Fig. 5 runs the same request stream with
concurrent and sequential miss handling; the per-miss difference must
equal the engine latency exactly.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cache import LruPolicy, SetAssociativeCache
from repro.cache.setassoc import CacheGeometry
from repro.desim import DataflowTiming, IcgmmDataflow
from repro.traces import get_workload


def _cache():
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=256 * 4096, block_bytes=4096, associativity=8
        )
    )


@pytest.fixture(scope="module")
def request_stream():
    rng = np.random.default_rng(5)
    trace = get_workload("memtier", scale=1 / 128).generate(6_000, rng)
    return trace.page_indices(), trace.is_write


def test_overlap_hides_policy_latency(request_stream, report, benchmark):
    """Dataflow vs naive control on the cycle-level model."""
    pages, writes = request_stream

    def run(overlap):
        dataflow = IcgmmDataflow(
            cache=_cache(),
            policy=LruPolicy(),
            timing=DataflowTiming(overlap=overlap),
        )
        return dataflow.run(pages, writes)

    overlapped = benchmark.pedantic(
        run, args=(True,), rounds=1, iterations=1
    )
    sequential = run(False)

    table = render_table(
        ["control", "avg latency (us)", "p99 (us)", "misses"],
        [
            [
                "dataflow (overlapped)",
                overlapped.average_latency_us,
                overlapped.percentile_us(99),
                overlapped.stats.misses,
            ],
            [
                "naive (sequential)",
                sequential.average_latency_us,
                sequential.percentile_us(99),
                sequential.stats.misses,
            ],
        ],
    )
    per_miss_ns = (
        sequential.total_time_ns - overlapped.total_time_ns
    ) / sequential.stats.misses
    report(
        "overlap_desim",
        table + f"\nhidden per miss: {per_miss_ns / 1000:.2f} us",
    )

    # Identical cache behaviour, by construction.
    assert overlapped.stats.misses == sequential.stats.misses
    # The dataflow hides exactly the 3 us engine latency per miss.
    assert per_miss_ns == pytest.approx(3_000, abs=1)
    # Hits are unaffected either way (1 us service).
    assert overlapped.percentile_us(50) == pytest.approx(1.0, abs=0.1)


def test_desim_event_throughput(request_stream, benchmark):
    """Benchmark the discrete-event engine itself."""
    pages, writes = request_stream

    def run():
        dataflow = IcgmmDataflow(cache=_cache(), policy=LruPolicy())
        return dataflow.run(pages[:2_000], writes[:2_000])

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.stats.accesses == 2_000

"""Ablation: does the second (temporal) GMM dimension earn its place?

Sec. 2.3 argues for the 2-D model: "Only considering spatial
distribution will degrade GMM prediction performance."  Two
measurements test that claim on this reproduction:

* the statistical one -- the 2-D mixture's log-likelihood gain over a
  temporally-shuffled control (direct information content), and
* the end-to-end one -- smart-caching miss rate with 2-D scores vs
  scores from a spatial-only engine (the temporal dimension is what
  recognises maintenance-burst traffic *as it happens*).
"""

import numpy as np
import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.analysis.distributions import temporal_information_gain
from repro.cache import SetAssociativeCache, simulate_fast
from repro.core.engine import GmmPolicyEngine
from repro.core.policy import build_policy
from repro.core.system import IcgmmSystem


@pytest.fixture(scope="module")
def memtier_setup():
    config = fast_config()
    system = IcgmmSystem(config)
    return config, system, system.prepare("memtier")


def test_temporal_information_gain(memtier_setup, report, benchmark):
    """Statistical claim: (P, T) carries more than P alone."""
    config, system, prepared = memtier_setup
    features = np.column_stack(
        [
            prepared.page_indices.astype(float),
            np.zeros(len(prepared)),
        ]
    )
    # Rebuild the true features from the preprocessor for the gain
    # computation (prepared only keeps the derived arrays).
    rng = np.random.default_rng(config.seed)
    trace = system.generate_trace("memtier", rng)
    processed_features = (
        system._preprocessor.process(trace).features
    )

    gain = benchmark.pedantic(
        temporal_information_gain,
        args=(processed_features,),
        kwargs={"n_components": 16, "max_samples": 10_000},
        rounds=1,
        iterations=1,
    )
    report(
        "ablation_temporal_gain",
        f"2-D log-likelihood gain over shuffled-T control: {gain:.4f}",
    )
    assert gain > 0.0
    assert features.shape == processed_features.shape


def test_spatial_only_admission_degrades(memtier_setup, report, benchmark):
    """End-to-end claim: spatial-only scores mis-handle burst traffic."""
    config, system, prepared = memtier_setup

    # Spatial-only engine: train and score with the timestamp column
    # frozen to its mean, removing all temporal signal.
    def train_spatial_only():
        rng = np.random.default_rng(config.seed)
        trace = system.generate_trace("memtier", rng)
        features = system._preprocessor.process(trace).features
        flat = features.copy()
        flat[:, 1] = flat[:, 1].mean()
        engine = GmmPolicyEngine.train(
            flat[: int(len(flat) * config.train_fraction)],
            config.gmm,
            rng,
        )
        return engine.score(flat), engine.admission_threshold

    spatial_scores, spatial_threshold = benchmark.pedantic(
        train_spatial_only, rounds=1, iterations=1
    )

    def run_caching(scores, threshold):
        cache = SetAssociativeCache(config.geometry)
        policy = build_policy("gmm-caching", threshold)
        return simulate_fast(
            cache,
            policy,
            prepared.page_indices,
            prepared.is_write,
            scores=scores,
            warmup_fraction=config.warmup_fraction,
        )

    two_d = run_caching(
        prepared.scores, prepared.engine.admission_threshold
    )
    spatial = run_caching(spatial_scores, spatial_threshold)
    report(
        "ablation_temporal_dimension",
        render_table(
            ["scorer", "miss rate %", "bypasses"],
            [
                ["2-D (P, T)", 100 * two_d.miss_rate, two_d.bypasses],
                [
                    "spatial-only (P)",
                    100 * spatial.miss_rate,
                    spatial.bypasses,
                ],
            ],
        ),
    )
    # Sec. 2.3: dropping the temporal dimension must not help, and
    # typically hurts (burst traffic becomes invisible to admission).
    assert two_d.miss_rate <= spatial.miss_rate + 0.001

"""Extension: stride prefetching under the GMM-managed cache.

The GMM can only *pin a fraction* of a sequential sweep (eviction) or
refuse it (admission); it cannot remove the sweep's compulsory-style
misses.  A stride prefetcher is the orthogonal tool for exactly that
traffic.  This bench runs stream -- the paper's most LRU-hostile
workload -- under LRU, GMM eviction, and GMM eviction + prefetch,
showing the two mechanisms compose.
"""

import numpy as np
import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.cache import SetAssociativeCache, simulate_fast
from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.prefetch import (
    StridePrefetcher,
    simulate_with_prefetch_fast,
)
from repro.core.system import IcgmmSystem


@pytest.fixture(scope="module")
def stream_setup():
    config = fast_config(trace_length=150_000)
    system = IcgmmSystem(config)
    prepared = system.prepare("stream")
    return config, prepared


def test_prefetch_composes_with_gmm(stream_setup, report, benchmark):
    """LRU vs GMM vs GMM + stride prefetch on stream."""
    config, prepared = stream_setup
    pages = prepared.page_indices
    writes = prepared.is_write

    lru = simulate_fast(
        SetAssociativeCache(config.geometry),
        LruPolicy(),
        pages,
        writes,
        warmup_fraction=config.warmup_fraction,
    )
    gmm = simulate_fast(
        SetAssociativeCache(config.geometry),
        GmmCachePolicy(admission=False, eviction=True),
        pages,
        writes,
        scores=prepared.page_frequency_scores,
        warmup_fraction=config.warmup_fraction,
    )

    def run_prefetch():
        # The vectorized prefetch path (bit-identical to the scalar
        # reference; parity asserted in tests/cache).
        return simulate_with_prefetch_fast(
            SetAssociativeCache(config.geometry),
            GmmCachePolicy(admission=False, eviction=True),
            StridePrefetcher(degree=2, distance=8),
            pages,
            writes,
            scores=prepared.page_frequency_scores,
            warmup_fraction=config.warmup_fraction,
        )

    combined, prefetch_stats = benchmark.pedantic(
        run_prefetch, rounds=1, iterations=1
    )
    report(
        "extension_prefetch",
        render_table(
            ["configuration", "miss rate %"],
            [
                ["lru", 100 * lru.miss_rate],
                ["gmm eviction", 100 * gmm.miss_rate],
                ["gmm eviction + prefetch", 100 * combined.miss_rate],
            ],
        )
        + f"\nprefetch accuracy: {prefetch_stats.accuracy:.1%}"
        f" ({prefetch_stats.issued} issued)",
    )

    # The mechanisms compose: prefetching removes sweep misses the
    # GMM cannot, on top of the GMM's pinning gain.
    assert gmm.miss_rate < lru.miss_rate
    assert combined.miss_rate < gmm.miss_rate - 0.02
    # Sequential sweeps make stride prefetch highly accurate.
    assert prefetch_stats.accuracy > 0.5

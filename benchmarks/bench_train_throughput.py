"""Training/refresh-throughput benchmark: fast path vs reference.

Measures wall-clock of (1) :meth:`EMTrainer.fit` -- the vectorized
greedy-k-means++ seeded, quadratic-form, batched-restart fast path --
against :meth:`EMTrainer.fit_reference` (sequential restarts through
the reference k-means and triangular-solve E-step), asserting per row
that the fast path's batched / sequential / executor restart modes
produce *identical* models at equal seeds; and (2)
:meth:`ModelRefresher.build` in its warm-started-EM mode against the
stepwise-EM fold, on a drifted Zipf stream, recording post-drift
holdout likelihoods so the speedup is visibly not bought with
adaptation quality.  Emits ``BENCH_train_throughput.json``.

Acceptance (enforced by ``--validate`` on rows marked
``paper_geometry``, i.e. the simulator-default K = 64 with
``n_init`` = 4): fit speedup >= 4x and refresh speedup >= 3x.

    PYTHONPATH=src python benchmarks/bench_train_throughput.py           # full
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --smoke   # quick
    PYTHONPATH=src python benchmarks/bench_train_throughput.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.config import GmmEngineConfig
from repro.core.engine import GmmPolicyEngine
from repro.core.parallel import ParallelExecutor
from repro.gmm.em import EMTrainer
from repro.serving.refresh import ModelRefresher
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

#: Schema of ``kind == "fit"`` rows.
FIT_SCHEMA = {
    "kind": str,
    "k": int,
    "n_init": int,
    "n_samples": int,
    "reference_s": float,
    "fast_s": float,
    "speedup": float,
    "modes_identical": bool,
    "paper_geometry": bool,
}

#: Schema of ``kind == "refresh"`` rows.
REFRESH_SCHEMA = {
    "kind": str,
    "k": int,
    "buffered_samples": int,
    "stepwise_s": float,
    "warm_s": float,
    "speedup": float,
    "stepwise_holdout_ll": float,
    "warm_holdout_ll": float,
    "paper_geometry": bool,
}

#: Acceptance gates on paper-geometry rows.
MIN_FIT_SPEEDUP = 4.0
MIN_REFRESH_SPEEDUP = 3.0


def make_points(n: int, seed: int = 0) -> np.ndarray:
    """Standardised blob features shaped like trained (P, T) inputs."""
    rng = np.random.default_rng(seed)
    points = np.concatenate(
        [
            rng.normal(
                loc=(i % 7, i // 7), scale=0.3, size=(n // 8, 2)
            )
            for i in range(8)
        ]
    )
    return (points - points.mean(axis=0)) / points.std(axis=0)


def _results_identical(a, b) -> bool:
    return (
        np.array_equal(a.model.weights, b.model.weights)
        and np.array_equal(a.model.means, b.model.means)
        and np.array_equal(a.model.covariances, b.model.covariances)
        and a.n_iter == b.n_iter
        and a.log_likelihood == b.log_likelihood
    )


def bench_fit(k: int, n_init: int, points: np.ndarray, paper: bool):
    """One fit row: reference vs fast, plus the mode-identity check."""
    trainer = EMTrainer(
        n_components=k, max_iter=40, tol=1e-3, n_init=n_init
    )
    started = time.perf_counter()
    trainer.fit_reference(points, np.random.default_rng(1))
    reference_s = time.perf_counter() - started

    started = time.perf_counter()
    batched = trainer.fit(points, np.random.default_rng(1))
    fast_s = time.perf_counter() - started

    sequential_trainer = EMTrainer(
        n_components=k,
        max_iter=40,
        tol=1e-3,
        n_init=n_init,
        restart_mode="sequential",
    )
    sequential = sequential_trainer.fit(
        points, np.random.default_rng(1)
    )
    with ParallelExecutor(workers=2) as executor:
        fanned = sequential_trainer.fit(
            points, np.random.default_rng(1), executor=executor
        )
    identical = _results_identical(
        batched, sequential
    ) and _results_identical(batched, fanned)

    row = {
        "kind": "fit",
        "k": int(k),
        "n_init": int(n_init),
        "n_samples": int(points.shape[0]),
        "reference_s": round(reference_s, 4),
        "fast_s": round(fast_s, 4),
        "speedup": round(reference_s / fast_s, 2),
        "modes_identical": bool(identical),
        "paper_geometry": bool(paper),
    }
    print(
        f"fit     K={k:<3d} n_init={n_init}  ref {reference_s:7.2f}s"
        f"  fast {fast_s:6.2f}s  speedup {row['speedup']:5.1f}x"
        f"  identical={identical}"
    )
    return row


def _drift_features(base_page: int, n: int, rng) -> np.ndarray:
    pages, _ = ZipfSampler(
        base_page=base_page, n_pages=2000, alpha=1.2
    ).sample(n, rng)
    timestamps = transform_timestamps(n, mode="prose")
    return np.column_stack(
        [pages.astype(np.float64), timestamps.astype(np.float64)]
    )


def bench_refresh(
    k: int, n_train: int, n_buffered: int, paper: bool
):
    """One refresh row: warm-started EM vs the stepwise fold."""
    rng = np.random.default_rng(0)
    engine = GmmPolicyEngine.train(
        _drift_features(0, n_train, rng),
        GmmEngineConfig(n_components=k, max_iter=30),
        np.random.default_rng(1),
    )
    drifted = _drift_features(6000, n_buffered, rng)
    holdout = engine.scaler.transform(
        _drift_features(6000, 8000, rng)
    )
    chunk = max(1, n_buffered // 6)

    timings = {}
    quality = {}
    for mode in ("stepwise", "warm"):
        refresher = ModelRefresher(buffer_chunks=6, mode=mode)
        for start in range(0, n_buffered, chunk):
            refresher.ingest(drifted[start : start + chunk])
        started = time.perf_counter()
        refreshed = refresher.build(engine)
        timings[mode] = time.perf_counter() - started
        quality[mode] = float(
            np.mean(refreshed.model.log_score_samples(holdout))
        )

    row = {
        "kind": "refresh",
        "k": int(k),
        "buffered_samples": int(n_buffered),
        "stepwise_s": round(timings["stepwise"], 4),
        "warm_s": round(timings["warm"], 4),
        "speedup": round(timings["stepwise"] / timings["warm"], 2),
        "stepwise_holdout_ll": round(quality["stepwise"], 4),
        "warm_holdout_ll": round(quality["warm"], 4),
        "paper_geometry": bool(paper),
    }
    print(
        f"refresh K={k:<3d} buffered={n_buffered:>6d}"
        f"  stepwise {timings['stepwise']:6.3f}s"
        f"  warm {timings['warm']:6.3f}s"
        f"  speedup {row['speedup']:5.1f}x"
        f"  ll {quality['warm']:.3f} vs {quality['stepwise']:.3f}"
    )
    return row


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check; returns a list of problems."""
    problems = []
    if "results" not in payload:
        return ["missing top-level 'results'"]
    rows = payload["results"]
    if not isinstance(rows, list) or not rows:
        return ["'results' must be a non-empty list"]
    paper_fit = paper_refresh = 0
    for i, row in enumerate(rows):
        schema = (
            FIT_SCHEMA if row.get("kind") == "fit" else REFRESH_SCHEMA
        )
        for field, kind in schema.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(
                        f"results[{i}].{field}: not numeric"
                    )
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if row.get("kind") == "fit":
            if not row.get("modes_identical", False):
                problems.append(
                    f"results[{i}]: restart modes diverged"
                )
            if row.get("paper_geometry"):
                paper_fit += 1
                if row.get("speedup", 0.0) < MIN_FIT_SPEEDUP:
                    problems.append(
                        f"results[{i}]: fit speedup"
                        f" {row.get('speedup')} <"
                        f" {MIN_FIT_SPEEDUP}x at paper geometry"
                    )
        elif row.get("paper_geometry"):
            paper_refresh += 1
            if row.get("speedup", 0.0) < MIN_REFRESH_SPEEDUP:
                problems.append(
                    f"results[{i}]: refresh speedup"
                    f" {row.get('speedup')} <"
                    f" {MIN_REFRESH_SPEEDUP}x at paper geometry"
                )
            if row.get("warm_holdout_ll", -np.inf) < row.get(
                "stepwise_holdout_ll", 0.0
            ) - 0.5:
                problems.append(
                    f"results[{i}]: warm refresh lost >0.5 nats of"
                    " post-drift likelihood vs stepwise"
                )
    if not payload.get("smoke") and (
        paper_fit == 0 or paper_refresh == 0
    ):
        problems.append(
            "full run must include paper-geometry fit and refresh rows"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small geometries, no paper-geometry gates (CI smoke)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument("--output", default=None)
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    if args.smoke:
        fit_grid = [(8, 2, 8_000, False)]
        refresh_grid = [(8, 8_000, 12_000, False)]
        output = args.output or "BENCH_train_throughput.smoke.json"
    else:
        fit_grid = [
            (8, 4, 40_000, False),
            (16, 4, 40_000, False),
            (64, 4, 40_000, True),  # simulator-default K
        ]
        refresh_grid = [
            (8, 24_000, 49_152, False),
            (64, 24_000, 49_152, True),
        ]
        output = args.output or "BENCH_train_throughput.json"

    results = []
    for k, n_init, n, paper in fit_grid:
        results.append(bench_fit(k, n_init, make_points(n), paper))
    for k, n_train, n_buffered, paper in refresh_grid:
        results.append(bench_refresh(k, n_train, n_buffered, paper))

    payload = {
        "bench": "train_throughput",
        "smoke": bool(args.smoke),
        "gates": {
            "min_fit_speedup_paper": MIN_FIT_SPEEDUP,
            "min_refresh_speedup_paper": MIN_REFRESH_SPEEDUP,
        },
        "results": results,
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

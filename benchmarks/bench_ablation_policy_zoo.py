"""Ablation: the GMM against the classical policy zoo and Belady.

The paper compares only against LRU (and the LSTM engine).  This
bench places the GMM policy among FIFO, CLOCK, random, LFU and the
offline Belady bound, answering two review questions the paper leaves
open: how much of the win is "merely not being recency-based" (the
random/FIFO row) and how close the learned policy gets to the optimum.
"""

import numpy as np
import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.cache import BeladyPolicy, SetAssociativeCache, simulate_fast
from repro.cache.policies import make_policy
from repro.core.system import IcgmmSystem


@pytest.fixture(scope="module")
def heap_setup():
    config = fast_config()
    system = IcgmmSystem(config)
    return config, system, system.prepare("heap")


def test_policy_zoo(heap_setup, report, benchmark):
    """Miss rate of every policy on the heap workload."""
    config, system, prepared = heap_setup

    def run_classical():
        out = {}
        for name in (
            "lru", "fifo", "clock", "lfu", "random", "slru", "2q",
        ):
            policy = (
                make_policy(name, rng=np.random.default_rng(0))
                if name == "random"
                else make_policy(name)
            )
            cache = SetAssociativeCache(config.geometry)
            out[name] = simulate_fast(
                cache,
                policy,
                prepared.page_indices,
                prepared.is_write,
                warmup_fraction=config.warmup_fraction,
            )
        return out

    classical = benchmark.pedantic(run_classical, rounds=1, iterations=1)
    gmm = min(
        (
            system.run_strategy(prepared, s)
            for s in (
                "gmm-caching",
                "gmm-eviction",
                "gmm-caching-eviction",
            )
        ),
        key=lambda o: o.stats.miss_rate,
    )
    oracle = simulate_fast(
        SetAssociativeCache(config.geometry),
        BeladyPolicy(prepared.page_indices),
        prepared.page_indices,
        prepared.is_write,
        warmup_fraction=config.warmup_fraction,
    )

    rows = [
        [name, 100 * stats.miss_rate]
        for name, stats in classical.items()
    ]
    rows.append([f"icgmm ({gmm.strategy})", gmm.miss_rate_percent])
    rows.append(["belady", 100 * oracle.miss_rate])
    report(
        "ablation_policy_zoo",
        render_table(["policy", "miss rate %"], rows),
    )

    lru = classical["lru"].miss_rate
    # The GMM beats every online classical policy, including the
    # scan-resistant ones (SLRU, 2Q)...
    for name, stats in classical.items():
        assert gmm.stats.miss_rate <= stats.miss_rate + 1e-9, name
    # ...and respects the offline bound.
    assert gmm.stats.miss_rate >= oracle.miss_rate - 1e-9
    # It captures a substantial share of the Belady headroom over LRU.
    headroom = lru - oracle.miss_rate
    captured = lru - gmm.stats.miss_rate
    assert captured > 0.4 * headroom

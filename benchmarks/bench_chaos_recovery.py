"""Chaos-recovery benchmark v2: the fleet resilience scorecard.

A phase-shifted two-tenant stream is replayed under each canonical
fault scenario (`repro.chaos.scenarios`) against its victim layer:
device failures, link degradation, correlated blasts and fail-slow
ramps against the multi-device :class:`repro.cxl.fabric.CxlFabric`
(streamed *and* -- for ``prepared_failure`` -- through the one-shot
``run_prepared`` path), shard stalls, refresh-build faults and worker
crashes against the :class:`repro.serving.IcgmmCacheService`.  Every
fabric-layer scenario is crossed with the
:class:`~repro.serving.FleetHealthMonitor` armed and disarmed, every
cell runs at workers=1 and workers=4 plus a no-fault baseline per
layer, and the emitted ``BENCH_chaos_recovery.json`` scorecard bakes
in the acceptance gates:

1. **determinism** -- the same chaos seed produces byte-identical
   scenario rows (fault timeline digest, counters, miss rates, and
   the monitor's decision digest) at every worker count;
2. **zero loss** -- every scenario row, in every monitor arm, serves
   *every* access of the stream;
3. **recovery** -- every scenario's post-recovery (tail) miss rate is
   bounded against the no-fault baseline over the same chunks;
4. **fail-slow response** -- under ``device_failslow`` the
   monitor-on arm's tail miss rate *and* tail latency are strictly
   better than monitor-off (quarantine must beat riding out the
   ramp + watchdog resets), with at least one quarantine decision;
5. **prepared parity** -- with chaos disabled, ``run_prepared``
   reproduces the streamed fabric baseline byte for byte;
6. **crash transparency** -- worker crashes inside the retry budget
   leave totals bit-identical to the fault-free run, with retries
   observed.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py           # full
    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py --smoke   # quick
    PYTHONPATH=src python benchmarks/bench_chaos_recovery.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.cache.setassoc import CacheGeometry
from repro.chaos import (
    PREPARED_SCENARIOS,
    SCENARIO_NAMES,
    SERVING_SCENARIOS,
    recovery_chunk,
    run_fabric_scenario,
    run_prepared_scenario,
    run_serving_scenario,
    scenario_chaos,
    tail_latency_us,
    tail_miss_rate,
)
from repro.core.config import (
    FabricTopology,
    FleetHealthConfig,
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

#: Tenant partition stride in pages.
PARTITION = 1 << 20

#: Post-recovery miss rate must stay within this factor (plus a small
#: absolute slack) of the no-fault baseline over the same chunks.
RECOVERY_FACTOR = 2.0
RECOVERY_SLACK = 0.02

#: Worker counts every scenario replays at (determinism gate).
WORKER_COUNTS = (1, 4)

#: The fleet health monitor armed in every ``monitor="on"`` cell.
#: The latency threshold must clear the fleet's *natural* skew --
#: cache warm-up and tenant phase shifts push the slowest healthy
#: device to ~1.9x the fleet median on this stream -- while still
#: tripping early on a fail-slow ramp (peak multiplier 8x, watchdog
#: resets from 4x): a 2.5x median breach held for 3 chunks
#: quarantines the ramping device before its reset blips start.
HEALTH = FleetHealthConfig(
    enabled=True,
    latency_threshold=2.5,
    breach_chunks=3,
    quarantine_chunks=8,
    probation_chunks=3,
)

#: Schema of every per-scenario entry in ``scenarios``.
ROW_SCHEMA = {
    "scenario": str,
    "layer": str,
    "monitor": str,
    "workers": int,
    "faults": int,
    "timeline_digest": str,
    "accesses": int,
    "miss_rate": float,
    "baseline_miss_rate": float,
    "tail_miss_rate": float,
    "baseline_tail_miss_rate": float,
    "tail_latency_us": float,
    "baseline_tail_latency_us": float,
    "recovery_chunk": int,
    "failover_accesses": int,
    "degraded_time_ns": int,
    "worker_retries": int,
    "refresh_failures": int,
    "quarantines": int,
    "reinstatements": int,
    "monitor_digest": str,
    "events": int,
}


def build_stream(n_phase: int, hot_pages: int, seed: int):
    """Two-tenant stream whose second tenant drifts at the midpoint.

    The drift keeps the refresh loop busy, which is what the
    refresh-fault channel targets; the fabric scenarios replay the
    same pages.  Returns ``(pages, is_write)``.
    """
    rng = np.random.default_rng(seed)
    stable = ZipfSampler(
        base_page=0, n_pages=hot_pages, alpha=1.2, write_fraction=0.3
    )
    moving_a = ZipfSampler(
        base_page=PARTITION,
        n_pages=hot_pages,
        alpha=1.2,
        write_fraction=0.1,
    )
    moving_b = ZipfSampler(
        base_page=PARTITION + 4 * hot_pages,
        n_pages=hot_pages,
        alpha=1.2,
        write_fraction=0.1,
    )

    def interleave(moving, n):
        choice = rng.random(n) < 0.5
        p0, w0 = stable.sample(int(np.sum(~choice)), rng)
        p1, w1 = moving.sample(int(np.sum(choice)), rng)
        pages = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        pages[~choice], writes[~choice] = p0, w0
        pages[choice], writes[choice] = p1, w1
        return pages, writes

    pages_a, writes_a = interleave(moving_a, n_phase)
    pages_b, writes_b = interleave(moving_b, n_phase)
    return (
        np.concatenate([pages_a, pages_b]),
        np.concatenate([writes_a, writes_b]),
    )


def train_engine(pages, n_train, gmm_config, seed):
    """Offline-train an engine on the stream's leading slice."""
    timestamps = transform_timestamps(n_train, mode="prose")
    features = np.column_stack(
        [
            pages[:n_train].astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, gmm_config, np.random.default_rng(seed)
    )


def _row(name, layer, monitor_arm, workers, out, base, recover_at):
    monitor = out.get("monitor") or {}
    return {
        "scenario": name,
        "layer": layer,
        "monitor": monitor_arm,
        "workers": workers,
        "faults": len(out["timeline"]),
        "timeline_digest": out["timeline_digest"],
        "accesses": int(out["accesses"]),
        "miss_rate": round(out["miss_rate"], 6),
        "baseline_miss_rate": round(base["miss_rate"], 6),
        "tail_miss_rate": round(
            tail_miss_rate(out["chunk_counters"], recover_at)
            if "chunk_counters" in out
            else out["miss_rate"],
            6,
        ),
        "baseline_tail_miss_rate": round(
            tail_miss_rate(base["chunk_counters"], recover_at)
            if "chunk_counters" in base
            else base["miss_rate"],
            6,
        ),
        "tail_latency_us": round(
            tail_latency_us(
                out["chunk_counters"],
                out["chunk_times_ns"],
                recover_at,
            )
            if "chunk_times_ns" in out
            else 0.0,
            3,
        ),
        "baseline_tail_latency_us": round(
            tail_latency_us(
                base["chunk_counters"],
                base["chunk_times_ns"],
                recover_at,
            )
            if "chunk_times_ns" in base
            else 0.0,
            3,
        ),
        "recovery_chunk": int(recover_at),
        "failover_accesses": int(out.get("failover_accesses", 0)),
        "degraded_time_ns": int(out.get("degraded_time_ns", 0)),
        "worker_retries": int(out["worker_retries"]),
        "refresh_failures": int(out.get("refresh_failures", 0)),
        "quarantines": int(monitor.get("quarantines", 0)),
        "reinstatements": int(monitor.get("reinstatements", 0)),
        "monitor_digest": monitor.get("decision_digest", ""),
        "events": len(out["events"]),
    }


def run(smoke: bool, seed: int = 7, chaos_seed: int = 0) -> dict:
    """Run the full bench; returns the JSON payload."""
    if smoke:
        n_phase, hot_pages, n_train = 24_000, 1_200, 14_000
        n_sets = 64
        chunk = 2_048
        gmm = GmmEngineConfig(
            n_components=8, max_iter=20, max_train_samples=8_000
        )
    else:
        n_phase, hot_pages, n_train = 60_000, 2_400, 36_000
        n_sets = 128
        chunk = 4_096
        gmm = GmmEngineConfig(
            n_components=12, max_iter=30, max_train_samples=16_000
        )
    pages, writes = build_stream(n_phase, hot_pages, seed=seed)
    n_chunks = -(-pages.shape[0] // chunk)
    # Faults are planned over the leading 70% of the stream so the
    # trailing chunks form a clean post-recovery window -- except the
    # fail-slow scenario, whose ramps deliberately clamp to the *end*
    # of the stream: a sick device never recovers by waiting, so its
    # "tail" is the whole run and only quarantine can improve it.
    horizon = max(1, (7 * n_chunks) // 10)
    scenario_horizons = {
        name: (n_chunks if name == "device_failslow" else horizon)
        for name in SCENARIO_NAMES
    }

    geometry = CacheGeometry(
        capacity_bytes=n_sets * 8 * 4096,
        block_bytes=4096,
        associativity=8,
    )
    config = IcgmmConfig(geometry=geometry, gmm=gmm)
    topology = FabricTopology(n_devices=4)
    engine = train_engine(pages, n_train, gmm, seed)

    def parallel_for(workers):
        return ParallelConfig(
            workers=workers, backend="thread", max_retries=2
        )

    def serving_for(workers):
        return ServingConfig(
            chunk_requests=chunk,
            n_shards=4,
            sharding="hash",
            partition_pages=PARTITION,
            strategy="gmm-caching-eviction",
            drift_baseline_chunks=2,
            drift_patience=2,
            refresh_cooldown_chunks=2,
            # Quick backoff, late breaker: the refresh-failure
            # scenario must land a good build inside the stream (the
            # breaker path is exercised deterministically in
            # tests/chaos).
            refresh_backoff_chunks=1,
            refresh_breaker_threshold=4,
            quarantine_chunks=8,
            parallel=parallel_for(workers),
        )

    def run_one(name, chaos, workers, health=None):
        if name in SERVING_SCENARIOS:
            return run_serving_scenario(
                chaos, engine, pages, writes,
                config=config, serving=serving_for(workers),
            )
        if name in PREPARED_SCENARIOS:
            return run_prepared_scenario(
                chaos, pages, writes,
                topology=topology, config=config,
                chunk_requests=chunk,
                parallel=parallel_for(workers),
                health=health,
            )
        return run_fabric_scenario(
            chaos, pages, writes,
            topology=topology, config=config,
            chunk_requests=chunk,
            parallel=parallel_for(workers),
            health=health,
        )

    rows = []
    for name in SCENARIO_NAMES:
        if name in SERVING_SCENARIOS:
            layer, arms = "serving", ("n/a",)
        elif name in PREPARED_SCENARIOS:
            layer, arms = "prepared", ("off", "on")
        else:
            layer, arms = "fabric", ("off", "on")
        chaos = scenario_chaos(
            name, chaos_seed, horizon_chunks=scenario_horizons[name]
        )
        for workers in WORKER_COUNTS:
            base = run_one(name, None, workers)
            outs = {}
            for arm in arms:
                outs[arm] = run_one(
                    name,
                    chaos,
                    workers,
                    health=HEALTH if arm == "on" else None,
                )
            # One recovery window per cell, anchored on the
            # monitor-less observation so both arms price the same
            # chunk range (the monitor's own transitions must not
            # move the goalposts of its comparison).
            anchor = outs.get("off") or next(iter(outs.values()))
            recover_at = recovery_chunk(
                anchor["timeline"], anchor["events"]
            )
            for arm in arms:
                row = _row(
                    name, layer, arm, workers,
                    outs[arm], base, recover_at,
                )
                rows.append(row)
                print(
                    f"{name:18s} w={workers} mon={arm:3s}"
                    f"  faults {row['faults']:2d}"
                    f"  miss {100 * row['miss_rate']:6.2f}%"
                    f" (base {100 * row['baseline_miss_rate']:5.2f}%)"
                    f"  tail {100 * row['tail_miss_rate']:6.2f}%"
                    f" lat {row['tail_latency_us']:7.2f}us"
                    f"  q {row['quarantines']}"
                )

    # Prepared-path parity: with chaos and monitoring disabled,
    # run_prepared (warm-up cut disabled) must reproduce the chunked
    # streamed baseline byte for byte.
    streamed = run_fabric_scenario(
        None, pages, writes,
        topology=topology, config=config, chunk_requests=chunk,
        parallel=parallel_for(WORKER_COUNTS[0]),
    )
    prepared = run_prepared_scenario(
        None, pages, writes,
        topology=topology, config=config, chunk_requests=chunk,
        parallel=parallel_for(WORKER_COUNTS[0]),
    )
    parity_fields = ("accesses", "miss_rate", "total_time_ns")
    prepared_parity = {
        "fields": list(parity_fields),
        "streamed": {f: streamed[f] for f in parity_fields},
        "prepared": {f: prepared[f] for f in parity_fields},
        "identical": all(
            streamed[f] == prepared[f] for f in parity_fields
        ),
    }
    print(
        "prepared parity: "
        + ("byte-identical" if prepared_parity["identical"]
           else "MISMATCH")
    )

    mismatches = []
    for name in SCENARIO_NAMES:
        for arm in ("off", "on", "n/a"):
            per_worker = [
                r for r in rows
                if r["scenario"] == name and r["monitor"] == arm
            ]
            if not per_worker:
                continue
            reference = {
                k: v
                for k, v in per_worker[0].items()
                if k != "workers"
            }
            for other in per_worker[1:]:
                candidate = {
                    k: v for k, v in other.items() if k != "workers"
                }
                if candidate != reference:
                    mismatches.append(f"{name}/{arm}")
                    break
    print(
        "determinism: "
        + ("identical across worker counts" if not mismatches
           else f"MISMATCH in {mismatches}")
    )

    return {
        "bench": "chaos_recovery",
        "version": 2,
        "smoke": smoke,
        "seed": seed,
        "chaos_seed": chaos_seed,
        "stream": {
            "n_accesses": int(pages.shape[0]),
            "chunk_requests": chunk,
            "n_chunks": int(n_chunks),
            "fault_horizon_chunks": int(horizon),
            "failslow_horizon_chunks": int(
                scenario_horizons["device_failslow"]
            ),
        },
        "health": {
            "latency_threshold": HEALTH.latency_threshold,
            "miss_threshold": HEALTH.miss_threshold,
            "breach_chunks": HEALTH.breach_chunks,
            "quarantine_chunks": HEALTH.quarantine_chunks,
            "probation_chunks": HEALTH.probation_chunks,
        },
        "scenarios": rows,
        "prepared_parity": prepared_parity,
        "determinism": {
            "worker_counts": list(WORKER_COUNTS),
            "identical": not mismatches,
            "mismatched_scenarios": mismatches,
        },
    }


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in (
        "scenarios", "determinism", "stream", "prepared_parity"
    ):
        if key not in payload:
            problems.append(f"missing top-level {key!r}")
    if problems:
        return problems
    rows = payload["scenarios"]
    n_fabric = sum(
        1 for n in SCENARIO_NAMES
        if n not in SERVING_SCENARIOS
    )
    expected_rows = (
        len(SERVING_SCENARIOS) + 2 * n_fabric
    ) * len(WORKER_COUNTS)
    if not isinstance(rows, list) or len(rows) != expected_rows:
        return [
            f"'scenarios' must list {expected_rows} rows"
            " (serving scenarios + fabric/prepared scenarios x"
            " monitor on/off, each at"
            f" {len(WORKER_COUNTS)} worker counts)"
        ]
    for i, row in enumerate(rows):
        for fieldname, kind in ROW_SCHEMA.items():
            if fieldname not in row:
                problems.append(f"scenarios[{i}]: missing {fieldname!r}")
            elif kind is float:
                if not isinstance(row[fieldname], (int, float)):
                    problems.append(
                        f"scenarios[{i}].{fieldname}: not numeric"
                    )
            elif not isinstance(row[fieldname], kind):
                problems.append(
                    f"scenarios[{i}].{fieldname}:"
                    f" expected {kind.__name__}"
                )
    if problems:
        return problems

    n_accesses = payload["stream"]["n_accesses"]
    if not payload["determinism"].get("identical", False):
        problems.append(
            "acceptance: scenario rows diverged across worker counts"
            f" ({payload['determinism'].get('mismatched_scenarios')})"
        )
    if not payload["prepared_parity"].get("identical", False):
        problems.append(
            "acceptance: disabled-chaos run_prepared diverged from"
            " the streamed fabric baseline"
            f" ({payload['prepared_parity']})"
        )
    for row in rows:
        label = (
            f"{row['scenario']}"
            f" (workers={row['workers']}, monitor={row['monitor']})"
        )
        if row["faults"] < 1:
            problems.append(
                f"acceptance: {label} observed no faults; the"
                " scenario exercised nothing"
            )
        if row["accesses"] != n_accesses:
            problems.append(
                f"acceptance: {label} served {row['accesses']} of"
                f" {n_accesses} accesses (lost traffic)"
            )
        bound = max(
            RECOVERY_FACTOR * row["baseline_tail_miss_rate"],
            row["baseline_tail_miss_rate"] + RECOVERY_SLACK,
        )
        if row["tail_miss_rate"] > bound:
            problems.append(
                f"acceptance: {label} post-recovery miss rate"
                f" {row['tail_miss_rate']:.4f} exceeds bound"
                f" {bound:.4f} (baseline"
                f" {row['baseline_tail_miss_rate']:.4f})"
            )
        if row["scenario"] in (
            "device_failure", "prepared_failure"
        ) and row["failover_accesses"] <= 0:
            problems.append(
                f"acceptance: {label} observed no failover traffic"
            )
        if row["monitor"] == "on" and not row["monitor_digest"]:
            problems.append(
                f"acceptance: {label} carries no monitor decision"
                " digest"
            )
        if row["scenario"] == "worker_crash":
            if row["miss_rate"] != row["baseline_miss_rate"]:
                problems.append(
                    f"acceptance: {label} totals diverged from the"
                    " fault-free run (crash retries must be"
                    " transparent)"
                )
            if row["worker_retries"] < 1:
                problems.append(
                    f"acceptance: {label} performed no crash retries"
                )

    # Fail-slow response gate: quarantine must strictly beat riding
    # out the ramp, on both the miss and the latency tail.
    for workers in WORKER_COUNTS:
        arms = {
            row["monitor"]: row
            for row in rows
            if row["scenario"] == "device_failslow"
            and row["workers"] == workers
        }
        if "off" not in arms or "on" not in arms:
            problems.append(
                "acceptance: device_failslow must run both monitor"
                f" arms at workers={workers}"
            )
            continue
        on, off = arms["on"], arms["off"]
        if on["quarantines"] < 1:
            problems.append(
                "acceptance: device_failslow monitor-on arm"
                f" (workers={workers}) made no quarantine decision"
            )
        if not on["tail_miss_rate"] < off["tail_miss_rate"]:
            problems.append(
                "acceptance: device_failslow monitor-on tail miss"
                f" rate {on['tail_miss_rate']:.4f} not strictly"
                f" better than monitor-off"
                f" {off['tail_miss_rate']:.4f}"
                f" (workers={workers})"
            )
        if not on["tail_latency_us"] < off["tail_latency_us"]:
            problems.append(
                "acceptance: device_failslow monitor-on tail"
                f" latency {on['tail_latency_us']:.2f}us not"
                " strictly better than monitor-off"
                f" {off['tail_latency_us']:.2f}us"
                f" (workers={workers})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short stream + small mixture (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_chaos_recovery.json, or"
            " BENCH_chaos_recovery.smoke.json with --smoke)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=50,
        help=(
            "seed of the deterministic fault plans (the default is"
            " chosen so every channel lands faults inside both the"
            " smoke and full streams and the fail-slow ramp hits a"
            " single device early -- a sick *majority* would"
            " contaminate the fleet median the monitor judges"
            " against, which is a documented detection limit, not a"
            " scorecard regime)"
        ),
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid")
        return 0

    payload = run(
        smoke=args.smoke, seed=args.seed, chaos_seed=args.chaos_seed
    )
    output = args.output or (
        "BENCH_chaos_recovery.smoke.json"
        if args.smoke
        else "BENCH_chaos_recovery.json"
    )
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Telemetry-overhead benchmark: enabled-mode cost and parity gates.

The same seeded workload is replayed through both instrumented layers
-- the multi-device :class:`repro.cxl.fabric.CxlFabric` and the
sharded :class:`repro.serving.IcgmmCacheService` -- once with
telemetry disabled (the constructor default, i.e. the exact
pre-telemetry code path) and once with a full
:class:`repro.obs.Telemetry` bundle attached (metrics registry,
logical-clock tracer, event bridge, stage profiler).  The emitted
``BENCH_obs_overhead.json`` bakes in the acceptance gates:

1. **overhead** -- enabled-mode wall clock stays within
   ``OVERHEAD_GATE`` (5%) of the disabled run per layer, best-of-N
   timing so scheduler noise does not fail the gate;
2. **parity** -- the replay results (counters, miss rates, pricing)
   are byte-identical with and without telemetry attached;
3. **determinism** -- two enabled runs produce byte-identical
   snapshot digests, i.e. the exported telemetry itself is
   bit-reproducible.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # quick
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.setassoc import CacheGeometry
from repro.core.config import (
    FabricTopology,
    GmmEngineConfig,
    IcgmmConfig,
    ServingConfig,
    TelemetryConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.cxl.fabric import CxlFabric
from repro.obs import Telemetry
from repro.serving import IcgmmCacheService
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

#: Enabled-mode wall clock may exceed disabled by at most this
#: fraction (best-of-N per mode).
OVERHEAD_GATE = 0.05

#: Layers the bench replays through.
LAYERS = ("fabric", "serving")

#: Schema of every per-mode entry in ``modes``.
ROW_SCHEMA = {
    "layer": str,
    "telemetry": bool,
    "repeats": int,
    "seconds_best": float,
    "accesses": int,
    "throughput_maps": float,
}


def build_stream(n_phase: int, hot_pages: int, seed: int):
    """Two-phase stream whose hot set moves at the midpoint."""
    rng = np.random.default_rng(seed)
    stable = ZipfSampler(
        base_page=0, n_pages=hot_pages, alpha=1.2, write_fraction=0.3
    )
    moved = ZipfSampler(
        base_page=4 * hot_pages,
        n_pages=hot_pages,
        alpha=1.2,
        write_fraction=0.3,
    )
    pages_a, writes_a = stable.sample(n_phase, rng)
    pages_b, writes_b = moved.sample(n_phase, rng)
    return (
        np.concatenate([pages_a, pages_b]),
        np.concatenate([writes_a, writes_b]),
    )


def train_engine(pages, n_train, gmm_config, seed):
    """Offline-train an engine on the stream's leading slice."""
    timestamps = transform_timestamps(n_train, mode="prose")
    features = np.column_stack(
        [
            pages[:n_train].astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, gmm_config, np.random.default_rng(seed)
    )


def _telemetry() -> Telemetry:
    return Telemetry.from_config(TelemetryConfig(enabled=True, seed=0))


def _replay_fabric(config, pages, writes, chunk, telemetry):
    """(per-chunk ingest seconds, results dict) for one replay.

    Only the steady-state ingest calls are timed -- construction and
    telemetry bind are one-time costs outside the overhead gate --
    and each chunk is timed separately so the caller can take the
    per-chunk floor across repeats (see :func:`run`).
    """
    fabric = CxlFabric(
        FabricTopology(n_devices=4),
        config=config,
        telemetry=telemetry,
    )
    times = []
    try:
        fabric.bind("lru", 0.0)
        for start in range(0, pages.shape[0], chunk):
            started = time.perf_counter()
            fabric.ingest(
                pages[start : start + chunk],
                writes[start : start + chunk],
            )
            times.append(time.perf_counter() - started)
        return times, fabric.results().as_dict()
    finally:
        fabric.close()


def _replay_serving(config, engine, pages, writes, chunk, telemetry):
    """(per-chunk ingest seconds, summary dict) for one replay."""
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=ServingConfig(
            chunk_requests=chunk,
            n_shards=4,
            sharding="hash",
            strategy="gmm-caching-eviction",
            refresh_enabled=False,
        ),
        telemetry=telemetry,
    )
    times = []
    try:
        # Feed the stream chunk-aligned so each timed ingest call
        # processes exactly one serving chunk.
        for start in range(0, pages.shape[0], chunk):
            started = time.perf_counter()
            service.ingest(
                pages[start : start + chunk],
                writes[start : start + chunk],
            )
            times.append(time.perf_counter() - started)
        return times, service.summary()
    finally:
        service.close()


def _floor_seconds(runs):
    """Sum of per-chunk-position minima across repeated runs.

    A whole-run minimum still carries every chunk's worst-case
    scheduler noise; taking the floor per chunk position first and
    summing decorrelates the noise, which is what lets a 5% gate
    hold on runs tens of milliseconds long.
    """
    return sum(
        min(run[i] for run in runs) for i in range(len(runs[0]))
    )


def run(smoke: bool, seed: int = 7) -> dict:
    """Run the full bench; returns the JSON payload."""
    # Repeats are high on purpose: single runs sit in the tens of
    # milliseconds where scheduler noise swamps the real overhead,
    # and only the per-mode best over many interleaved rounds
    # converges to the true floor the gate compares.
    if smoke:
        n_phase, hot_pages, n_train = 12_000, 1_000, 8_000
        n_sets, chunk, repeats = 64, 4_096, 11
        gmm = GmmEngineConfig(
            n_components=6, max_iter=12, max_train_samples=6_000
        )
    else:
        n_phase, hot_pages, n_train = 40_000, 2_000, 24_000
        n_sets, chunk, repeats = 128, 8_192, 11
        gmm = GmmEngineConfig(
            n_components=10, max_iter=20, max_train_samples=12_000
        )
    pages, writes = build_stream(n_phase, hot_pages, seed=seed)
    geometry = CacheGeometry(
        capacity_bytes=n_sets * 8 * 4096,
        block_bytes=4096,
        associativity=8,
    )
    config = IcgmmConfig(geometry=geometry, gmm=gmm)
    engine = train_engine(pages, n_train, gmm, seed)
    accesses = int(pages.shape[0])

    replay = {
        "fabric": lambda telemetry: _replay_fabric(
            config, pages, writes, chunk, telemetry
        ),
        "serving": lambda telemetry: _replay_serving(
            config, engine, pages, writes, chunk, telemetry
        ),
    }

    rows, overhead, parity = [], {}, {}
    digests = []
    for layer in LAYERS:
        replay[layer](None)  # warm-up outside the timed repeats
        # Disabled/enabled repeats interleave so slow drift (thermal,
        # background load) hits both modes evenly; the per-chunk
        # floor across repeats (see _floor_seconds) keeps scheduler
        # spikes out of the gate.  Each enabled run gets its own
        # fresh bundle, so the first two double as the
        # digest-determinism probe.
        disabled_runs, enabled_runs = [], []
        disabled_out = enabled_out = None
        layer_digests = []
        for _ in range(max(repeats, 2)):
            times, disabled_out = replay[layer](None)
            disabled_runs.append(times)
            bundle = _telemetry()
            times, enabled_out = replay[layer](bundle)
            enabled_runs.append(times)
            if len(layer_digests) < 2:
                layer_digests.append(bundle.snapshot()["digest"])
        digests.append(tuple(layer_digests))
        disabled_s = _floor_seconds(disabled_runs)
        enabled_s = _floor_seconds(enabled_runs)
        ratio = enabled_s / disabled_s - 1.0
        overhead[layer] = {
            "disabled_seconds": round(disabled_s, 6),
            "enabled_seconds": round(enabled_s, 6),
            "ratio": round(ratio, 6),
        }
        parity[layer] = json.dumps(
            disabled_out, sort_keys=True
        ) == json.dumps(enabled_out, sort_keys=True)
        for enabled, seconds in (
            (False, disabled_s),
            (True, enabled_s),
        ):
            rows.append(
                {
                    "layer": layer,
                    "telemetry": enabled,
                    "repeats": max(repeats, 2),
                    "seconds_best": round(seconds, 6),
                    "accesses": accesses,
                    "throughput_maps": round(
                        accesses / seconds / 1e6, 4
                    ),
                }
            )
        print(
            f"{layer:8s} disabled {disabled_s:7.3f}s"
            f"  enabled {enabled_s:7.3f}s"
            f"  overhead {100 * ratio:+6.2f}%"
            f"  parity {'ok' if parity[layer] else 'BROKEN'}"
        )

    identical = all(a == b for a, b in digests)
    print(
        "determinism: "
        + (
            "snapshot digests identical across runs"
            if identical
            else "DIGEST MISMATCH"
        )
    )

    return {
        "bench": "obs_overhead",
        "smoke": smoke,
        "seed": seed,
        "overhead_gate": OVERHEAD_GATE,
        "stream": {
            "n_accesses": accesses,
            "chunk_requests": chunk,
            "timing_repeats": repeats,
        },
        "modes": rows,
        "overhead": overhead,
        "parity": parity,
        "determinism": {
            "digests_identical": identical,
            "digests": [list(pair) for pair in digests],
        },
    }


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("modes", "overhead", "parity", "determinism"):
        if key not in payload:
            problems.append(f"missing top-level {key!r}")
    if problems:
        return problems
    rows = payload["modes"]
    expected = 2 * len(LAYERS)
    if not isinstance(rows, list) or len(rows) != expected:
        return [
            f"'modes' must list {expected} rows"
            f" ({len(LAYERS)} layers x disabled/enabled)"
        ]
    for i, row in enumerate(rows):
        for fieldname, kind in ROW_SCHEMA.items():
            if fieldname not in row:
                problems.append(f"modes[{i}]: missing {fieldname!r}")
            elif kind is float:
                if not isinstance(row[fieldname], (int, float)):
                    problems.append(
                        f"modes[{i}].{fieldname}: not numeric"
                    )
            elif not isinstance(row[fieldname], kind):
                problems.append(
                    f"modes[{i}].{fieldname}: expected {kind.__name__}"
                )
    if problems:
        return problems

    gate = float(payload.get("overhead_gate", OVERHEAD_GATE))
    for layer in LAYERS:
        entry = payload["overhead"].get(layer)
        if entry is None:
            problems.append(f"overhead: missing layer {layer!r}")
            continue
        if entry["ratio"] > gate:
            problems.append(
                f"acceptance: {layer} telemetry overhead"
                f" {100 * entry['ratio']:.2f}% exceeds the"
                f" {100 * gate:.0f}% gate"
            )
        if not payload["parity"].get(layer, False):
            problems.append(
                f"acceptance: {layer} results diverged when"
                " telemetry was attached (parity broken)"
            )
    if not payload["determinism"].get("digests_identical", False):
        problems.append(
            "acceptance: snapshot digests diverged across repeated"
            " enabled runs"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short stream + small mixture (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_obs_overhead.json, or"
            " BENCH_obs_overhead.smoke.json with --smoke)"
        ),
    )
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid")
        return 0

    payload = run(smoke=args.smoke, seed=args.seed)
    output = args.output or (
        "BENCH_obs_overhead.smoke.json"
        if args.smoke
        else "BENCH_obs_overhead.json"
    )
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

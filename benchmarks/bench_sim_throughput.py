"""Simulation-throughput benchmark: reference loop vs fast engine.

Measures accesses/second of the scalar reference simulator
(:func:`repro.cache.setassoc.simulate`) and the chunked vectorized
engine (:func:`repro.cache.simulate_fast.simulate_fast`) across the
policy zoo and several trace lengths, asserting bit-identical
counters between the two paths on every run, and emits a
machine-readable ``BENCH_sim_throughput.json``.

Unlike the pytest-benchmark ablation benches this is a standalone
script (no fixtures, no GMM training) so it can run in seconds and in
CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --validate out.json

The trace is the standard skewed mix for cache studies: 80% of
accesses to a hot region half the cache's block count, 20% uniform
over an 8x-larger cold footprint, 30% writes; the GMM rows use
synthetic standard-normal scores with the admission threshold at the
10th percentile (score *values* do not affect throughput, only the
admit/bypass mix does).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "policy": str,
    "trace_length": int,
    "reference_s": float,
    "fast_s": float,
    "reference_accesses_per_s": float,
    "fast_accesses_per_s": float,
    "speedup": float,
    "stats_identical": bool,
    "miss_rate": float,
}

HOT_FRACTION = 0.8
WRITE_FRACTION = 0.3


def make_trace(n: int, geometry: CacheGeometry, seed: int = 1):
    """Skewed page stream + writes + synthetic scores."""
    rng = np.random.default_rng(seed)
    n_blocks = geometry.n_blocks
    hot = rng.integers(0, max(1, n_blocks // 2), n)
    cold = rng.integers(0, 8 * n_blocks, n)
    pages = np.where(rng.random(n) < HOT_FRACTION, hot, cold)
    is_write = rng.random(n) < WRITE_FRACTION
    scores = rng.standard_normal(n)
    return pages, is_write, scores


def policy_factories(pages: np.ndarray, threshold: float):
    """Fresh-policy factories for every benchmarked policy."""
    return {
        "lru": lambda: LruPolicy(),
        "fifo": lambda: FifoPolicy(),
        "lfu": lambda: LfuPolicy(),
        "clock": lambda: ClockPolicy(),
        "slru": lambda: SlruPolicy(),
        "2q": lambda: TwoQPolicy(),
        "random": lambda: RandomPolicy(np.random.default_rng(7)),
        "counter-random": lambda: CounterRandomPolicy(seed=7),
        "belady": lambda: BeladyPolicy(pages),
        "gmm": lambda: GmmCachePolicy(threshold=threshold),
    }


def bench_one(geometry, make_policy, pages, is_write, scores, warmup):
    """Time both paths once; returns (ref_s, fast_s, identical, mr)."""
    ref_cache = SetAssociativeCache(geometry)
    ref_policy = make_policy()
    t0 = time.perf_counter()
    ref_stats = simulate(
        ref_cache, ref_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
    )
    ref_s = time.perf_counter() - t0

    fast_cache = SetAssociativeCache(geometry)
    fast_policy = make_policy()
    t0 = time.perf_counter()
    fast_stats = simulate_fast(
        fast_cache, fast_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
    )
    fast_s = time.perf_counter() - t0

    identical = bool(
        ref_stats == fast_stats
        and np.array_equal(ref_cache.tags, fast_cache.tags)
        and np.array_equal(ref_cache.dirty, fast_cache.dirty)
        and np.array_equal(ref_cache.meta, fast_cache.meta)
        and np.array_equal(ref_cache.stamp, fast_cache.stamp)
    )
    return ref_s, fast_s, identical, ref_stats.miss_rate


def run(trace_lengths, policies, geometry, warmup=0.0):
    """Benchmark the matrix; returns the result-dict list."""
    results = []
    for n in trace_lengths:
        pages, is_write, scores = make_trace(n, geometry)
        threshold = float(np.quantile(scores, 0.1))
        factories = policy_factories(pages, threshold)
        for name in policies:
            ref_s, fast_s, identical, miss_rate = bench_one(
                geometry, factories[name], pages, is_write,
                scores, warmup,
            )
            row = {
                "policy": name,
                "trace_length": int(n),
                "reference_s": round(ref_s, 4),
                "fast_s": round(fast_s, 4),
                "reference_accesses_per_s": round(n / ref_s, 1),
                "fast_accesses_per_s": round(n / fast_s, 1),
                "speedup": round(ref_s / fast_s, 2),
                "stats_identical": identical,
                "miss_rate": round(miss_rate, 4),
            }
            results.append(row)
            print(
                f"{name:8s} n={n:>9,d}  ref {row['reference_accesses_per_s']:>12,.0f}/s"
                f"  fast {row['fast_accesses_per_s']:>12,.0f}/s"
                f"  speedup {row['speedup']:5.1f}x"
                f"  identical={identical}"
            )
    return results


def validate(payload: dict) -> list[str]:
    """Schema check of an emitted JSON payload; returns problems."""
    problems = []
    if "geometry" not in payload or "results" not in payload:
        return ["missing top-level 'geometry' or 'results'"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if not row.get("stats_identical", False):
            problems.append(f"results[{i}]: fast/reference diverged")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trace + policy subset (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_sim_throughput.json,"
            " or BENCH_sim_throughput.smoke.json with --smoke so a"
            " smoke run never clobbers the full results)"
        ),
    )
    parser.add_argument(
        "--lengths",
        type=int,
        nargs="+",
        default=None,
        help="trace lengths to benchmark",
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    # The paper's case-study geometry (64 MB / 4 KB / 8-way).
    geometry = CacheGeometry()
    if args.smoke:
        lengths = args.lengths or [20_000]
        policies = ("lru", "gmm", "clock")
        output = args.output or "BENCH_sim_throughput.smoke.json"
    else:
        lengths = args.lengths or [100_000, 1_000_000]
        policies = (
            "lru", "fifo", "lfu", "clock", "slru", "2q",
            "random", "counter-random", "belady", "gmm",
        )
        output = args.output or "BENCH_sim_throughput.json"

    results = run(lengths, policies, geometry)
    payload = {
        "bench": "sim_throughput",
        "geometry": {
            "capacity_bytes": geometry.capacity_bytes,
            "block_bytes": geometry.block_bytes,
            "associativity": geometry.associativity,
            "n_sets": geometry.n_sets,
        },
        "trace": {
            "hot_fraction": HOT_FRACTION,
            "write_fraction": WRITE_FRACTION,
        },
        "results": results,
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

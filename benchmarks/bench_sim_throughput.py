"""Simulation-throughput benchmark: reference loop vs fast engine.

Measures accesses/second of the scalar reference simulator
(:func:`repro.cache.setassoc.simulate`) and the chunked vectorized
engine (:func:`repro.cache.simulate_fast.simulate_fast`) across the
policy zoo, several trace lengths, and three trace shapes, asserting
bit-identical counters between the paths on every run, and emits a
machine-readable ``BENCH_sim_throughput.json``.

Trace shapes:

* ``skew`` -- the standard skewed mix for cache studies: 80% of
  accesses to a hot region half the cache's block count, 20% uniform
  over an 8x-larger cold footprint, 30% writes; the GMM rows use
  synthetic standard-normal scores with the admission threshold at
  the 10th percentile (score *values* do not affect throughput, only
  the admit/bypass mix does).
* ``hammer-page`` -- 90% of accesses hammer a single page: the
  per-page run-length batching fast path (PR 4).
* ``hammer-set`` -- 6 distinct pages that all collide in one cache
  set: the same-set run collapse fast path.  Each row also times the
  fast engine with ``set_run_collapse=False``; the recorded
  ``set_run_speedup`` is the collapse's own contribution, and the
  validator requires >= 2x on this shape for every
  ``supports_set_runs`` policy (full runs only).
* ``set-pingpong`` -- short same-set spans (12 runs of consecutive
  distinct tags, 3 accesses per run -- well under the
  ``SET_RUN_MIN_SPAN_REPS`` collapse threshold) rotating across 16
  sets: the *interrupted-span* shape that defeats both the long-span
  collapse and per-element rounds.  Each row also times the fast
  engine with ``short_span_batching=False``; the recorded
  ``short_span_speedup`` is the cross-set short-span batcher's own
  contribution, and the validator requires >= 2x on this shape for
  every ``supports_set_runs`` policy (full runs only).

Unlike the pytest-benchmark ablation benches this is a standalone
script (no fixtures, no GMM training) so it can run in seconds and in
CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_sim_throughput.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "policy": str,
    "trace": str,
    "trace_length": int,
    "reference_s": float,
    "fast_s": float,
    "fast_no_collapse_s": float,
    "fast_no_short_span_s": float,
    "reference_accesses_per_s": float,
    "fast_accesses_per_s": float,
    "speedup": float,
    "set_run_speedup": float,
    "short_span_speedup": float,
    "stats_identical": bool,
    "miss_rate": float,
}

HOT_FRACTION = 0.8
WRITE_FRACTION = 0.3

#: Policies whose kernels collapse same-set runs; the validator's
#: >= 2x ``set_run_speedup`` gate on the ``hammer-set`` trace applies
#: to these (full runs only).
SET_RUN_POLICIES = ("lru", "fifo", "lfu", "clock", "2q", "gmm",
                    "counter-random", "belady")

#: Acceptance gate on ``hammer-set`` rows of full runs.
MIN_SET_RUN_SPEEDUP = 2.0

#: Acceptance gate on ``set-pingpong`` rows of full runs: the
#: cross-set short-span batcher against the pre-batcher fast path.
MIN_SHORT_SPAN_SPEEDUP = 2.0


def make_trace(
    n: int, geometry: CacheGeometry, kind: str = "skew", seed: int = 1
):
    """Page stream + writes + synthetic scores for one trace shape."""
    rng = np.random.default_rng(seed)
    n_blocks = geometry.n_blocks
    cold = rng.integers(0, 8 * n_blocks, n)
    if kind == "skew":
        hot = rng.integers(0, max(1, n_blocks // 2), n)
        pages = np.where(rng.random(n) < HOT_FRACTION, hot, cold)
    elif kind == "hammer-page":
        pages = np.where(rng.random(n) < 0.9, 0, cold)
    elif kind == "hammer-set":
        # 6 distinct pages, all in set 0: one scorching set whose
        # working set fits the 8 ways.
        pages = rng.integers(0, 6, n) * geometry.n_sets
    elif kind == "set-pingpong":
        # Interrupted spans: each span is 12 runs of *consecutive
        # distinct* tags within one set (3 accesses per run, so run
        # batching engages), and spans rotate across 16 sets.  Every
        # span is far under the collapse threshold, so the stream
        # defeats both the long-span collapse and per-element
        # rounds -- the shape mechanism 6 exists for.
        reps, tags, run_len, sets_used = 12, 6, 3, 16
        n_spans = n // (reps * run_len) + 2
        set_of = np.arange(n_spans) % sets_used
        tag = rng.integers(0, tags, (n_spans, reps))
        for k in range(1, reps):
            same = tag[:, k] == tag[:, k - 1]
            tag[same, k] = (tag[same, k] + 1) % tags
        span_pages = tag * geometry.n_sets + set_of[:, None]
        pages = np.repeat(span_pages.reshape(-1), run_len)[:n]
    else:
        raise ValueError(f"unknown trace kind: {kind!r}")
    is_write = rng.random(n) < WRITE_FRACTION
    scores = rng.standard_normal(n)
    return pages.astype(np.int64), is_write, scores


def policy_factories(pages: np.ndarray, threshold: float):
    """Fresh-policy factories for every benchmarked policy."""
    return {
        "lru": lambda: LruPolicy(),
        "fifo": lambda: FifoPolicy(),
        "lfu": lambda: LfuPolicy(),
        "clock": lambda: ClockPolicy(),
        "slru": lambda: SlruPolicy(),
        "2q": lambda: TwoQPolicy(),
        "random": lambda: RandomPolicy(np.random.default_rng(7)),
        "counter-random": lambda: CounterRandomPolicy(seed=7),
        "belady": lambda: BeladyPolicy(pages),
        "gmm": lambda: GmmCachePolicy(threshold=threshold),
    }


def bench_one(geometry, make_policy, pages, is_write, scores, warmup):
    """Time all four paths once.

    Returns ``(ref_s, fast_s, fast_plain_s, fast_long_only_s,
    identical, miss_rate)`` where ``fast_plain_s`` is the fast engine
    with set-run collapse disabled and ``fast_long_only_s`` keeps the
    collapse but disables cross-set short-span batching (the pre-PR
    fast path) -- identity is asserted across all four.
    """
    ref_cache = SetAssociativeCache(geometry)
    ref_policy = make_policy()
    t0 = time.perf_counter()
    ref_stats = simulate(
        ref_cache, ref_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
    )
    ref_s = time.perf_counter() - t0

    fast_cache = SetAssociativeCache(geometry)
    fast_policy = make_policy()
    t0 = time.perf_counter()
    fast_stats = simulate_fast(
        fast_cache, fast_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
    )
    fast_s = time.perf_counter() - t0

    plain_cache = SetAssociativeCache(geometry)
    plain_policy = make_policy()
    t0 = time.perf_counter()
    plain_stats = simulate_fast(
        plain_cache, plain_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
        set_run_collapse=False,
    )
    plain_s = time.perf_counter() - t0

    long_cache = SetAssociativeCache(geometry)
    long_policy = make_policy()
    t0 = time.perf_counter()
    long_stats = simulate_fast(
        long_cache, long_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
        short_span_batching=False,
    )
    long_s = time.perf_counter() - t0

    identical = bool(
        ref_stats == fast_stats
        and ref_stats == plain_stats
        and ref_stats == long_stats
        and np.array_equal(ref_cache.tags, fast_cache.tags)
        and np.array_equal(ref_cache.dirty, fast_cache.dirty)
        and np.array_equal(ref_cache.meta, fast_cache.meta)
        and np.array_equal(ref_cache.stamp, fast_cache.stamp)
        and np.array_equal(ref_cache.tags, plain_cache.tags)
        and np.array_equal(ref_cache.dirty, plain_cache.dirty)
        and np.array_equal(ref_cache.meta, plain_cache.meta)
        and np.array_equal(ref_cache.stamp, plain_cache.stamp)
        and np.array_equal(ref_cache.tags, long_cache.tags)
        and np.array_equal(ref_cache.dirty, long_cache.dirty)
        and np.array_equal(ref_cache.meta, long_cache.meta)
        and np.array_equal(ref_cache.stamp, long_cache.stamp)
    )
    return (
        ref_s, fast_s, plain_s, long_s, identical,
        ref_stats.miss_rate,
    )


def run(matrix, policies, geometry, warmup=0.0):
    """Benchmark ``(trace_kind, length)`` pairs x policies."""
    results = []
    for kind, n in matrix:
        pages, is_write, scores = make_trace(n, geometry, kind)
        threshold = float(np.quantile(scores, 0.1))
        factories = policy_factories(pages, threshold)
        for name in policies:
            (
                ref_s, fast_s, plain_s, long_s, identical, miss_rate,
            ) = bench_one(
                geometry, factories[name], pages, is_write,
                scores, warmup,
            )
            row = {
                "policy": name,
                "trace": kind,
                "trace_length": int(n),
                "reference_s": round(ref_s, 4),
                "fast_s": round(fast_s, 4),
                "fast_no_collapse_s": round(plain_s, 4),
                "fast_no_short_span_s": round(long_s, 4),
                "reference_accesses_per_s": round(n / ref_s, 1),
                "fast_accesses_per_s": round(n / fast_s, 1),
                "speedup": round(ref_s / fast_s, 2),
                "set_run_speedup": round(plain_s / fast_s, 2),
                "short_span_speedup": round(long_s / fast_s, 2),
                "stats_identical": identical,
                "miss_rate": round(miss_rate, 4),
            }
            results.append(row)
            print(
                f"{name:8s} {kind:12s} n={n:>9,d}"
                f"  ref {row['reference_accesses_per_s']:>12,.0f}/s"
                f"  fast {row['fast_accesses_per_s']:>12,.0f}/s"
                f"  speedup {row['speedup']:6.1f}x"
                f"  set-run {row['set_run_speedup']:5.1f}x"
                f"  short-span {row['short_span_speedup']:5.1f}x"
                f"  identical={identical}"
            )
    return results


def validate(payload: dict) -> list[str]:
    """Schema check of an emitted JSON payload; returns problems."""
    problems = []
    if "geometry" not in payload or "results" not in payload:
        return ["missing top-level 'geometry' or 'results'"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if not row.get("stats_identical", False):
            problems.append(f"results[{i}]: fast/reference diverged")
        if (
            not payload.get("smoke")
            and row.get("trace") == "hammer-set"
            and row.get("policy") in SET_RUN_POLICIES
            and row.get("set_run_speedup", 0.0) < MIN_SET_RUN_SPEEDUP
        ):
            problems.append(
                f"results[{i}]: set-run collapse speedup"
                f" {row.get('set_run_speedup')} <"
                f" {MIN_SET_RUN_SPEEDUP}x on hammer-set"
            )
        if (
            not payload.get("smoke")
            and row.get("trace") == "set-pingpong"
            and row.get("policy") in SET_RUN_POLICIES
            and row.get("short_span_speedup", 0.0)
            < MIN_SHORT_SPAN_SPEEDUP
        ):
            problems.append(
                f"results[{i}]: short-span batching speedup"
                f" {row.get('short_span_speedup')} <"
                f" {MIN_SHORT_SPAN_SPEEDUP}x on set-pingpong"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trace + policy subset (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_sim_throughput.json,"
            " or BENCH_sim_throughput.smoke.json with --smoke so a"
            " smoke run never clobbers the full results)"
        ),
    )
    parser.add_argument(
        "--lengths",
        type=int,
        nargs="+",
        default=None,
        help="trace lengths to benchmark",
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    # The paper's case-study geometry (64 MB / 4 KB / 8-way).
    geometry = CacheGeometry()
    if args.smoke:
        lengths = args.lengths or [20_000]
        matrix = [("skew", n) for n in lengths]
        matrix += [
            ("hammer-set", lengths[0]),
            ("set-pingpong", lengths[0]),
        ]
        policies = ("lru", "gmm", "clock")
        output = args.output or "BENCH_sim_throughput.smoke.json"
    else:
        lengths = args.lengths or [100_000, 1_000_000]
        matrix = [("skew", n) for n in lengths]
        matrix += [
            ("hammer-page", lengths[-1]),
            ("hammer-set", lengths[-1]),
            ("set-pingpong", lengths[-1]),
        ]
        policies = (
            "lru", "fifo", "lfu", "clock", "slru", "2q",
            "random", "counter-random", "belady", "gmm",
        )
        output = args.output or "BENCH_sim_throughput.json"

    results = run(matrix, policies, geometry)
    payload = {
        "bench": "sim_throughput",
        "smoke": bool(args.smoke),
        "geometry": {
            "capacity_bytes": geometry.capacity_bytes,
            "block_bytes": geometry.block_bytes,
            "associativity": geometry.associativity,
            "n_sets": geometry.n_sets,
        },
        "trace": {
            "hot_fraction": HOT_FRACTION,
            "write_fraction": WRITE_FRACTION,
        },
        "results": results,
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

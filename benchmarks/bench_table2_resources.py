"""Table 2 reproduction: resource and latency, LSTM vs GMM engines.

Paper Table 2:

    =====  ====  ===  ======  ======  ========
    model  BRAM  DSP  LUT     FF      latency
    LSTM   339   145  85029   103561  46.3 ms
    GMM    8     113  58353   152583  3 us
    =====  ====  ===  ======  ======  ========

plus Sec. 5.1's whole-system utilisation (190 BRAM = 14%, 117 DSP =
2% on the Alveo U50) and the ">10,000x" latency gap (15,433x).

The rows come from the calibrated analytic models; the bench also
measures the *executable* engines (numpy LSTM forward pass vs
vectorised GMM scoring) to show the same asymmetry in software.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.gmm import fit_gmm
from repro.hardware import (
    FpgaSpec,
    GmmEngineTiming,
    LstmEngineTiming,
    engine_speedup,
    estimate_gmm_engine,
    estimate_icgmm_system,
    estimate_lstm_engine,
)
from repro.lstm import LstmNetwork


def test_table2_reproduction(report, benchmark):
    """Regenerate Table 2 exactly and assert every reported value."""
    fpga = FpgaSpec()

    def build():
        gmm = estimate_gmm_engine()
        lstm = estimate_lstm_engine()
        gmm_us = GmmEngineTiming().latency_us(fpga)
        lstm_us = LstmEngineTiming().latency_us(fpga)
        return gmm, lstm, gmm_us, lstm_us

    gmm, lstm, gmm_us, lstm_us = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    table = render_table(
        ["engine", "BRAM", "DSP", "LUT", "FF", "latency"],
        [
            ["LSTM", lstm.bram, lstm.dsp, lstm.lut, lstm.ff,
             f"{lstm_us / 1000:.1f} ms"],
            ["GMM", gmm.bram, gmm.dsp, gmm.lut, gmm.ff,
             f"{gmm_us:.1f} us"],
        ],
    )
    system = estimate_icgmm_system()
    utilization = system.utilization(fpga)
    footer = (
        f"system: {system.bram} BRAM ({utilization['bram']:.0%}),"
        f" {system.dsp} DSP ({utilization['dsp']:.0%});"
        f" speedup {lstm_us / gmm_us:,.0f}x"
    )
    report("table2_resources", table + "\n" + footer)

    # Exact Table 2 values.
    assert (gmm.bram, gmm.dsp, gmm.lut, gmm.ff) == (
        8, 113, 58_353, 152_583,
    )
    assert (lstm.bram, lstm.dsp, lstm.lut, lstm.ff) == (
        339, 145, 85_029, 103_561,
    )
    assert gmm_us == pytest.approx(3.0, abs=0.01)
    assert lstm_us / 1000 == pytest.approx(46.3, abs=0.1)
    # ">10,000x" (15,433x) latency gap and the Sec. 5.1 system totals.
    assert engine_speedup(
        LstmEngineTiming(), GmmEngineTiming(), fpga
    ) == pytest.approx(15_433, rel=0.01)
    assert (system.bram, system.dsp) == (190, 117)


def test_software_engines_show_same_asymmetry(report, benchmark):
    """The executable engines echo Table 2's cost gap in software."""
    rng = np.random.default_rng(0)
    points = rng.standard_normal((20_000, 2))
    gmm = fit_gmm(points[:2_000], 16, rng, max_iter=10)
    lstm = LstmNetwork(
        input_size=2, hidden_size=64, n_layers=3, rng=rng
    )
    sequences = rng.standard_normal((64, 32, 2))

    import time

    t0 = time.perf_counter()
    gmm.score_samples(points)
    gmm_per_decision = (time.perf_counter() - t0) / points.shape[0]
    t0 = time.perf_counter()
    lstm.predict(sequences)
    lstm_per_decision = (time.perf_counter() - t0) / sequences.shape[0]
    ratio = lstm_per_decision / gmm_per_decision
    report(
        "table2_software_engines",
        f"software per-decision cost: GMM {gmm_per_decision * 1e6:.2f} us,"
        f" LSTM {lstm_per_decision * 1e6:.2f} us (ratio {ratio:.0f}x)",
    )
    assert ratio > 10  # orders of magnitude apart even in numpy

    # Benchmark the GMM scoring path (the one on the miss path).
    benchmark(gmm.score_samples, points)

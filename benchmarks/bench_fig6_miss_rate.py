"""Fig. 6 reproduction: cache miss rate, LRU vs the GMM strategies.

Paper: "GMM reduces cache misses across all traces", with absolute
reductions from 0.32 (parsec) to 6.14 (stream) percentage points;
eviction-only is the best strategy for parsec and heap, a combined
approach for the others.

This bench regenerates the full figure -- miss rate per (workload,
strategy) -- asserts the reproduction's shape claims, and reports the
timing of one representative end-to-end pipeline run.
"""

import pytest

from repro.analysis import grouped_bar_chart, render_dict_table
from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.core.system import IcgmmSystem
from repro.traces.workloads import WORKLOAD_NAMES

#: Paper values (percent, from Fig. 6) for shape comparison.
PAPER_LRU = {
    "parsec": 1.47,
    "memtier": 2.67,
    "hashmap": 2.10,
    "heap": 2.08,
    "sysbench": 3.87,
    "dlrm": 13.45,
    "stream": 36.78,
}


def test_fig6_reproduction(suite_result, report, benchmark):
    """Regenerate Fig. 6 and check every shape claim."""
    rows = suite_result.fig6_rows()
    table = benchmark.pedantic(
        render_dict_table,
        args=(rows,),
        kwargs={
            "columns": [
                "workload",
                "lru",
                "gmm-caching",
                "gmm-eviction",
                "gmm-caching-eviction",
                "best_gmm",
                "reduction_points",
            ]
        },
        rounds=1,
        iterations=1,
    )
    chart = grouped_bar_chart(
        list(suite_result.results),
        {
            strategy: [
                suite_result[w].outcomes[strategy].miss_rate_percent
                for w in suite_result.results
            ]
            for strategy in (
                "lru",
                "gmm-caching",
                "gmm-eviction",
                "gmm-caching-eviction",
            )
        },
    )
    report("fig6_miss_rate", table + "\n\n" + chart)

    # Shape claim 1: the best GMM strategy beats LRU on every trace.
    for workload in WORKLOAD_NAMES:
        assert suite_result[workload].miss_reduction_points > 0, (
            f"GMM failed to beat LRU on {workload}"
        )

    # Shape claim 2: reductions land in the paper's band (sub-point on
    # the cache-friendly traces, several points on dlrm/stream).
    reductions = {
        w: suite_result[w].miss_reduction_points for w in WORKLOAD_NAMES
    }
    assert max(reductions, key=reductions.get) == "stream"
    assert reductions["stream"] > 4.0
    assert reductions["dlrm"] > 1.5
    for workload in ("parsec", "memtier", "hashmap", "heap", "sysbench"):
        assert 0.0 < reductions[workload] < 2.5

    # Shape claim 3: miss-rate ordering across workloads matches the
    # paper (stream worst, dlrm second, the rest low single digits).
    lru = {
        w: suite_result[w].lru.miss_rate_percent for w in WORKLOAD_NAMES
    }
    assert lru["stream"] > lru["dlrm"] > max(
        lru[w]
        for w in ("parsec", "memtier", "hashmap", "heap", "sysbench")
    )

    # Shape claim 4: LRU baselines sit near the paper's absolute
    # values (within a factor of ~1.6 -- different traces, same bands).
    for workload, paper_value in PAPER_LRU.items():
        assert lru[workload] == pytest.approx(paper_value, rel=0.6), (
            f"{workload}: LRU {lru[workload]:.2f}% vs paper"
            f" {paper_value:.2f}%"
        )

    # Shape claim 5: eviction-only wins on parsec (as in the paper).
    assert suite_result["parsec"].best_gmm.strategy == "gmm-eviction"


def test_fig6_pipeline_timing(benchmark):
    """Benchmark one reduced end-to-end pipeline run (memtier)."""
    config = IcgmmConfig(
        trace_length=60_000,
        gmm=GmmEngineConfig(
            n_components=16, max_train_samples=10_000
        ),
    )

    def run():
        return IcgmmSystem(config).run_benchmark(
            "memtier", strategies=("lru", "gmm-caching-eviction")
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.lru.stats.accesses > 0

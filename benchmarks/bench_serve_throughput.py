"""Serving front-end benchmark: pipelined vs synchronous ingest.

Replays one streaming-CSV drift scenario (two tenants, hot regions
relocated at the stream midpoint, consumed through
``stream_trace_chunks`` so the trace never fully materializes) four
ways against freshly trained but bit-identical engines:

* ``sync``            -- the plain ``IcgmmCacheService.ingest`` loop.
* ``deterministic/1`` -- ``ServingFrontend`` in deterministic mode,
  one worker.
* ``deterministic/4`` -- the same fixed logical-clock interleave at
  four workers.
* ``throughput``      -- the overlapped pipeline: producer thread,
  blocking bounded queue, model refresh built off the critical path.

Every run records wall time, served totals, swap history, and its
telemetry snapshot digest.  Four structured gates come out:

* ``parity``    -- both deterministic runs must match the sync loop
  exactly: totals, swap chunks, generation, *and* telemetry digest
  (always enforced; this is the front-end's correctness contract).
* ``zero_loss`` -- every run must serve exactly the requests the
  stream holds, in order (always enforced).
* ``refresh_stall`` -- the throughput run's on-path refresh cost
  (harvest time) must be at most ``MAX_ONPATH_FRACTION`` of the sync
  loop's inline refresh build time (enforced whenever the sync run
  actually refreshed).
* ``speedup``   -- pipelined wall time must beat sync by
  ``MIN_PIPELINE_SPEEDUP`` (enforced on full runs on hosts with at
  least ``MIN_CPUS_FOR_GATE`` CPUs; producer/consumer overlap cannot
  exist on one core, so smaller hosts record the ratio ungated)::

    PYTHONPATH=src python benchmarks/bench_serve_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_serve_throughput.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.obs import Telemetry
from repro.serving import IcgmmCacheService, ServingFrontend
from repro.traces.io import save_trace_csv, stream_trace_chunks
from repro.traces.mixing import multi_tenant_trace, relocate
from repro.traces.preprocess import transform_timestamps
from repro.traces.record import MemoryTrace
from repro.traces.workloads import get_workload

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "run": str,
    "pipeline": str,  # "off" | "deterministic" | "throughput"
    "workers": int,
    "seconds": float,
    "requests_in": int,
    "requests_served": int,
    "chunks": int,
    "hits": int,
    "misses": int,
    "accesses": int,
    "swaps": int,
    "generation": int,
    "digest": str,
    "in_order": bool,
    "backpressure_stalls": int,
    "refresh_overlap_chunks": int,
    "refresh_inline_s": float,
    "refresh_onpath_s": float,
}

#: JSON schema (field -> type) of each structured gate marker.
GATE_SCHEMA = {
    "metric": str,
    "threshold": float,
    "value": (int, float, type(None)),
    "status": str,  # "enforced" | "skipped"
    "reason": (str, type(None)),  # None iff enforced
}

GATE_NAMES = ("parity", "zero_loss", "refresh_stall", "speedup")

#: Full-run acceptance: pipelined wall time must beat the sync loop by
#: at least this factor on the drift scenario.
MIN_PIPELINE_SPEEDUP = 1.5

#: The throughput run's on-path refresh time (future harvest + swap)
#: as a fraction of the sync loop's inline refresh build time.
MAX_ONPATH_FRACTION = 0.10

#: The speedup gate needs real producer/consumer overlap, which one
#: core cannot provide.
MIN_CPUS_FOR_GATE = 2

TENANTS = ("memtier", "stream")


def make_drift_trace(length: int, serving: ServingConfig, seed: int) -> MemoryTrace:
    """Two-tenant stream whose hot regions shift at the midpoint.

    The same shape ``repro serve --drift`` synthesizes, rebuilt as one
    :class:`MemoryTrace` with monotonic timestamps so it round-trips
    through the CSV format.
    """
    rng = np.random.default_rng(seed)
    weights = [1.0] * len(TENANTS)
    half = length // 2
    head = multi_tenant_trace(
        [get_workload(name) for name in TENANTS],
        weights,
        half,
        rng,
        partition_pages=serving.partition_pages,
    )
    tail = relocate(
        multi_tenant_trace(
            [get_workload(name) for name in TENANTS],
            weights,
            length - half,
            rng,
            partition_pages=serving.partition_pages,
        ),
        base_page=serving.partition_pages // 8,
    )
    addresses = np.concatenate([head.addresses, tail.addresses])
    is_write = np.concatenate([head.is_write, tail.is_write])
    return MemoryTrace(addresses, is_write)


def _train_engine(
    csv_path: Path,
    window: int,
    n_train: int,
    config: IcgmmConfig,
    seed: int,
) -> GmmPolicyEngine:
    """A fresh engine off the stream's training prefix.

    Trained per run (same prefix, same seeded rng -> bit-identical
    engines) so no run ever observes another run's refresh folds.
    """
    _, chunk_iter = stream_trace_chunks(csv_path, window)
    pages: list[np.ndarray] = []
    got = 0
    for chunk in chunk_iter:
        pages.append(chunk.page_indices())
        got += len(chunk)
        if got >= n_train:
            break
    train_pages = np.concatenate(pages)[:n_train]
    timestamps = transform_timestamps(
        n_train,
        config.len_window,
        config.len_access_shot,
        config.timestamp_mode,
    )
    features = np.column_stack(
        [
            train_pages.astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, config.gmm, np.random.default_rng(seed)
    )


def run_one(
    run: str,
    pipeline: str,
    workers: int,
    csv_path: Path,
    window: int,
    n_train: int,
    config: IcgmmConfig,
    serving_base: ServingConfig,
    seed: int,
) -> dict:
    """One full replay of the streamed scenario; returns a result row."""
    serving = ServingConfig(
        chunk_requests=serving_base.chunk_requests,
        n_shards=serving_base.n_shards,
        sharding=serving_base.sharding,
        strategy=serving_base.strategy,
        parallel=ParallelConfig(workers=workers, backend="thread"),
        pipeline=pipeline,
        ingest_queue_chunks=serving_base.ingest_queue_chunks,
        refresh_async=pipeline == "throughput",
    )
    engine = _train_engine(csv_path, window, n_train, config, seed)
    telemetry = Telemetry()
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=serving,
        measure_from=n_train,
        telemetry=telemetry,
    )
    length, chunk_iter = stream_trace_chunks(csv_path, window)

    def windows():
        for chunk in chunk_iter:
            yield chunk.page_indices(), np.asarray(chunk.is_write)

    reports = []
    stalls = 0
    overlap = 0
    try:
        t0 = time.perf_counter()
        if pipeline == "off":
            served = 0
            for pages, is_write in windows():
                reports.extend(service.ingest(pages, is_write))
                served += len(pages)
            chunks = len(reports)
        else:
            frontend = ServingFrontend(service)
            front = frontend.run(windows())
            reports = front.reports
            served = front.consumed_requests
            chunks = front.consumed_chunks
            stalls = front.backpressure_stalls
            overlap = front.refresh_overlap_chunks
        seconds = time.perf_counter() - t0
        totals = service.totals
        summary = service.summary()
        profiler = service.pipeline.profiler
        sections = dict(profiler.seconds) if profiler else {}
        digest = telemetry.snapshot().get("digest", "")
    finally:
        service.close()
    indices = [report.chunk_index for report in reports]
    return {
        "run": run,
        "pipeline": pipeline,
        "workers": workers,
        "seconds": round(seconds, 4),
        "requests_in": int(length),
        "requests_served": int(served),
        "chunks": int(chunks),
        "hits": int(totals.hits),
        "misses": int(totals.misses),
        "accesses": int(totals.accesses),
        "swaps": len(summary["swaps"]),
        "generation": int(summary["generation"]),
        "digest": digest,
        "in_order": indices == sorted(indices),
        "backpressure_stalls": int(stalls),
        "refresh_overlap_chunks": int(overlap),
        "refresh_inline_s": round(sections.get("refresh", 0.0), 4),
        "refresh_onpath_s": round(
            sections.get("refresh.onpath", 0.0), 4
        ),
    }


def _rows_by_run(payload: dict) -> dict:
    return {
        row.get("run"): row
        for row in payload.get("results", [])
        if isinstance(row, dict)
    }


def _parity_mismatches(rows: dict) -> list[str]:
    """Fields on which a deterministic run diverges from sync."""
    sync = rows.get("sync")
    if sync is None:
        return ["missing sync row"]
    mismatches = []
    for run, row in rows.items():
        if row.get("pipeline") != "deterministic":
            continue
        for field in (
            "hits",
            "misses",
            "accesses",
            "swaps",
            "generation",
            "digest",
        ):
            if row.get(field) != sync.get(field):
                mismatches.append(f"{run}.{field}")
    return mismatches


def _lost_or_reordered(rows: dict) -> int:
    lost = 0
    for row in rows.values():
        lost += abs(
            int(row.get("requests_in", 0))
            - int(row.get("requests_served", -1))
        )
        if not row.get("in_order", False):
            lost += 1
    return lost


def _stall_fraction(rows: dict):
    sync = rows.get("sync", {})
    through = rows.get("throughput", {})
    inline = float(sync.get("refresh_inline_s", 0.0))
    if inline <= 0.0:
        return None
    return float(through.get("refresh_onpath_s", 0.0)) / inline


def _speedup(rows: dict):
    through = float(rows.get("throughput", {}).get("seconds", 0.0))
    if through <= 0.0:
        return None
    return float(rows.get("sync", {}).get("seconds", 0.0)) / through


def build_gates(payload: dict) -> dict:
    """The four structured gate markers for an emitted payload."""
    rows = _rows_by_run(payload)
    mode = payload["mode"]
    cpu_count = payload["cpu_count"]

    mismatches = _parity_mismatches(rows)
    parity = {
        "metric": "deterministic-vs-sync field mismatches",
        "threshold": 0.0,
        "value": float(len(mismatches)),
        "status": "enforced",
        "reason": None,
    }
    zero_loss = {
        "metric": "requests lost or reordered across all runs",
        "threshold": 0.0,
        "value": float(_lost_or_reordered(rows)),
        "status": "enforced",
        "reason": None,
    }
    fraction = _stall_fraction(rows)
    refresh_stall = {
        "metric": "throughput refresh.onpath / sync inline refresh",
        "threshold": MAX_ONPATH_FRACTION,
        "value": round(fraction, 4) if fraction is not None else None,
        "status": "enforced" if fraction is not None else "skipped",
        "reason": (
            None
            if fraction is not None
            else "sync run recorded no inline refresh time"
        ),
    }
    ratio = _speedup(rows)
    speedup_enforced = mode == "full" and cpu_count >= MIN_CPUS_FOR_GATE
    speedup = {
        "metric": "sync seconds / throughput seconds",
        "threshold": MIN_PIPELINE_SPEEDUP,
        "value": round(ratio, 4) if ratio is not None else None,
        "status": "enforced" if speedup_enforced else "skipped",
        "reason": (
            None
            if speedup_enforced
            else (
                "smoke mode"
                if mode != "full"
                else (
                    f"host has {cpu_count} CPU(s);"
                    f" gate needs >= {MIN_CPUS_FOR_GATE}"
                )
            )
        ),
    }
    return {
        "parity": parity,
        "zero_loss": zero_loss,
        "refresh_stall": refresh_stall,
        "speedup": speedup,
    }


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("results", "mode", "cpu_count", "scenario", "gates"):
        if key not in payload:
            return [f"missing top-level {key!r}"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif kind is int:
                if not isinstance(row[field], int):
                    problems.append(f"results[{i}].{field}: not int")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: wrong type"
                )
    gates = payload["gates"]
    if not isinstance(gates, dict):
        return problems + ["'gates' must be an object"]
    for name in GATE_NAMES:
        gate = gates.get(name)
        if not isinstance(gate, dict):
            problems.append(f"gates.{name}: missing or not an object")
            continue
        for field, kind in GATE_SCHEMA.items():
            if field not in gate:
                problems.append(f"gates.{name}: missing {field!r}")
            elif not isinstance(gate[field], kind):
                problems.append(f"gates.{name}.{field}: wrong type")
        if gate.get("status") not in ("enforced", "skipped"):
            problems.append(
                f"gates.{name}.status:"
                f" {gate.get('status')!r} is not 'enforced'/'skipped'"
            )
        if gate.get("status") == "skipped" and not gate.get("reason"):
            problems.append(f"gates.{name}: skipped without a reason")
        if gate.get("status") == "enforced" and gate.get("reason"):
            problems.append(
                f"gates.{name}: enforced must carry reason=None"
            )
    rows = _rows_by_run(payload)
    # Correctness gates hold in every mode.
    mismatches = _parity_mismatches(rows)
    if mismatches:
        problems.append(
            "deterministic pipeline diverged from the sync loop on: "
            + ", ".join(mismatches)
        )
    lost = _lost_or_reordered(rows)
    if lost:
        problems.append(
            f"{lost} request(s) lost or reordered across runs"
        )
    fraction = _stall_fraction(rows)
    if (
        gates.get("refresh_stall", {}).get("status") == "enforced"
        and fraction is not None
        and fraction > MAX_ONPATH_FRACTION
    ):
        problems.append(
            f"off-path refresh stalls the consumer for {fraction:.3f}"
            f" of the sync inline refresh cost"
            f" (> {MAX_ONPATH_FRACTION})"
        )
    # The speedup gate binds only where overlap is physically possible.
    expected = (
        "enforced"
        if payload["mode"] == "full"
        and payload["cpu_count"] >= MIN_CPUS_FOR_GATE
        else "skipped"
    )
    status = gates.get("speedup", {}).get("status")
    if status is not None and status != expected:
        problems.append(
            f"gates.speedup.status {status!r} inconsistent with"
            f" mode={payload['mode']}"
            f" cpu_count={payload['cpu_count']}"
        )
    ratio = _speedup(rows)
    if status == "enforced":
        if ratio is None:
            problems.append("speedup gate enforced without both rows")
        elif ratio < MIN_PIPELINE_SPEEDUP:
            problems.append(
                f"pipelined ingest is only {ratio:.2f}x the sync loop"
                f" (< {MIN_PIPELINE_SPEEDUP}x)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small stream (CI smoke; speedup gate reported, not enforced)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_serve_throughput.json,"
            " or BENCH_serve_throughput.smoke.json with --smoke)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    if args.smoke:
        length, chunk, mode = 24_000, 2_048, "smoke"
        gmm = GmmEngineConfig(
            n_components=8, max_iter=15, max_train_samples=8_000
        )
        output = args.output or "BENCH_serve_throughput.smoke.json"
    else:
        length, chunk, mode = 160_000, 8_192, "full"
        gmm = GmmEngineConfig(
            n_components=16, max_iter=30, max_train_samples=20_000
        )
        output = args.output or "BENCH_serve_throughput.json"

    config = IcgmmConfig(trace_length=length, gmm=gmm, seed=args.seed)
    serving_base = ServingConfig(chunk_requests=chunk, n_shards=4)
    # Report windows are chunk multiples, so the sync loop's per-window
    # chunking equals the front-end's global chunking (odd windows are
    # the parity tests' job, not the timing run's).
    window = chunk * 4
    n_train = max(config.gmm.n_components + 1, int(length * 0.3))

    results = []
    with tempfile.TemporaryDirectory(prefix="bench_serve_") as scratch:
        csv_path = Path(scratch) / "drift.csv"
        trace = make_drift_trace(length, serving_base, args.seed)
        save_trace_csv(trace, csv_path)
        del trace
        for run, pipeline, workers in (
            ("sync", "off", 1),
            ("deterministic/1", "deterministic", 1),
            ("deterministic/4", "deterministic", 4),
            ("throughput", "throughput", 4),
        ):
            row = run_one(
                run,
                pipeline,
                workers,
                csv_path,
                window,
                n_train,
                config,
                serving_base,
                args.seed,
            )
            results.append(row)
            print(
                f"{run:16s} {row['seconds']:>8.3f}s"
                f"  served={row['requests_served']:>9,d}"
                f"  swaps={row['swaps']}"
                f"  stalls={row['backpressure_stalls']}"
                f"  overlap={row['refresh_overlap_chunks']}"
                f"  digest={row['digest'][:12]}"
            )

    payload = {
        "bench": "serve_throughput",
        "mode": mode,
        "cpu_count": os.cpu_count() or 1,
        "scenario": {
            "tenants": list(TENANTS),
            "length": length,
            "chunk_requests": chunk,
            "window_requests": window,
            "n_train": n_train,
            "drift": "midpoint relocate",
            "format": "streaming-csv",
        },
        "results": results,
    }
    payload["gates"] = build_gates(payload)
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    for name in GATE_NAMES:
        gate = payload["gates"][name]
        print(
            f"gate {name}: {gate['status']}"
            f" (value={gate['value']}, threshold={gate['threshold']})"
            + (f" -- {gate['reason']}" if gate["reason"] else "")
        )
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: the LSTM baseline as an *executable* cache policy.

Table 2 compares the two engines on hardware cost; Sec. 5.3 adds that
the lightweight LSTM "is hard to converge" on long traces.  This
bench runs the comparison end to end in software: both engines train
on the same features, score the same stream, and drive the identical
score-based eviction policy.  Reported: training wall-clock, scoring
wall-clock, and the resulting miss rates.
"""

import time

import numpy as np
import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.cache import SetAssociativeCache, simulate_fast
from repro.cache.policies import GmmCachePolicy
from repro.core.lstm_engine import LstmEngineConfig, LstmPolicyEngine
from repro.core.system import IcgmmSystem


@pytest.fixture(scope="module")
def setup():
    config = fast_config(trace_length=80_000)
    system = IcgmmSystem(config)
    rng = np.random.default_rng(config.seed)
    trace = system.generate_trace("memtier", rng)
    processed = system._preprocessor.process(trace)
    return config, system, processed


def _page_mean_scores(page_indices, request_scores):
    """Per-page mean of request scores (time-invariant view)."""
    unique, inverse = np.unique(page_indices, return_inverse=True)
    sums = np.bincount(inverse, weights=request_scores)
    counts = np.bincount(inverse)
    return (sums / counts)[inverse]


def test_lstm_vs_gmm_policy(setup, report, benchmark):
    """Train both engines, drive the same eviction policy."""
    config, system, processed = setup
    features = processed.features
    n_train = int(len(processed) * config.train_fraction)

    # GMM engine.
    t0 = time.perf_counter()
    rng = np.random.default_rng(config.seed)
    from repro.core.engine import GmmPolicyEngine

    gmm_engine = GmmPolicyEngine.train(
        features[:n_train], config.gmm, rng
    )
    gmm_train_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    gmm_scores = gmm_engine.page_scores(processed.page_indices)
    gmm_score_s = time.perf_counter() - t0

    # LSTM engine (reduced size; the paper's 3x128 is impractical in
    # numpy, which is the Sec. 5.3 point).
    lstm_config = LstmEngineConfig(
        hidden_size=24,
        n_layers=2,
        sequence_length=12,
        epochs=2,
        max_train_sequences=4_000,
    )
    t0 = time.perf_counter()
    lstm_engine = benchmark.pedantic(
        LstmPolicyEngine.train,
        args=(
            features[:n_train],
            processed.page_indices[:n_train],
            lstm_config,
            np.random.default_rng(config.seed),
        ),
        rounds=1,
        iterations=1,
    )
    lstm_train_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    lstm_request_scores = lstm_engine.score(features)
    lstm_scores = _page_mean_scores(
        processed.page_indices, lstm_request_scores
    )
    lstm_score_s = time.perf_counter() - t0

    def run_eviction(scores):
        cache = SetAssociativeCache(config.geometry)
        policy = GmmCachePolicy(admission=False, eviction=True)
        return simulate_fast(
            cache,
            policy,
            processed.page_indices,
            processed.trace.is_write,
            scores=scores,
            warmup_fraction=config.warmup_fraction,
        )

    from repro.cache.policies import LruPolicy

    cache = SetAssociativeCache(config.geometry)
    lru_stats = simulate_fast(
        cache,
        LruPolicy(),
        processed.page_indices,
        processed.trace.is_write,
        warmup_fraction=config.warmup_fraction,
    )
    gmm_stats = run_eviction(gmm_scores)
    lstm_stats = run_eviction(lstm_scores)

    report(
        "ablation_lstm_policy",
        render_table(
            ["engine", "train s", "score s", "eviction miss %"],
            [
                ["(lru baseline)", 0.0, 0.0, 100 * lru_stats.miss_rate],
                ["gmm", gmm_train_s, gmm_score_s,
                 100 * gmm_stats.miss_rate],
                ["lstm", lstm_train_s, lstm_score_s,
                 100 * lstm_stats.miss_rate],
            ],
        ),
    )

    # The GMM engine reaches a better policy...
    assert gmm_stats.miss_rate <= lstm_stats.miss_rate + 0.002
    # ...and beats LRU, while scoring far cheaper per decision than
    # the LSTM (the software echo of Table 2).
    assert gmm_stats.miss_rate < lru_stats.miss_rate
    assert lstm_score_s > 2 * gmm_score_s

"""Fig. 2 reproduction: spatial and temporal access distributions.

Paper Fig. 2 shows, for dlrm, parsec and sysbench, (left) access
counts against physical address groups -- multi-modal, "can be fitted
with different Gaussian functions" -- and (right) accessed addresses
against time -- non-random, phased.  The same panels are regenerated
here from the synthetic traces, with the two visual claims quantified:

* spatial multi-modality (separated density peaks, and a mixture
  fitting the profile far better than a single Gaussian), and
* temporal non-uniformity (the access profile varies across time
  bins).
"""

import numpy as np

from repro.analysis import histogram_figure, render_table
from repro.analysis.distributions import (
    gmm_spatial_fit,
    workload_distributions,
)
from repro.traces import get_workload

#: The three benchmarks Fig. 2 plots.
FIG2_WORKLOADS = ("dlrm", "parsec", "sysbench")


def _trace(name):
    rng = np.random.default_rng(42)
    return get_workload(name, scale=1 / 32).generate(120_000, rng)


def test_fig2_reproduction(report, benchmark):
    """Regenerate both Fig. 2 panels for the three benchmarks."""

    def compute():
        return {
            name: workload_distributions(name, _trace(name))
            for name in FIG2_WORKLOADS
        }

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    figures = []
    for name, dist in distributions.items():
        rows.append(
            [
                name,
                dist.spatial_modality,
                dist.temporal_nonuniformity,
            ]
        )
        figures.append(
            histogram_figure(
                dist.spatial.counts,
                height=7,
                title=f"{name}: spatial access density",
            )
        )
    table = render_table(
        ["workload", "spatial peaks", "temporal nonuniformity"],
        rows,
        float_format="{:.3f}",
    )
    report("fig2_distributions", table + "\n\n" + "\n\n".join(figures))

    for name, dist in distributions.items():
        # Fig. 2 left: multi-modal spatial density.  parsec's secondary
        # lobe (the swept buffer) sits an order of magnitude below its
        # cluster peaks -- like the low, wide lobes of Fig. 2(b) -- so
        # it is detected at a lower relative threshold.
        threshold = 0.005 if name == "parsec" else 0.01
        assert dist.spatial.modality(threshold) >= 2, name
        # Fig. 2 right: temporally non-uniform access profile.
        # (sysbench's structure is the weakest of the three -- its
        # scans revisit the same leaf region -- matching the subtler
        # temporal texture of Fig. 2(c).)
        assert dist.temporal_nonuniformity > 0.03, name


def test_fig2_mixture_fits_spatial_profile(report, benchmark):
    """Quantify "can be fitted with different Gaussian functions"."""
    trace = _trace("dlrm")

    def fit():
        return gmm_spatial_fit(
            trace, component_counts=(1, 2, 4, 8), max_samples=10_000
        )

    fits = benchmark.pedantic(fit, rounds=1, iterations=1)
    rows = [[k, v] for k, v in sorted(fits.items())]
    report(
        "fig2_spatial_fit",
        render_table(
            ["K (Gaussians)", "mean log-likelihood"],
            rows,
            float_format="{:.3f}",
        ),
    )
    # The mixture explains the spatial profile far better than one
    # Gaussian, and improves monotonically over the sweep.
    values = [fits[k] for k in sorted(fits)]
    assert values[-1] > values[0] + 0.2
    assert all(b >= a - 0.05 for a, b in zip(values, values[1:]))

"""Fabric-scaling benchmark: scalar CXL router vs vectorized fabric.

Replays the standard skewed trace over a fleet of CXL
memory-expansion devices two ways -- the per-access scalar reference
(:class:`repro.cxl.device.CxlMemoryDevice` walked request by request,
as :class:`repro.cxl.router.CxlSystem` does) and the vectorized
:class:`repro.cxl.fabric.CxlFabric` replay through the shared staged
pipeline -- asserting bit-identical per-device counters *and* priced
service times between the two, and emits a machine-readable
``BENCH_fabric_scaling.json``.

Acceptance (checked by ``--validate`` on a full run): every row
bit-exact, and the fabric at least 8x faster than the scalar router
on the paper geometry::

    PYTHONPATH=src python benchmarks/bench_fabric_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_fabric_scaling.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_fabric_scaling.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.core.config import FabricTopology, IcgmmConfig
from repro.core.policy import build_policy
from repro.cxl.device import CxlMemoryDevice
from repro.cxl.fabric import CxlFabric
from repro.traces.record import CACHE_LINE_SIZE

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "strategy": str,
    "placement": str,
    "n_devices": int,
    "trace_length": int,
    "scalar_s": float,
    "fabric_s": float,
    "scalar_accesses_per_s": float,
    "fabric_accesses_per_s": float,
    "speedup": float,
    "stats_identical": bool,
    "time_identical": bool,
    "miss_rate": float,
    "average_latency_us": float,
}

#: Full runs must beat the scalar router by at least this factor.
MIN_FULL_SPEEDUP = 8.0

HOT_FRACTION = 0.8
WRITE_FRACTION = 0.3


def make_trace(n: int, geometry: CacheGeometry, seed: int = 1):
    """Skewed page stream + writes + synthetic scores."""
    rng = np.random.default_rng(seed)
    n_blocks = geometry.n_blocks
    hot = rng.integers(0, max(1, n_blocks // 2), n)
    cold = rng.integers(0, 8 * n_blocks, n)
    pages = np.where(rng.random(n) < HOT_FRACTION, hot, cold)
    is_write = rng.random(n) < WRITE_FRACTION
    scores = rng.standard_normal(n)
    return pages, is_write, scores


def make_marginals(pages: np.ndarray, scores: np.ndarray):
    """Synthetic per-page marginal scores for the ``score`` placement.

    Stands in for the GMM's time-marginalised page view: each page's
    marginal is its first-occurrence request score, broadcast to all
    of its accesses (a pure page function, as placement requires).
    """
    unique_pages, first, inverse = np.unique(
        pages, return_index=True, return_inverse=True
    )
    per_page = scores[first]
    return per_page[inverse], per_page


def bench_one(
    geometry: CacheGeometry,
    topology: FabricTopology,
    strategy: str,
    pages,
    is_write,
    scores,
    threshold: float,
):
    """Time both paths once; returns the result row pieces."""
    config = IcgmmConfig(geometry=geometry)
    fabric = CxlFabric(topology, config=config)
    marginals = None
    score_cuts = None
    if topology.placement == "score":
        marginals, per_page = make_marginals(pages, scores)
        score_cuts = np.quantile(
            per_page, np.arange(1, topology.n_devices) / topology.n_devices
        )
    fabric.bind(strategy, threshold, score_cuts=score_cuts)
    t0 = time.perf_counter()
    fabric.ingest(
        pages, is_write, scores=scores, page_marginals=marginals
    )
    fabric_s = time.perf_counter() - t0
    result = fabric.results()

    # Scalar reference: the same sub-streams through the per-access
    # device loop the CxlSystem router drives, priced per request.
    device_ids, local_pages = fabric.place(pages, marginals)
    t0 = time.perf_counter()
    identical = True
    time_identical = True
    for d in range(topology.n_devices):
        positions = np.nonzero(device_ids == d)[0]
        device = CxlMemoryDevice(
            SetAssociativeCache(geometry),
            build_policy(strategy, threshold),
        )
        link_ns = fabric.links[d].request_latency_ns(CACHE_LINE_SIZE)
        lp = local_pages[positions]
        wr = is_write[positions]
        sc = scores[positions]
        total_ns = 0
        for i in range(positions.size):
            access = device.access(
                int(lp[i]), bool(wr[i]), float(sc[i])
            )
            total_ns += link_ns + access.latency_ns
        identical &= device.stats == result.devices[d].stats
        time_identical &= total_ns == result.devices[d].time_ns
    scalar_s = time.perf_counter() - t0
    return scalar_s, fabric_s, identical, time_identical, result


def run(trace_lengths, strategies, device_counts, geometry, placement):
    """Benchmark the matrix; returns the result-dict list."""
    results = []
    for n in trace_lengths:
        pages, is_write, scores = make_trace(n, geometry)
        threshold = float(np.quantile(scores, 0.1))
        for n_devices in device_counts:
            topology = FabricTopology(
                n_devices=n_devices, placement=placement
            )
            for strategy in strategies:
                (
                    scalar_s,
                    fabric_s,
                    identical,
                    time_identical,
                    result,
                ) = bench_one(
                    geometry,
                    topology,
                    strategy,
                    pages,
                    is_write,
                    scores,
                    threshold,
                )
                row = {
                    "strategy": strategy,
                    "placement": placement,
                    "n_devices": int(n_devices),
                    "trace_length": int(n),
                    "scalar_s": round(scalar_s, 4),
                    "fabric_s": round(fabric_s, 4),
                    "scalar_accesses_per_s": round(n / scalar_s, 1),
                    "fabric_accesses_per_s": round(n / fabric_s, 1),
                    "speedup": round(scalar_s / fabric_s, 2),
                    "stats_identical": bool(identical),
                    "time_identical": bool(time_identical),
                    "miss_rate": round(result.totals.miss_rate, 4),
                    "average_latency_us": round(
                        result.average_latency_us, 3
                    ),
                }
                results.append(row)
                print(
                    f"{strategy:22s} devices={n_devices} n={n:>9,d}"
                    f"  scalar {row['scalar_accesses_per_s']:>11,.0f}/s"
                    f"  fabric {row['fabric_accesses_per_s']:>12,.0f}/s"
                    f"  speedup {row['speedup']:5.1f}x"
                    f"  identical={identical and time_identical}"
                )
    return results


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("geometry", "results", "mode"):
        if key not in payload:
            return [f"missing top-level {key!r}"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if not row.get("stats_identical", False):
            problems.append(f"results[{i}]: fabric/scalar stats diverged")
        if not row.get("time_identical", False):
            problems.append(
                f"results[{i}]: fabric/scalar priced times diverged"
            )
    if payload["mode"] == "full":
        best = max(
            (row.get("speedup", 0.0) for row in payload["results"]),
            default=0.0,
        )
        if best < MIN_FULL_SPEEDUP:
            problems.append(
                f"best speedup {best}x below the {MIN_FULL_SPEEDUP}x"
                " acceptance bar"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trace + strategy subset (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_fabric_scaling.json,"
            " or BENCH_fabric_scaling.smoke.json with --smoke so a"
            " smoke run never clobbers the full results)"
        ),
    )
    parser.add_argument(
        "--placement",
        default="interleave",
        choices=("interleave", "range", "score"),
    )
    parser.add_argument(
        "--lengths", type=int, nargs="+", default=None,
        help="trace lengths to benchmark",
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    # The paper's case-study geometry (64 MB / 4 KB / 8-way).
    geometry = CacheGeometry()
    if args.smoke:
        lengths = args.lengths or [20_000]
        strategies = ("lru", "gmm-caching")
        device_counts = (2,)
        output = args.output or "BENCH_fabric_scaling.smoke.json"
        mode = "smoke"
    else:
        lengths = args.lengths or [400_000]
        strategies = ("lru", "gmm-caching", "gmm-eviction")
        device_counts = (1, 2, 4, 8)
        output = args.output or "BENCH_fabric_scaling.json"
        mode = "full"

    results = run(
        lengths, strategies, device_counts, geometry, args.placement
    )
    payload = {
        "bench": "fabric_scaling",
        "mode": mode,
        "geometry": {
            "capacity_bytes": geometry.capacity_bytes,
            "block_bytes": geometry.block_bytes,
            "associativity": geometry.associativity,
            "n_sets": geometry.n_sets,
        },
        "trace": {
            "hot_fraction": HOT_FRACTION,
            "write_fraction": WRITE_FRACTION,
        },
        "results": results,
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: cache associativity.

The paper fixes associativity = 8 (Sec. 5.1).  This bench sweeps it
at constant capacity, from direct-mapped to highly associative,
checking that (a) the LRU baseline improves with associativity and
then saturates, and (b) the GMM's advantage survives across the sweep
-- smart eviction needs victims to choose among, so it grows from
nothing at 1-way to its full margin by 8-way.
"""

import dataclasses

from conftest import fast_config

from repro.analysis import render_table
from repro.cache.setassoc import CacheGeometry
from repro.core.system import IcgmmSystem

WAYS = (1, 2, 8, 32)


def test_associativity_sweep(report, benchmark):
    """LRU vs best GMM across associativities (hashmap)."""
    base = fast_config()

    def run():
        rows = []
        for ways in WAYS:
            geometry = CacheGeometry(
                capacity_bytes=base.geometry.capacity_bytes,
                block_bytes=base.geometry.block_bytes,
                associativity=ways,
            )
            config = dataclasses.replace(base, geometry=geometry)
            result = IcgmmSystem(config).run_benchmark("hashmap")
            rows.append(
                (
                    ways,
                    result.lru.miss_rate_percent,
                    result.best_gmm.miss_rate_percent,
                    result.miss_reduction_points,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_associativity",
        render_table(
            ["ways", "LRU miss %", "GMM miss %", "reduction"],
            [list(row) for row in rows],
        ),
    )

    by_ways = {row[0]: row for row in rows}
    # Direct-mapped suffers conflict misses the 8-way avoids.
    assert by_ways[1][1] > by_ways[8][1]
    # Smart eviction has no choices in a direct-mapped cache; from
    # 2-way on the GMM beats LRU, with the paper's 8-way capturing
    # (nearly) the full margin.
    assert by_ways[1][3] >= -0.2
    for ways in (2, 8, 32):
        assert by_ways[ways][3] > 0, ways
    assert by_ways[8][3] > 0.5 * by_ways[32][3]

"""Ablation: Algorithm 1 windowing constants.

The paper "empirically chose len_window = 32 and len_access_shot =
10,000 for optimal GMM training performance" (Sec. 3.1).  This bench
sweeps the window length around that choice and reports the effect on
the end-to-end miss rate, checking the paper's pick sits in the flat
optimum rather than on a cliff.
"""

from conftest import fast_config

from repro.analysis import render_table
from repro.analysis.sweep import sweep_windowing

WINDOWS = (8, 32, 128)


def test_window_sweep(report, benchmark):
    """Miss rate across Algorithm 1 window lengths (memtier)."""
    base = fast_config()

    def run():
        return sweep_windowing(
            "memtier", len_windows=WINDOWS, config=base
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            p.value,
            p.lru_miss_percent,
            p.gmm_miss_percent,
            p.reduction_points,
        ]
        for p in points
    ]
    report(
        "ablation_windowing",
        render_table(
            ["len_window", "LRU miss %", "GMM miss %", "reduction"],
            rows,
        ),
    )

    by_window = {p.value: p for p in points}
    # The LRU baseline is windowing-independent (it never sees T).
    lru_values = {p.lru_miss_percent for p in points}
    assert len(lru_values) == 1
    # The paper's choice performs within 0.5 points of the sweep's
    # best -- it sits on the flat part of the curve.
    best = min(p.gmm_miss_percent for p in points)
    assert by_window[32].gmm_miss_percent <= best + 0.5

"""Trace-ingest benchmark: streaming vs materializing loads.

Writes one synthetic trace per size to a scratch directory in both
on-disk formats (``.csv`` text and uncompressed ``.npz``) and times
every load mode against it:

* ``csv/materialize``  -- ``load_trace_csv`` (whole trace in memory).
* ``csv/stream``       -- ``iter_trace_csv`` consumed chunk by chunk
  (at most one ``DEFAULT_CSV_CHUNK`` window resident at a time).
* ``npz/materialize``  -- ``load_trace_npz`` (eager array copies).
* ``npz/stream``       -- ``load_trace(mmap=True)`` (zero-copy
  ``np.memmap`` columns) consumed chunk by chunk.

The write side gets the same contrast: ``npz/rewrite`` materializes
the trace and re-saves it through ``np.savez`` (a full second copy in
RAM), while ``npz/rewrite-mmap`` streams mapped chunks through
``TraceNpzWriter`` -- column appends land in memory-mapped
temporaries, so the writer's RSS delta is bounded by the chunk, not
the trace.

Peak memory is measured for real, not modelled: each mode runs in a
fresh subprocess that reports ``getrusage(RUSAGE_SELF).ru_maxrss``,
and a no-op baseline child (same imports, no load) is subtracted so
the recorded ``delta_rss_kb`` is the load's own footprint.  Every
mode also folds the trace into a (sum-of-addresses, write-count,
sum-of-times) checksum; the validator requires all four modes of a
trace to agree, so the streaming paths are checked to read exactly
the bytes the materializing paths do.

Acceptance gate (full runs): on the largest trace the chunked CSV
stream's memory delta must stay within ``MAX_STREAM_RSS_FRACTION``
(25%) of the materializing CSV load's delta.  The ``.npz`` rows are
recorded ungated: a memory-mapped full scan necessarily faults the
whole file into page cache (resident but reclaimable), so its
``ru_maxrss`` is an honest ~1x of the file -- the win it shows
instead is the eager loader's extra copy and the near-zero open
cost::

    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_ingest_throughput.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.traces.io import (
    DEFAULT_CSV_CHUNK,
    TraceNpzWriter,
    iter_trace_csv,
    load_trace,
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.traces.record import MemoryTrace

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "trace": str,
    "rows": int,
    "format": str,  # "csv" | "npz"
    "mode": str,  # "materialize" | "stream" | "rewrite" | "rewrite-mmap"
    "file_bytes": int,
    "seconds": float,
    "rows_per_s": float,
    "peak_rss_kb": int,
    "baseline_rss_kb": int,
    "delta_rss_kb": int,
    "checksum_match": bool,
}

#: JSON schema (field -> type) of the structured ``gate`` marker.
GATE_SCHEMA = {
    "metric": str,
    "max_fraction": float,
    "trace": (str, type(None)),
    "fraction": (int, float, type(None)),
    "status": str,  # "enforced" | "skipped"
    "reason": (str, type(None)),  # None iff enforced
}

#: Full-run acceptance: on the largest trace, the streaming CSV
#: load's memory delta over baseline must be at most this fraction of
#: the materializing CSV load's delta.
MAX_STREAM_RSS_FRACTION = 0.25

WRITE_FRACTION = 0.3


def make_trace(n: int, seed: int = 1) -> MemoryTrace:
    """Synthetic trace: random pages, bursty timestamps."""
    rng = np.random.default_rng(seed)
    addresses = rng.integers(0, 1 << 40, n, dtype=np.int64) & ~0xFFF
    is_write = rng.random(n) < WRITE_FRACTION
    times = np.cumsum(rng.integers(0, 4, n, dtype=np.int64))
    return MemoryTrace(addresses, is_write, times)


def _checksum_chunk(state, addresses, is_write, times):
    state[0] += int(np.asarray(addresses, dtype=np.uint64).sum())
    state[1] += int(np.count_nonzero(is_write))
    state[2] += int(np.asarray(times, dtype=np.uint64).sum())


def _worker(mode: str, path: str, chunk: int) -> dict:
    """Load ``path`` with ``mode``, report time/RSS/checksum."""
    state = [0, 0, 0]
    rows = 0
    t0 = time.perf_counter()
    if mode == "baseline":
        pass
    elif mode == "generate":
        # Trace generation runs in a child too: on Linux ru_maxrss
        # survives fork+exec, so a parent that ever materialized the
        # trace would put a floor under every later worker's reading.
        trace = make_trace(chunk)
        rows = len(trace)
        _checksum_chunk(state, trace.addresses, trace.is_write, trace.times)
        save_trace_csv(trace, path + ".csv")
        save_trace_npz(trace, path + ".npz", compressed=False)
    elif mode == "csv-materialize":
        trace = load_trace_csv(path)
        rows = len(trace)
        _checksum_chunk(state, trace.addresses, trace.is_write, trace.times)
    elif mode == "csv-stream":
        for part in iter_trace_csv(path, chunk):
            rows += len(part)
            _checksum_chunk(state, part.addresses, part.is_write, part.times)
    elif mode == "npz-materialize":
        trace = load_trace_npz(path)
        rows = len(trace)
        _checksum_chunk(state, trace.addresses, trace.is_write, trace.times)
    elif mode == "npz-stream":
        trace = load_trace(path, mmap=True)
        rows = len(trace)
        for start in range(0, rows, chunk):
            part = trace[start : start + chunk]
            _checksum_chunk(state, part.addresses, part.is_write, part.times)
    elif mode == "npz-rewrite":
        trace = load_trace_npz(path)
        rows = len(trace)
        _checksum_chunk(state, trace.addresses, trace.is_write, trace.times)
        save_trace_npz(trace, path + ".rewrite.npz", compressed=False)
    elif mode == "npz-rewrite-mmap":
        trace = load_trace(path, mmap=True)
        rows = len(trace)
        with TraceNpzWriter(path + ".rewrite.npz", rows) as writer:
            for start in range(0, rows, chunk):
                part = trace[start : start + chunk]
                _checksum_chunk(
                    state, part.addresses, part.is_write, part.times
                )
                writer.append(part.addresses, part.is_write, part.times)
    else:
        raise SystemExit(f"unknown worker mode: {mode!r}")
    seconds = time.perf_counter() - t0
    return {
        "seconds": seconds,
        "rows": rows,
        "checksum": state,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _spawn(mode: str, path: str, chunk: int) -> dict:
    """Run one load mode in a fresh subprocess; parse its report."""
    src = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(src), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, __file__, "--worker", mode, path, str(chunk)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout)


def run(sizes, chunk: int, scratch: Path):
    """Benchmark every (trace, format, mode) cell; returns rows."""
    results = []
    baseline = _spawn("baseline", str(scratch), chunk)
    base_rss = int(baseline["ru_maxrss_kb"])
    for label, n in sizes:
        csv_path = scratch / f"{label}.csv"
        npz_path = scratch / f"{label}.npz"
        generated = _spawn("generate", str(scratch / label), n)
        reference = generated["checksum"]
        for fmt, path, mode in (
            ("csv", csv_path, "materialize"),
            ("csv", csv_path, "stream"),
            ("npz", npz_path, "materialize"),
            ("npz", npz_path, "stream"),
            ("npz", npz_path, "rewrite"),
            ("npz", npz_path, "rewrite-mmap"),
        ):
            report = _spawn(f"{fmt}-{mode}", str(path), chunk)
            rss = int(report["ru_maxrss_kb"])
            row = {
                "trace": label,
                "rows": int(report["rows"]),
                "format": fmt,
                "mode": mode,
                "file_bytes": path.stat().st_size,
                "seconds": round(report["seconds"], 4),
                "rows_per_s": round(
                    report["rows"] / max(report["seconds"], 1e-9), 1
                ),
                "peak_rss_kb": rss,
                "baseline_rss_kb": base_rss,
                "delta_rss_kb": rss - base_rss,
                "checksum_match": report["checksum"] == reference
                and int(report["rows"]) == n,
            }
            results.append(row)
            print(
                f"{label:8s} {fmt}/{mode:11s} rows={n:>10,d}"
                f"  {row['rows_per_s']:>12,.0f} rows/s"
                f"  delta-rss {row['delta_rss_kb']:>9,d} KB"
                f"  identical={row['checksum_match']}"
            )
    return results


def _stream_fraction(payload: dict):
    """(trace, stream/materialize CSV delta-RSS ratio) on the
    largest trace, or (None, None) when the rows are missing."""
    rows = [
        row
        for row in payload.get("results", [])
        if isinstance(row, dict) and row.get("format") == "csv"
    ]
    if not rows:
        return None, None
    largest = max(rows, key=lambda row: row.get("rows", 0))["trace"]
    deltas = {
        row["mode"]: row.get("delta_rss_kb", 0)
        for row in rows
        if row.get("trace") == largest
    }
    if "stream" not in deltas or "materialize" not in deltas:
        return largest, None
    return largest, deltas["stream"] / max(deltas["materialize"], 1)


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("results", "mode", "chunk_requests", "gate"):
        if key not in payload:
            return [f"missing top-level {key!r}"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if not row.get("checksum_match", False):
            problems.append(
                f"results[{i}]: streamed/materialized content diverged"
            )
    gate = payload["gate"]
    if not isinstance(gate, dict):
        problems.append("'gate' must be a structured object")
        gate = {}
    for field, kind in GATE_SCHEMA.items():
        if field not in gate:
            problems.append(f"gate: missing {field!r}")
        elif not isinstance(gate[field], kind):
            problems.append(f"gate.{field}: wrong type")
    if gate.get("status") not in ("enforced", "skipped"):
        problems.append(
            f"gate.status: {gate.get('status')!r} is not"
            " 'enforced'/'skipped'"
        )
    if gate.get("status") == "skipped" and not gate.get("reason"):
        problems.append("gate.status skipped without a reason")
    if payload["mode"] == "full":
        if gate.get("status") != "enforced":
            problems.append("full run must enforce the RSS gate")
        _, fraction = _stream_fraction(payload)
        if fraction is None:
            problems.append("full run is missing the gated CSV rows")
        elif fraction > MAX_STREAM_RSS_FRACTION:
            problems.append(
                f"streaming CSV load uses {fraction:.2f} of the"
                f" materializing load's memory delta on the largest"
                f" trace (> {MAX_STREAM_RSS_FRACTION})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small trace (CI smoke run; RSS gate reported, not enforced)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_ingest_throughput.json,"
            " or BENCH_ingest_throughput.smoke.json with --smoke so a"
            " smoke run never clobbers the full results)"
        ),
    )
    parser.add_argument(
        "--chunk", type=int, default=DEFAULT_CSV_CHUNK,
        help="streaming chunk size in requests",
    )
    parser.add_argument(
        "--worker",
        nargs=3,
        metavar=("MODE", "PATH", "CHUNK"),
        help=argparse.SUPPRESS,  # internal: single-load subprocess
    )
    args = parser.parse_args(argv)

    if args.worker:
        mode, path, chunk = args.worker
        print(json.dumps(_worker(mode, path, int(chunk))))
        return 0

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    if args.smoke:
        sizes = [("small", 50_000)]
        output = args.output or "BENCH_ingest_throughput.smoke.json"
        mode = "smoke"
    else:
        sizes = [("small", 200_000), ("large", 3_000_000)]
        output = args.output or "BENCH_ingest_throughput.json"
        mode = "full"

    with tempfile.TemporaryDirectory(prefix="bench_ingest_") as scratch:
        results = run(sizes, args.chunk, Path(scratch))
    payload = {
        "bench": "ingest_throughput",
        "mode": mode,
        "chunk_requests": int(args.chunk),
        "results": results,
    }
    trace, fraction = _stream_fraction(payload)
    payload["gate"] = {
        "metric": "csv stream delta_rss / materialize delta_rss",
        "max_fraction": MAX_STREAM_RSS_FRACTION,
        "trace": trace,
        "fraction": round(fraction, 4) if fraction is not None else None,
        "status": "enforced" if mode == "full" else "skipped",
        "reason": None if mode == "full" else "smoke mode",
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: SSD device technology sweep.

Sec. 4.2: "The parameters for response time vary according to the
type of SSD or other storage devices."  The paper evaluates one TLC
target (75/900 us); this bench reprices the same cache simulations
across the device catalogue (SLC/MLC/TLC/QLC/Optane-class) and shows
how the GMM's absolute time savings scale with the miss penalty --
and that the *relative* reduction stays device-stable, because both
policies pay the same per-miss cost.
"""

from repro.analysis import render_table
from repro.hardware.latency import LatencyModel, reduction_percent
from repro.hardware.ssd import SSD_CATALOG

DEVICES = ("optane", "slc", "mlc", "tlc", "qlc")


def test_device_sweep(suite_result, report, benchmark):
    """Reprice the dlrm simulations across the device catalogue."""
    result = suite_result["dlrm"]
    lru_stats = result.lru.stats
    gmm_stats = result.best_gmm.stats

    def reprice():
        rows = []
        for name in DEVICES:
            model = LatencyModel(ssd=SSD_CATALOG[name])
            lru_us = model.average_access_time_us(lru_stats)
            gmm_us = model.average_access_time_us(gmm_stats)
            rows.append(
                [
                    name,
                    lru_us,
                    gmm_us,
                    reduction_percent(lru_us, gmm_us),
                ]
            )
        return rows

    rows = benchmark.pedantic(reprice, rounds=1, iterations=1)
    report(
        "ablation_ssd_device",
        render_table(
            ["device", "LRU us", "GMM us", "reduction %"], rows
        ),
    )

    by_device = {row[0]: row for row in rows}
    # Absolute access times track the device's miss penalty...
    assert by_device["qlc"][1] > by_device["tlc"][1] > by_device["slc"][1]
    # ...absolute savings grow with slower devices...
    saving = {name: row[1] - row[2] for name, row in by_device.items()}
    assert saving["qlc"] > saving["tlc"] > saving["optane"]
    # ...and the GMM wins on every device in the catalogue.
    for name, row in by_device.items():
        assert row[3] > 0, name

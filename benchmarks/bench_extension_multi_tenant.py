"""Extension: multi-tenant consolidation on one CXL device.

Beyond the paper's single-tenant evaluation: a shared memory-expansion
device serves a latency-sensitive key-value tenant (memtier) alongside
a streaming tenant (stream) hammering the same DRAM cache.  Under LRU
the streaming tenant's sweeps evict the key-value tenant's hot set --
classic noisy-neighbour interference.  The GMM's density scores rank
pages by *global* frequency, so score eviction automatically
prioritises the hot tenant, no partitioning hardware needed.

Measured trade-off (recorded in the report): the key-value tenant's
miss rate roughly halves, at the cost of the streaming tenant's
pinned-subset hits -- its loop pages are now the globally coldest and
always lose the eviction contest.  For a latency-SLO tenant sharing
with a bandwidth-bound batch tenant that is exactly the desired
behaviour; a deployment wanting fairness instead would partition the
score comparison per tenant (future work the bench makes visible).
"""

import numpy as np
import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.cache import SetAssociativeCache, simulate
from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.core.engine import GmmPolicyEngine
from repro.traces import TracePreprocessor, multi_tenant_trace
from repro.traces.workloads import get_workload

#: Tenant partition stride in pages.
PARTITION = 1 << 20


@pytest.fixture(scope="module")
def consolidated():
    config = fast_config()
    rng = np.random.default_rng(config.seed)
    trace = multi_tenant_trace(
        [
            get_workload("memtier", scale=1 / 32),
            get_workload("stream", scale=1 / 32),
        ],
        weights=[0.6, 0.4],
        n_accesses=200_000,
        rng=rng,
        partition_pages=PARTITION,
    )
    processor = TracePreprocessor()
    processed = processor.process(trace)
    return config, processed


def test_gmm_isolates_tenants(consolidated, report, benchmark):
    """Per-tenant miss rates, LRU vs GMM, on the shared cache."""
    config, processed = consolidated
    pages = processed.page_indices
    writes = processed.trace.is_write
    tenant = pages // PARTITION  # 0 = memtier, 1 = stream

    def run():
        rng = np.random.default_rng(1)
        engine = GmmPolicyEngine.train(
            processed.features[: len(processed) // 2],
            config.gmm,
            rng,
        )
        page_scores = engine.page_scores(pages)
        out = {}
        for label, policy, scores in (
            ("lru", LruPolicy(), None),
            (
                "gmm",
                GmmCachePolicy(admission=False, eviction=True),
                page_scores,
            ),
        ):
            cache = SetAssociativeCache(config.geometry)
            # Per-tenant accounting needs a manual measured loop:
            # reuse the simulator per tenant via masks after one run
            # is impossible, so run once and count misses per tenant
            # with the device-style loop.
            from repro.cxl.device import CxlMemoryDevice

            device = CxlMemoryDevice(cache, policy)
            tenant_misses = [0, 0]
            tenant_counts = [0, 0]
            measure_from = int(len(pages) * config.warmup_fraction)
            score_list = (
                scores
                if scores is not None
                else np.zeros(len(pages))
            )
            for i in range(len(pages)):
                result = device.access(
                    int(pages[i]), bool(writes[i]), float(score_list[i])
                )
                if i >= measure_from:
                    t = int(tenant[i])
                    tenant_counts[t] += 1
                    tenant_misses[t] += 0 if result.hit else 1
            out[label] = (
                100 * tenant_misses[0] / tenant_counts[0],
                100 * tenant_misses[1] / tenant_counts[1],
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ["lru", results["lru"][0], results["lru"][1]],
        ["gmm", results["gmm"][0], results["gmm"][1]],
    ]
    report(
        "extension_multi_tenant",
        render_table(
            ["policy", "memtier tenant miss %", "stream tenant miss %"],
            rows,
        ),
    )
    # The latency-sensitive tenant must be strongly protected.
    assert results["gmm"][0] < results["lru"][0] - 1.0
    # The documented trade-off: the streaming tenant pays, but stays
    # within its stand-alone band (its misses are bandwidth-bound
    # sweeps that any policy mostly cannot save at this pressure).
    assert results["gmm"][1] < 60.0

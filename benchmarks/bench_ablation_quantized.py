"""Ablation: fixed-point (hardware-faithful) vs float64 scoring.

The FPGA engine evaluates the score pipeline in fixed point
(Sec. 4.1); the policy only consumes score *order* (threshold
comparison, per-set argmin), so quantisation should be invisible in
the miss rate.  This bench runs the full pipeline both ways and
bounds the divergence.
"""

import dataclasses

from conftest import fast_config

from repro.analysis import render_table
from repro.core.system import IcgmmSystem


def _run(use_quantized):
    config = fast_config()
    config = dataclasses.replace(
        config,
        gmm=dataclasses.replace(config.gmm, use_quantized=use_quantized),
    )
    return IcgmmSystem(config).run_benchmark(
        "hashmap",
        strategies=("lru", "gmm-caching-eviction"),
    )


def test_quantized_pipeline_matches_float(report, benchmark):
    """Fixed-point scoring reproduces the float64 policy results."""
    quantized = benchmark.pedantic(
        _run, args=(True,), rounds=1, iterations=1
    )
    float64 = _run(False)

    q = quantized.outcomes["gmm-caching-eviction"]
    f = float64.outcomes["gmm-caching-eviction"]
    report(
        "ablation_quantized",
        render_table(
            ["pipeline", "miss rate %", "avg access us"],
            [
                ["float64", f.miss_rate_percent, f.average_time_us],
                ["fixed-point", q.miss_rate_percent, q.average_time_us],
            ],
        ),
    )
    # Same trace, same EM fit; quantisation may flip a handful of
    # borderline decisions but the results must stay within 0.3
    # points of each other.
    assert abs(
        q.miss_rate_percent - f.miss_rate_percent
    ) < 0.3
    # And both beat the shared LRU baseline.
    assert q.miss_rate_percent < quantized.lru.miss_rate_percent
    assert f.miss_rate_percent < float64.lru.miss_rate_percent

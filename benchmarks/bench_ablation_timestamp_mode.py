"""Ablation: the two readings of Algorithm 1.

The paper's Algorithm 1 pseudocode compares the timestamp counter
against ``len_access_shot`` while the prose defines the shot as a
request count; the readings produce very different temporal features
(see :mod:`repro.traces.preprocess`).  This bench runs both end to
end with the offline train-then-deploy split and shows why the
repository defaults to the periodic "prose" reading: under the
literal pseudocode the timestamp is a monotone ramp, every request
beyond the training range falls outside the learnt density's support,
and smart caching collapses into mass bypassing.
"""

import dataclasses

import pytest
from conftest import fast_config

from repro.analysis import render_table
from repro.core.system import IcgmmSystem


def _run(mode):
    config = dataclasses.replace(
        fast_config(), timestamp_mode=mode, train_fraction=0.5
    )
    system = IcgmmSystem(config)
    result = system.run_benchmark(
        "memtier", strategies=("lru", "gmm-caching")
    )
    return result


def test_timestamp_mode_comparison(report, benchmark):
    """Prose (periodic) vs algorithm (ramp) timestamps, end to end."""
    prose = benchmark.pedantic(
        _run, args=("prose",), rounds=1, iterations=1
    )
    ramp = _run("algorithm")

    rows = []
    for label, result in (("prose", prose), ("algorithm", ramp)):
        outcome = result.outcomes["gmm-caching"]
        rows.append(
            [
                label,
                result.lru.miss_rate_percent,
                outcome.miss_rate_percent,
                outcome.stats.bypasses,
            ]
        )
    report(
        "ablation_timestamp_mode",
        render_table(
            ["mode", "LRU miss %", "caching miss %", "bypasses"], rows
        ),
    )

    prose_caching = prose.outcomes["gmm-caching"]
    ramp_caching = ramp.outcomes["gmm-caching"]
    # The periodic reading generalises past the training range; the
    # ramp reading bypasses en masse and misses far more.
    assert (
        prose_caching.stats.miss_rate < ramp_caching.stats.miss_rate
    )
    assert prose_caching.stats.bypasses < ramp_caching.stats.bypasses
    # Both runs share the same LRU baseline (same trace).
    assert prose.lru.miss_rate_percent == pytest.approx(
        ramp.lru.miss_rate_percent
    )

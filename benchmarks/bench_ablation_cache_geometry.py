"""Ablation: cache capacity.

The paper's case study fixes one geometry (64 MB / 4 KB / 8-way,
Sec. 5.1).  This bench sweeps capacity at the simulation scale and
shows where the GMM's advantage lives: it is largest when the working
set contests the cache, and shrinks toward zero once the cache
swallows the workload (there is nothing left for any policy to win --
the Belady-headroom effect DESIGN.md documents).
"""

from conftest import fast_config

from repro.analysis import render_table
from repro.analysis.sweep import sweep_cache_capacity

CAPACITIES = (
    1 * 1024 * 1024,
    2 * 1024 * 1024,
    8 * 1024 * 1024,
)


def test_capacity_sweep(report, benchmark):
    """Miss rates across cache capacities (memtier)."""
    base = fast_config()

    def run():
        return sweep_cache_capacity(
            "memtier", capacities_bytes=CAPACITIES, config=base
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            f"{p.value // (1024 * 1024)} MiB",
            p.lru_miss_percent,
            p.gmm_miss_percent,
            p.reduction_points,
        ]
        for p in points
    ]
    report(
        "ablation_cache_geometry",
        render_table(
            ["capacity", "LRU miss %", "GMM miss %", "reduction"], rows
        ),
    )

    # Larger caches miss less under either policy...
    lru = [p.lru_miss_percent for p in points]
    assert lru == sorted(lru, reverse=True)
    # ...and the GMM advantage shrinks once capacity pressure is gone.
    assert points[-1].reduction_points < points[0].reduction_points + 0.5
    # Under pressure the GMM stays ahead.
    assert points[0].reduction_points > 0

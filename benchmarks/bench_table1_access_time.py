"""Table 1 reproduction: average SSD access time, LRU vs GMM.

Paper: "GMM achieves a 16.23% to 39.14% reduction in average memory
access time across seven benchmarks, compared to LRU", with absolute
LRU times from 2.98 us (memtier) to 156.39 us (stream).

The access times come from the Sec. 5.3 latency model (1 us hit,
75 us SSD read, 900 us write-back, GMM inference overlapped) applied
to the same simulations that regenerate Fig. 6.
"""

import pytest

from repro.analysis import render_dict_table
from repro.cache.stats import CacheStats
from repro.hardware.latency import LatencyModel
from repro.traces.workloads import WORKLOAD_NAMES

#: Paper Table 1 reductions (percent), for band comparison.
PAPER_REDUCTION = {
    "parsec": 16.23,
    "memtier": 29.87,
    "hashmap": 39.14,
    "heap": 24.39,
    "sysbench": 24.79,
    "stream": 19.62,
    "dlrm": 17.30,
}


def test_table1_reproduction(suite_result, report, benchmark):
    """Regenerate Table 1 and check the reduction band."""
    rows = suite_result.table1_rows()
    table = benchmark.pedantic(
        render_dict_table, args=(rows,), rounds=1, iterations=1
    )
    report("table1_access_time", table)

    reductions = {
        row["workload"]: row["reduction_percent"] for row in rows
    }
    # Shape claim 1: every workload sees a double-digit-percent-scale
    # improvement, inside a 10-55% band bracketing the paper's
    # 16.23-39.14%.
    for workload in WORKLOAD_NAMES:
        assert 5.0 < reductions[workload] < 55.0, (
            f"{workload}: {reductions[workload]:.1f}% outside band"
        )

    # Shape claim 2: relative time reductions are much larger than the
    # miss-rate deltas (each avoided miss saves 75-975 us vs a 1 us
    # hit) -- the paper's core Table 1 observation.
    for workload in WORKLOAD_NAMES:
        result = suite_result[workload]
        relative_miss_drop = (
            result.miss_reduction_points
            / result.lru.miss_rate_percent
        )
        assert (
            reductions[workload] >= 100 * relative_miss_drop * 0.5
        )

    # Shape claim 3: LRU access times span the paper's dynamic range
    # (single-digit us for the cache-friendly traces, far higher for
    # stream).
    lru_times = {row["workload"]: row["lru_us"] for row in rows}
    assert lru_times["stream"] > 5 * lru_times["memtier"]


def test_latency_model_throughput(benchmark):
    """Benchmark the latency model itself (pure arithmetic)."""
    model = LatencyModel()
    stats = CacheStats(
        hits=900_000,
        misses=100_000,
        bypasses=20_000,
        bypassed_writes=5_000,
        fills=80_000,
        evictions=60_000,
        dirty_evictions=25_000,
        write_misses=30_000,
    )
    value = benchmark(model.average_access_time_us, stats)
    assert value == pytest.approx(
        model.total_time_us(stats) / stats.accesses
    )

"""Shared fixtures for the benchmark harness.

The expensive artefact -- the full 7-workload x 4-strategy evaluation
suite -- is computed once per session and shared by the Fig. 6 and
Table 1 benches.  Every bench writes its reproduction table to
``benchmarks/output/`` (and prints it, visible with ``pytest -s``), so
the regenerated rows survive regardless of capture settings.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.core.experiment import run_suite

#: Directory collecting the regenerated tables/figures.
OUTPUT_DIR = Path(__file__).parent / "output"


def fast_config(**overrides) -> IcgmmConfig:
    """Reduced profile for the ablation benches (seconds, not minutes).

    Shorter traces and a smaller mixture; the headline Fig. 6/Table 1
    benches use the full default profile instead.
    """
    overrides.setdefault("trace_length", 120_000)
    overrides.setdefault(
        "gmm",
        GmmEngineConfig(
            n_components=24, max_iter=30, max_train_samples=15_000
        ),
    )
    return IcgmmConfig(**overrides)


@pytest.fixture(scope="session")
def suite_result():
    """The full evaluation matrix at the default (scaled) profile."""
    return run_suite()


@pytest.fixture(scope="session")
def report():
    """Writer that persists and echoes a reproduction artefact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}]\n{text}")

    return write

"""Parallel-scaling benchmark: multicore fabric replay vs one core.

Replays the standard skewed trace over a multi-device CXL fabric at
1/2/4/8 workers (``ParallelConfig`` thread backend by default) across
1-8 devices, asserting that every parallel run is *bit-identical* to
the sequential one -- per-device counters and priced service times --
and emits a machine-readable ``BENCH_parallel_scaling.json``.

Speedups here are real wall-clock ratios against the ``workers=1``
replay of the same matrix cell, so they are honest about the host:
the payload records ``cpu_count``, and the acceptance gate (>= 2.5x
at 4 workers on the paper geometry) is enforced only when the host
actually has >= 4 CPUs -- on smaller hosts the gate is reported as
skipped while the bit-exactness checks still apply to every row::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py            # full
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --validate out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.cache.setassoc import CacheGeometry
from repro.core.config import (
    FabricTopology,
    IcgmmConfig,
    ParallelConfig,
)
from repro.cxl.fabric import CxlFabric

#: JSON schema (field -> type) of the structured ``gate`` marker:
#: whether the speedup acceptance gate was enforced for this payload
#: and, when skipped, exactly why.  Making the skip explicit and
#: machine-checked means a rerun on a wider host flips ``status`` to
#: ``enforced`` -- a detectable regression-gate upgrade, never a
#: silent change.
GATE_SCHEMA = {
    "metric": str,
    "workers": int,
    "min_speedup": float,
    "min_cpus": int,
    "cpu_count": int,
    "status": str,  # "enforced" | "skipped"
    "reason": (str, type(None)),  # None iff enforced
}

#: JSON schema (field -> type) of every entry in ``results``.
RESULT_SCHEMA = {
    "strategy": str,
    "backend": str,
    "workers": int,
    "n_devices": int,
    "trace_length": int,
    "seconds": float,
    "accesses_per_s": float,
    "speedup_vs_1_worker": float,
    "stats_identical": bool,
    "time_identical": bool,
    "miss_rate": float,
}

#: Acceptance: >= this speedup at WORKERS_GATE workers somewhere in a
#: full run's matrix -- enforced only on hosts with >= MIN_CPUS_FOR_GATE
#: CPUs (a 1-core container cannot physically exhibit parallel
#: speedup; bit-exactness is still enforced everywhere).
MIN_FULL_SPEEDUP = 2.5
WORKERS_GATE = 4
MIN_CPUS_FOR_GATE = 4

HOT_FRACTION = 0.8
WRITE_FRACTION = 0.3


def make_trace(n: int, geometry: CacheGeometry, seed: int = 1):
    """Skewed page stream + writes + synthetic scores."""
    rng = np.random.default_rng(seed)
    n_blocks = geometry.n_blocks
    hot = rng.integers(0, max(1, n_blocks // 2), n)
    cold = rng.integers(0, 8 * n_blocks, n)
    pages = np.where(rng.random(n) < HOT_FRACTION, hot, cold)
    is_write = rng.random(n) < WRITE_FRACTION
    scores = rng.standard_normal(n)
    return pages, is_write, scores


def replay_once(
    geometry: CacheGeometry,
    n_devices: int,
    strategy: str,
    parallel: ParallelConfig,
    pages,
    is_write,
    scores,
    threshold: float,
):
    """One timed fabric replay; returns (seconds, FabricRunResult)."""
    fabric = CxlFabric(
        FabricTopology(n_devices=n_devices),
        config=IcgmmConfig(geometry=geometry),
        parallel=parallel,
    )
    fabric.bind(strategy, threshold)
    # Pool spin-up (thread creation, worker spawn) is a one-time
    # cost a long-lived fabric amortises away; a tiny untimed warm-up
    # chunk keeps it out of the measured replay.
    fabric.ingest(pages[:64], is_write[:64], scores=scores[:64])
    t0 = time.perf_counter()
    fabric.ingest(pages[64:], is_write[64:], scores=scores[64:])
    seconds = time.perf_counter() - t0
    result = fabric.results()
    fabric.close()
    return seconds, result


def run(trace_lengths, strategies, device_counts, workers_list,
        geometry, backend):
    """Benchmark the matrix; returns the result-dict list."""
    results = []
    for n in trace_lengths:
        pages, is_write, scores = make_trace(n, geometry)
        threshold = float(np.quantile(scores, 0.1))
        for strategy in strategies:
            for n_devices in device_counts:
                baseline = None
                base_seconds = None
                for workers in workers_list:
                    seconds, result = replay_once(
                        geometry,
                        n_devices,
                        strategy,
                        ParallelConfig(
                            workers=workers, backend=backend
                        ),
                        pages,
                        is_write,
                        scores,
                        threshold,
                    )
                    if baseline is None:
                        baseline = result
                        base_seconds = seconds
                    identical = all(
                        a.stats == b.stats
                        for a, b in zip(
                            result.devices, baseline.devices
                        )
                    )
                    time_identical = all(
                        a.time_ns == b.time_ns
                        for a, b in zip(
                            result.devices, baseline.devices
                        )
                    )
                    row = {
                        "strategy": strategy,
                        "backend": backend,
                        "workers": int(workers),
                        "n_devices": int(n_devices),
                        "trace_length": int(n),
                        "seconds": round(seconds, 4),
                        "accesses_per_s": round(n / seconds, 1),
                        "speedup_vs_1_worker": round(
                            base_seconds / seconds, 2
                        ),
                        "stats_identical": bool(identical),
                        "time_identical": bool(time_identical),
                        "miss_rate": round(
                            result.totals.miss_rate, 4
                        ),
                    }
                    results.append(row)
                    print(
                        f"{strategy:18s} devices={n_devices}"
                        f" workers={workers}"
                        f" n={n:>9,d}"
                        f"  {row['accesses_per_s']:>12,.0f}/s"
                        f"  speedup {row['speedup_vs_1_worker']:5.2f}x"
                        f"  identical="
                        f"{identical and time_identical}"
                    )
    return results


def validate(payload: dict) -> list[str]:
    """Schema + acceptance check of an emitted payload."""
    problems = []
    for key in ("geometry", "results", "mode", "cpu_count", "gate"):
        if key not in payload:
            return [f"missing top-level {key!r}"]
    if not isinstance(payload["results"], list) or not payload["results"]:
        return ["'results' must be a non-empty list"]
    gate = payload["gate"]
    if not isinstance(gate, dict):
        problems.append("'gate' must be a structured object")
        gate = {}
    for field, kind in GATE_SCHEMA.items():
        if field not in gate:
            problems.append(f"gate: missing {field!r}")
        elif kind is float:
            if not isinstance(gate[field], (int, float)):
                problems.append(f"gate.{field}: not numeric")
        elif not isinstance(gate[field], kind):
            problems.append(f"gate.{field}: wrong type")
    if gate.get("status") not in ("enforced", "skipped"):
        problems.append(
            f"gate.status: {gate.get('status')!r} is not"
            " 'enforced'/'skipped'"
        )
    if gate.get("status") == "skipped" and not gate.get("reason"):
        problems.append("gate.status skipped without a reason")
    if gate.get("status") == "enforced" and gate.get("reason"):
        problems.append("gate.status enforced must carry reason=None")
    if "cpu_count" in gate and gate["cpu_count"] != payload["cpu_count"]:
        problems.append(
            "gate.cpu_count disagrees with top-level cpu_count"
        )
    expected_status = (
        "enforced"
        if payload["mode"] == "full"
        and payload["cpu_count"] >= MIN_CPUS_FOR_GATE
        else "skipped"
    )
    if gate.get("status") not in (None, expected_status):
        problems.append(
            f"gate.status {gate.get('status')!r} inconsistent with"
            f" mode={payload['mode']!r}"
            f" cpu_count={payload['cpu_count']}"
        )
    for i, row in enumerate(payload["results"]):
        for field, kind in RESULT_SCHEMA.items():
            if field not in row:
                problems.append(f"results[{i}]: missing {field!r}")
            elif kind is float:
                if not isinstance(row[field], (int, float)):
                    problems.append(f"results[{i}].{field}: not numeric")
            elif not isinstance(row[field], kind):
                problems.append(
                    f"results[{i}].{field}: expected {kind.__name__}"
                )
        if not row.get("stats_identical", False):
            problems.append(
                f"results[{i}]: parallel/sequential stats diverged"
            )
        if not row.get("time_identical", False):
            problems.append(
                f"results[{i}]: parallel/sequential priced times"
                " diverged"
            )
    if (
        payload["mode"] == "full"
        and payload["cpu_count"] >= MIN_CPUS_FOR_GATE
    ):
        best = max(
            (
                row.get("speedup_vs_1_worker", 0.0)
                for row in payload["results"]
                if row.get("workers") == WORKERS_GATE
            ),
            default=0.0,
        )
        if best < MIN_FULL_SPEEDUP:
            problems.append(
                f"best {WORKERS_GATE}-worker speedup {best}x below"
                f" the {MIN_FULL_SPEEDUP}x acceptance bar"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trace + small matrix (CI smoke run)",
    )
    parser.add_argument(
        "--validate",
        metavar="JSON",
        help="validate an existing output file and exit",
    )
    parser.add_argument(
        "--output",
        default=None,
        help=(
            "output JSON path (default: BENCH_parallel_scaling.json,"
            " or BENCH_parallel_scaling.smoke.json with --smoke so a"
            " smoke run never clobbers the full results)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help="executor backend to scale",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to benchmark",
    )
    parser.add_argument(
        "--devices", type=int, nargs="+", default=None,
        help="device counts to benchmark",
    )
    parser.add_argument(
        "--lengths", type=int, nargs="+", default=None,
        help="trace lengths to benchmark",
    )
    args = parser.parse_args(argv)

    if args.validate:
        path = Path(args.validate)
        if not path.is_file():
            print(f"INVALID: no such file: {path}", file=sys.stderr)
            return 1
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"INVALID: not JSON: {exc}", file=sys.stderr)
            return 1
        problems = validate(payload)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"{args.validate}: valid"
            f" ({len(payload['results'])} result rows)"
        )
        return 0

    # The paper's case-study geometry (64 MB / 4 KB / 8-way).
    geometry = CacheGeometry()
    if args.smoke:
        lengths = args.lengths or [20_000]
        strategies = ("gmm-caching",)
        device_counts = tuple(args.devices or (2,))
        workers_list = tuple(args.workers or (1, 2))
        output = args.output or "BENCH_parallel_scaling.smoke.json"
        mode = "smoke"
    else:
        lengths = args.lengths or [400_000]
        strategies = ("lru", "gmm-caching")
        device_counts = tuple(args.devices or (1, 2, 4, 8))
        workers_list = tuple(args.workers or (1, 2, 4, 8))
        output = args.output or "BENCH_parallel_scaling.json"
        mode = "full"

    cpu_count = os.cpu_count() or 1
    results = run(
        lengths,
        strategies,
        device_counts,
        workers_list,
        geometry,
        args.backend,
    )
    gate_active = mode == "full" and cpu_count >= MIN_CPUS_FOR_GATE
    payload = {
        "bench": "parallel_scaling",
        "mode": mode,
        "cpu_count": cpu_count,
        "gate": {
            "metric": "speedup_vs_1_worker",
            "workers": WORKERS_GATE,
            "min_speedup": MIN_FULL_SPEEDUP,
            "min_cpus": MIN_CPUS_FOR_GATE,
            "cpu_count": cpu_count,
            "status": "enforced" if gate_active else "skipped",
            "reason": (
                None
                if gate_active
                else (
                    "smoke mode"
                    if mode == "smoke"
                    else f"{cpu_count}-core host"
                )
            ),
        },
        "speedup_gate": (
            "enforced"
            if gate_active
            else (
                f"skipped (cpu_count={cpu_count} <"
                f" {MIN_CPUS_FOR_GATE}; parallel speedup is not"
                " physically observable, bit-exactness still"
                " enforced)"
                if mode == "full"
                else "skipped (smoke mode)"
            )
        ),
        "geometry": {
            "capacity_bytes": geometry.capacity_bytes,
            "block_bytes": geometry.block_bytes,
            "associativity": geometry.associativity,
            "n_sets": geometry.n_sets,
        },
        "trace": {
            "hot_fraction": HOT_FRACTION,
            "write_fraction": WRITE_FRACTION,
        },
        "results": results,
    }
    problems = validate(payload)
    Path(output).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")
    if problems:
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Ablation: number of Gaussian components K.

The paper fixes K = 256 for the FPGA engine (Sec. 5.1) without a
sweep; DESIGN.md calls the choice out as an ablation target.  This
bench sweeps K and shows (a) the miss-rate curve saturating at modest
K on these traces -- justifying the simulator default of 64 -- and
(b) the hardware cost that *doesn't* saturate: the weight buffer and
engine latency keep growing with K.
"""

import dataclasses

from conftest import fast_config

from repro.analysis import render_table
from repro.analysis.sweep import sweep_n_components
from repro.hardware import FpgaSpec, GmmEngineTiming, estimate_gmm_engine

SWEEP = (4, 16, 64)


def test_k_sweep(report, benchmark):
    """Miss rate and hardware cost across the K sweep."""
    # dlrm needs its full phase structure for the sweep to be
    # meaningful; use a longer trace than the other ablations.
    base = fast_config(trace_length=250_000)

    def run():
        return sweep_n_components(
            "dlrm", component_counts=SWEEP, config=base
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    fpga = FpgaSpec()
    rows = []
    for point in points:
        k = point.value
        resources = estimate_gmm_engine(n_components=k)
        timing = GmmEngineTiming(n_components=k)
        rows.append(
            [
                k,
                point.lru_miss_percent,
                point.gmm_miss_percent,
                point.reduction_points,
                resources.bram,
                f"{timing.latency_us(fpga):.2f}",
            ]
        )
    report(
        "ablation_num_gaussians",
        render_table(
            [
                "K",
                "LRU miss %",
                "GMM miss %",
                "reduction",
                "engine BRAM",
                "latency us",
            ],
            rows,
        ),
    )

    # A handful of components is too few to model eight rotating
    # tables; the gain grows monotonically with K on dlrm (the most
    # structurally complex trace -- simpler workloads saturate far
    # earlier), while the hardware latency cost also climbs, which is
    # the trade-off behind the paper's K = 256 and this simulator's
    # K = 64 defaults.
    gains = [p.reduction_points for p in points]
    assert all(b >= a - 0.1 for a, b in zip(gains, gains[1:]))
    assert gains[1] > 0
    assert gains[2] > 1.0
    assert (
        GmmEngineTiming(n_components=SWEEP[-1]).cycles
        > GmmEngineTiming(n_components=SWEEP[0]).cycles
    )

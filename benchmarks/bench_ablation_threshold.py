"""Ablation: admission threshold quantile.

Sec. 3.2 admits a missing page only when its score clears a
threshold, but the paper does not report how the threshold was set.
This bench sweeps the training-score quantile used to derive it: low
quantiles bypass only one-touch traffic (safe), aggressive quantiles
start refusing pages with real reuse and miss rate climbs back above
the baseline -- exposing the optimum the default targets.
"""

from conftest import fast_config

from repro.analysis import render_table
from repro.analysis.sweep import sweep_threshold_quantile

QUANTILES = (0.0, 0.01, 0.02, 0.05, 0.15)


def test_threshold_sweep(report, benchmark):
    """Miss rate across admission-threshold quantiles (sysbench)."""
    base = fast_config()

    def run():
        return sweep_threshold_quantile(
            "sysbench", quantiles=QUANTILES, config=base
        )

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            p.value,
            p.lru_miss_percent,
            p.gmm_miss_percent,
            p.reduction_points,
        ]
        for p in points
    ]
    report(
        "ablation_threshold",
        render_table(
            ["quantile", "LRU miss %", "GMM miss %", "reduction"],
            rows,
            float_format="{:.3f}",
        ),
    )

    by_q = {p.value: p for p in points}
    # A moderate threshold must beat the most aggressive one: over-
    # bypassing refuses pages with real reuse.
    assert (
        by_q[0.02].gmm_miss_percent < by_q[0.15].gmm_miss_percent
    )
    # And the default band (0.01-0.05) keeps the GMM ahead of LRU.
    for q in (0.01, 0.02, 0.05):
        assert by_q[q].reduction_points > 0

"""Tests for trace file I/O."""

import numpy as np
import pytest

from repro.traces.io import (
    TraceNpzWriter,
    _parse_csv_rows_scalar,
    iter_trace_csv,
    load_trace,
    load_trace_csv,
    load_trace_npz,
    save_trace,
    save_trace_csv,
    save_trace_npz,
    stream_trace_chunks,
)
from repro.traces.record import MemoryTrace


def _trace():
    return MemoryTrace(
        np.array([0, 4096, 123456]),
        np.array([False, True, False]),
        np.array([0, 5, 9]),
    )


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(_trace(), path)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(
            loaded.addresses, _trace().addresses
        )
        np.testing.assert_array_equal(loaded.is_write, _trace().is_write)
        np.testing.assert_array_equal(loaded.times, _trace().times)

    def test_header_written(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(_trace(), path)
        first_line = path.read_text().splitlines()[0]
        assert first_line == "op,address,time"

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    def test_rejects_unknown_op(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nX,0,0\n")
        with pytest.raises(ValueError, match="unknown op"):
            load_trace_csv(path)

    def test_rejects_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nR,0\n")
        with pytest.raises(ValueError, match="3 fields"):
            load_trace_csv(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        save_trace_csv(empty, path)
        assert len(load_trace_csv(path)) == 0


class TestNpz:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(_trace(), path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(
            loaded.addresses, _trace().addresses
        )
        np.testing.assert_array_equal(loaded.is_write, _trace().is_write)
        np.testing.assert_array_equal(loaded.times, _trace().times)

    def test_rejects_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, addresses=np.array([1]))
        with pytest.raises(ValueError, match="missing"):
            load_trace_npz(path)

    def test_large_trace_round_trip(self, tmp_path, rng):
        n = 50_000
        trace = MemoryTrace(
            rng.integers(0, 2**40, size=n),
            rng.random(n) < 0.3,
        )
        path = tmp_path / "large.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)


def _random_trace(rng, n):
    return MemoryTrace(
        rng.integers(0, 2**40, size=n),
        rng.random(n) < 0.3,
        np.sort(rng.integers(0, 10 * n, size=n)),
    )


def _is_mapped(array):
    base = array
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


class TestVectorizedCsvParity:
    """The fast byte-level parser against the scalar csv reference."""

    def test_matches_scalar_on_random_trace(self, tmp_path, rng):
        trace = _random_trace(rng, 5_000)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        with open(path, newline="") as handle:
            handle.readline()
            lines = [line.rstrip("\r\n") for line in handle]
        addresses, writes, times = _parse_csv_rows_scalar(lines, 2)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(loaded.addresses, addresses)
        np.testing.assert_array_equal(loaded.is_write, writes)
        np.testing.assert_array_equal(loaded.times, times)

    def test_blank_line_reports_zero_fields(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nR,0,0\n\nR,1,1\n")
        with pytest.raises(
            ValueError, match=r"line 3: expected 3 fields, got 0"
        ):
            load_trace_csv(path)

    def test_extra_field_reports_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nR,0,0,7\n")
        with pytest.raises(
            ValueError, match=r"line 2: expected 3 fields, got 4"
        ):
            load_trace_csv(path)

    def test_empty_op_is_unknown(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\n,5,7\n")
        with pytest.raises(
            ValueError, match=r"line 2: unknown op ''"
        ):
            load_trace_csv(path)

    def test_multichar_op_is_unknown(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nRW,5,7\n")
        with pytest.raises(
            ValueError, match=r"line 2: unknown op 'RW'"
        ):
            load_trace_csv(path)

    def test_bad_int_uses_python_message(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nR,x,1\n")
        with pytest.raises(
            ValueError, match=r"invalid literal for int"
        ):
            load_trace_csv(path)

    def test_quoted_fields_fall_back_to_csv_dialect(self, tmp_path):
        path = tmp_path / "quoted.csv"
        path.write_text('op,address,time\n"R",5,7\nW,1,8\n')
        loaded = load_trace_csv(path)
        assert list(loaded.addresses) == [5, 1]
        assert list(loaded.is_write) == [False, True]
        assert list(loaded.times) == [7, 8]

    def test_python_int_formats_fall_back(self, tmp_path):
        path = tmp_path / "lenient.csv"
        path.write_text("op,address,time\nR,+5,0\nW, 7,1\n")
        loaded = load_trace_csv(path)
        assert list(loaded.addresses) == [5, 7]

    def test_crlf_line_endings(self, tmp_path):
        path = tmp_path / "crlf.csv"
        with open(path, "w", newline="") as handle:
            handle.write("op,address,time\r\nR,5,7\r\nW,1,8\r\n")
        loaded = load_trace_csv(path)
        assert list(loaded.addresses) == [5, 1]
        assert list(loaded.times) == [7, 8]

    def test_empty_file_rejected_like_legacy(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="header None"):
            load_trace_csv(path)


class TestIterTraceCsv:
    def test_chunks_concatenate_to_full_load(self, tmp_path, rng):
        trace = _random_trace(rng, 3_000)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        chunks = list(iter_trace_csv(path, chunk_requests=257))
        assert all(len(c) <= 257 for c in chunks)
        np.testing.assert_array_equal(
            np.concatenate([c.addresses for c in chunks]),
            trace.addresses,
        )
        np.testing.assert_array_equal(
            np.concatenate([c.is_write for c in chunks]),
            trace.is_write,
        )
        np.testing.assert_array_equal(
            np.concatenate([c.times for c in chunks]),
            trace.times,
        )

    def test_error_line_numbers_cross_chunks(self, tmp_path):
        path = tmp_path / "bad.csv"
        rows = [f"R,{i},{i}" for i in range(100)] + ["Z,0,0"]
        path.write_text("op,address,time\n" + "\n".join(rows) + "\n")
        with pytest.raises(
            ValueError, match=r"line 102: unknown op 'Z'"
        ):
            list(iter_trace_csv(path, chunk_requests=7))

    def test_rejects_nonpositive_chunk(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_requests"):
            next(iter_trace_csv(tmp_path / "x.csv", chunk_requests=0))


class TestMmapNpz:
    def test_mapped_load_matches_eager(self, tmp_path, rng):
        trace = _random_trace(rng, 4_000)
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path, compressed=False)
        mapped = load_trace_npz(path, mmap=True)
        assert _is_mapped(mapped._addresses)
        assert _is_mapped(mapped._is_write)
        assert _is_mapped(mapped._times)
        np.testing.assert_array_equal(
            np.asarray(mapped.addresses), trace.addresses
        )
        np.testing.assert_array_equal(
            np.asarray(mapped.is_write), trace.is_write
        )
        np.testing.assert_array_equal(
            np.asarray(mapped.times), trace.times
        )

    def test_mapped_slices_validate_and_match(self, tmp_path, rng):
        trace = _random_trace(rng, 4_000)
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path, compressed=False)
        mapped = load_trace_npz(path, mmap=True)
        window = mapped[1_000:1_500]
        np.testing.assert_array_equal(
            window.addresses, trace.addresses[1_000:1_500]
        )
        np.testing.assert_array_equal(
            window.page_indices(),
            trace.page_indices()[1_000:1_500],
        )

    def test_mapped_columns_are_read_only(self, tmp_path, rng):
        trace = _random_trace(rng, 100)
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path, compressed=False)
        mapped = load_trace_npz(path, mmap=True)
        with pytest.raises(ValueError):
            mapped.addresses[0] = 1

    def test_compressed_archive_refuses_mmap(self, tmp_path, rng):
        trace = _random_trace(rng, 100)
        path = tmp_path / "trace.npz"
        save_trace_npz(trace, path, compressed=True)
        with pytest.raises(ValueError, match="memory-map"):
            load_trace_npz(path, mmap=True)

    def test_mmap_rejects_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, addresses=np.array([1]))
        with pytest.raises(ValueError, match="missing"):
            load_trace_npz(path, mmap=True)

    def test_empty_trace_maps(self, tmp_path):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        path = tmp_path / "empty.npz"
        save_trace_npz(empty, path, compressed=False)
        assert len(load_trace_npz(path, mmap=True)) == 0


class TestLoadTraceDispatch:
    def test_csv_suffix(self, tmp_path, rng):
        trace = _random_trace(rng, 500)
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        np.testing.assert_array_equal(
            load_trace(path).addresses, trace.addresses
        )

    def test_stored_npz_maps(self, tmp_path, rng):
        trace = _random_trace(rng, 500)
        path = tmp_path / "t.npz"
        save_trace_npz(trace, path, compressed=False)
        assert _is_mapped(load_trace(path)._addresses)

    def test_compressed_npz_falls_back_to_eager(self, tmp_path, rng):
        trace = _random_trace(rng, 500)
        path = tmp_path / "t.npz"
        save_trace_npz(trace, path, compressed=True)
        loaded = load_trace(path)
        assert not _is_mapped(loaded._addresses)
        np.testing.assert_array_equal(
            loaded.addresses, trace.addresses
        )

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            load_trace(tmp_path / "t.bin")


class TestStreamTraceChunks:
    @pytest.mark.parametrize("suffix", ["csv", "npz"])
    def test_total_and_chunks(self, tmp_path, rng, suffix):
        trace = _random_trace(rng, 2_000)
        path = tmp_path / f"t.{suffix}"
        if suffix == "csv":
            save_trace_csv(trace, path)
        else:
            save_trace_npz(trace, path, compressed=False)
        total, chunks = stream_trace_chunks(path, chunk_requests=333)
        assert total == 2_000
        chunks = list(chunks)
        assert all(len(c) <= 333 for c in chunks)
        np.testing.assert_array_equal(
            np.concatenate([c.addresses for c in chunks]),
            trace.addresses,
        )

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported"):
            stream_trace_chunks(tmp_path / "t.bin")


def _npz_is_stored(path):
    import zipfile

    with zipfile.ZipFile(path) as archive:
        return all(
            info.compress_type == zipfile.ZIP_STORED
            for info in archive.infolist()
        )


class TestTraceNpzWriter:
    def test_chunked_writes_round_trip(self, tmp_path, rng):
        trace = _random_trace(rng, 10_000)
        path = tmp_path / "trace.npz"
        with TraceNpzWriter(path, len(trace)) as writer:
            for start in range(0, len(trace), 3_000):
                stop = min(start + 3_000, len(trace))
                writer.append(
                    trace.addresses[start:stop],
                    trace.is_write[start:stop],
                    trace.times[start:stop],
                )
        assert writer.written == len(trace)
        loaded = load_trace_npz(path, mmap=True)
        assert _is_mapped(loaded.addresses)
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)
        np.testing.assert_array_equal(loaded.is_write, trace.is_write)
        np.testing.assert_array_equal(loaded.times, trace.times)
        # open_memmap can only assemble an uncompressed archive; the
        # zero-copy reader depends on that.
        assert _npz_is_stored(path)
        # No temp spill files left behind.
        assert sorted(tmp_path.iterdir()) == [path]

    def test_default_times_are_global_arange(self, tmp_path):
        path = tmp_path / "trace.npz"
        with TraceNpzWriter(path, 7) as writer:
            writer.append(np.zeros(4, dtype=np.int64), np.zeros(4, bool))
            writer.append(np.zeros(3, dtype=np.int64), np.zeros(3, bool))
        loaded = load_trace_npz(path)
        # Omitted times continue the global sequence across appends.
        np.testing.assert_array_equal(loaded.times, np.arange(7))

    def test_underfill_refuses_to_close(self, tmp_path):
        path = tmp_path / "trace.npz"
        writer = TraceNpzWriter(path, 10)
        writer.append(np.zeros(4, dtype=np.int64), np.zeros(4, bool))
        with pytest.raises(ValueError, match="only 4 were appended"):
            writer.close()
        # The refusal aborts: no archive, no temp files.
        assert list(tmp_path.iterdir()) == []

    def test_exception_in_context_aborts_cleanly(self, tmp_path):
        path = tmp_path / "trace.npz"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceNpzWriter(path, 10) as writer:
                writer.append(
                    np.zeros(4, dtype=np.int64), np.zeros(4, bool)
                )
                raise RuntimeError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_append_validation(self, tmp_path):
        path = tmp_path / "trace.npz"
        writer = TraceNpzWriter(path, 3)
        with pytest.raises(ValueError, match="equal-length"):
            writer.append(
                np.zeros(2, dtype=np.int64), np.zeros(3, bool)
            )
        with pytest.raises(ValueError, match="overflows"):
            writer.append(
                np.zeros(4, dtype=np.int64), np.zeros(4, bool)
            )
        writer.abort()

    def test_ctor_validation(self, tmp_path):
        with pytest.raises(ValueError, match=r"\.npz"):
            TraceNpzWriter(tmp_path / "trace.csv", 3)
        with pytest.raises(ValueError, match="length"):
            TraceNpzWriter(tmp_path / "trace.npz", -1)


def _assert_traces_equal(a, b):
    np.testing.assert_array_equal(a.addresses, b.addresses)
    np.testing.assert_array_equal(a.is_write, b.is_write)
    np.testing.assert_array_equal(a.times, b.times)


class TestSaveTraceDispatch:
    def test_csv_suffix(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace(_trace(), path)
        _assert_traces_equal(load_trace_csv(path), _trace())

    def test_npz_suffix(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(_trace(), path)
        _assert_traces_equal(load_trace_npz(path), _trace())

    def test_npz_mmap_writes_stored_archive(self, tmp_path, rng):
        trace = _random_trace(rng, 2_000)
        path = tmp_path / "trace.npz"
        save_trace(trace, path, compressed=False, mmap=True)
        assert _npz_is_stored(path)
        _assert_traces_equal(load_trace_npz(path, mmap=True), trace)

    def test_mmap_refuses_compression(self, tmp_path):
        with pytest.raises(ValueError, match="compressed"):
            save_trace_npz(
                _trace(), tmp_path / "t.npz", compressed=True, mmap=True
            )

    def test_unknown_suffix_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unsupported trace format"):
            save_trace(_trace(), tmp_path / "trace.bin")

    def test_csv_ignores_mmap_flag_is_an_error(self, tmp_path):
        # The dispatcher routes mmap=True to the npz writer only; a
        # CSV target cannot honor it and must say so.
        with pytest.raises(ValueError, match="mmap"):
            save_trace(_trace(), tmp_path / "trace.csv", mmap=True)

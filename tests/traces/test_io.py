"""Tests for trace file I/O."""

import numpy as np
import pytest

from repro.traces.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.traces.record import MemoryTrace


def _trace():
    return MemoryTrace(
        np.array([0, 4096, 123456]),
        np.array([False, True, False]),
        np.array([0, 5, 9]),
    )


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(_trace(), path)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(
            loaded.addresses, _trace().addresses
        )
        np.testing.assert_array_equal(loaded.is_write, _trace().is_write)
        np.testing.assert_array_equal(loaded.times, _trace().times)

    def test_header_written(self, tmp_path):
        path = tmp_path / "trace.csv"
        save_trace_csv(_trace(), path)
        first_line = path.read_text().splitlines()[0]
        assert first_line == "op,address,time"

    def test_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y,z\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_trace_csv(path)

    def test_rejects_unknown_op(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nX,0,0\n")
        with pytest.raises(ValueError, match="unknown op"):
            load_trace_csv(path)

    def test_rejects_wrong_field_count(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("op,address,time\nR,0\n")
        with pytest.raises(ValueError, match="3 fields"):
            load_trace_csv(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        save_trace_csv(empty, path)
        assert len(load_trace_csv(path)) == 0


class TestNpz:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace_npz(_trace(), path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(
            loaded.addresses, _trace().addresses
        )
        np.testing.assert_array_equal(loaded.is_write, _trace().is_write)
        np.testing.assert_array_equal(loaded.times, _trace().times)

    def test_rejects_missing_arrays(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, addresses=np.array([1]))
        with pytest.raises(ValueError, match="missing"):
            load_trace_npz(path)

    def test_large_trace_round_trip(self, tmp_path, rng):
        n = 50_000
        trace = MemoryTrace(
            rng.integers(0, 2**40, size=n),
            rng.random(n) < 0.3,
        )
        path = tmp_path / "large.npz"
        save_trace_npz(trace, path)
        loaded = load_trace_npz(path)
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)

"""Tests for the seven benchmark workload generators."""

import numpy as np
import pytest

from repro.traces.stats import (
    hot_page_concentration,
    spatial_histogram,
    temporal_histogram,
)
from repro.traces.workloads import (
    WORKLOAD_NAMES,
    WORKLOADS,
    get_workload,
)

#: Small trace length for fast structural tests.
N = 30_000


@pytest.fixture(scope="module")
def generated():
    """One small trace per workload, shared across this module."""
    traces = {}
    for name in WORKLOAD_NAMES:
        rng = np.random.default_rng(42)
        traces[name] = get_workload(name).generate(N, rng)
    return traces


class TestRegistry:
    def test_seven_workloads(self):
        assert len(WORKLOAD_NAMES) == 7

    def test_paper_order(self):
        assert WORKLOAD_NAMES == (
            "parsec",
            "memtier",
            "hashmap",
            "heap",
            "sysbench",
            "dlrm",
            "stream",
        )

    def test_get_workload_unknown(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("quake")

    def test_names_match_classes(self):
        for name, cls in WORKLOADS.items():
            assert cls.name == name

    def test_get_workload_forwards_params(self):
        workload = get_workload("stream", array_pages=1000)
        assert workload.array_pages == 1000


class TestAllWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_generates_requested_length(self, generated, name):
        assert len(generated[name]) == N

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic_given_seed(self, name):
        a = get_workload(name).generate(2000, np.random.default_rng(7))
        b = get_workload(name).generate(2000, np.random.default_rng(7))
        np.testing.assert_array_equal(a.addresses, b.addresses)
        np.testing.assert_array_equal(a.is_write, b.is_write)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_different_seeds_differ(self, name):
        a = get_workload(name).generate(2000, np.random.default_rng(1))
        b = get_workload(name).generate(2000, np.random.default_rng(2))
        assert not np.array_equal(a.addresses, b.addresses)

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_has_reads_and_writes(self, generated, name):
        fraction = generated[name].write_fraction()
        assert 0.0 < fraction < 1.0

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_multimodal_spatial_structure(self, generated, name):
        # Fig. 2 motivation: every benchmark shows spatially clustered
        # access density.  Peaks differ in height by orders of
        # magnitude (Fig. 2's spikes), so detect at a 1% threshold.
        histogram = spatial_histogram(generated[name], n_bins=200)
        assert histogram.modality(threshold_fraction=0.01) >= 2

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_times_monotone(self, generated, name):
        times = generated[name].times
        assert np.all(np.diff(times) >= 0)


class TestWorkloadCharacter:
    def test_stream_is_mostly_one_touch(self, generated):
        # The swept arrays dominate the stream footprint: the median
        # page is touched at most twice within a short trace while the
        # hot scalar region absorbs the rest of the traffic.
        from repro.traces.stats import page_access_counts

        _, counts = page_access_counts(generated["stream"])
        assert np.median(counts) <= 2
        # The hot region (192 pages) collects the majority of accesses.
        assert counts[:192].sum() > 0.5 * counts.sum()

    def test_memtier_read_heavy(self, generated):
        assert generated["memtier"].write_fraction() < 0.2

    def test_heap_write_heavy(self, generated):
        assert generated["heap"].write_fraction() > 0.35

    def test_dlrm_mostly_reads(self, generated):
        assert generated["dlrm"].write_fraction() < 0.1

    def test_dlrm_footprint_far_exceeds_cache(self):
        # The embedding tables dwarf the device cache, which is what
        # gives dlrm the second-worst miss rate in Fig. 6.  Checked at
        # the experiment scale (1/32 footprints vs the 512-block
        # cache) where the ratio fully develops within the trace.
        rng = np.random.default_rng(5)
        trace = get_workload("dlrm", scale=1 / 32).generate(
            200_000, rng
        )
        assert trace.unique_page_count() > 4 * 512

    def test_dlrm_temporal_phases(self):
        # Table popularity rotates across phases, so the temporal
        # profile must be non-uniform in time.
        rng = np.random.default_rng(3)
        trace = get_workload("dlrm").generate(60_000, rng)
        histogram = temporal_histogram(trace, 30, 30)
        assert histogram.column_nonuniformity() > 0.1

    def test_parsec_working_set_near_cache_size(self):
        # The parsec design point: a resident working set comparable to
        # the 16K-page (64 MB) cache, with the over-capacity sweep
        # supplying just enough pressure that eviction quality matters
        # while misses stay rare.  Needs a realistic length to develop.
        rng = np.random.default_rng(11)
        trace = get_workload("parsec").generate(200_000, rng)
        pages = trace.unique_page_count()
        assert 8_000 < pages < 30_000

    def test_sysbench_has_very_hot_head(self, generated):
        assert hot_page_concentration(generated["sysbench"], 0.01) > 0.25

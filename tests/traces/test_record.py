"""Tests for trace containers."""

import numpy as np
import pytest

from repro.traces.record import (
    PAGE_SHIFT,
    PAGE_SIZE,
    MemoryTrace,
    TraceRecord,
)


def _small_trace():
    addresses = np.array([0, 4096, 8192, 4096 + 64, 123456])
    writes = np.array([False, True, False, False, True])
    return MemoryTrace(addresses, writes)


class TestTraceRecord:
    def test_page_index_right_shift(self):
        record = TraceRecord(address=4096 + 64, is_write=False, time=0)
        assert record.page_index == 1

    def test_page_zero(self):
        record = TraceRecord(address=4095, is_write=False, time=0)
        assert record.page_index == 0


class TestMemoryTraceConstruction:
    def test_default_times_are_arange(self):
        trace = _small_trace()
        np.testing.assert_array_equal(trace.times, np.arange(5))

    def test_rejects_negative_addresses(self):
        with pytest.raises(ValueError, match="non-negative"):
            MemoryTrace(np.array([-1]), np.array([False]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            MemoryTrace(np.array([1, 2]), np.array([False]))

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            MemoryTrace(
                np.array([1, 2]),
                np.array([False, False]),
                np.array([5, 3]),
            )

    def test_rejects_2d_addresses(self):
        with pytest.raises(ValueError, match="1-D"):
            MemoryTrace(np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))

    def test_columns_are_read_only(self):
        trace = _small_trace()
        with pytest.raises(ValueError):
            trace.addresses[0] = 7


class TestMemoryTraceAccess:
    def test_len(self):
        assert len(_small_trace()) == 5

    def test_getitem_record(self):
        record = _small_trace()[1]
        assert record == TraceRecord(address=4096, is_write=True, time=1)

    def test_getitem_slice(self):
        sliced = _small_trace()[1:3]
        assert isinstance(sliced, MemoryTrace)
        assert len(sliced) == 2
        assert sliced[0].address == 4096

    def test_iteration_yields_records(self):
        records = list(_small_trace())
        assert len(records) == 5
        assert all(isinstance(r, TraceRecord) for r in records)

    def test_page_indices(self):
        trace = _small_trace()
        expected = trace.addresses >> PAGE_SHIFT
        np.testing.assert_array_equal(trace.page_indices(), expected)


class TestMemoryTraceStats:
    def test_write_fraction(self):
        assert _small_trace().write_fraction() == pytest.approx(0.4)

    def test_write_fraction_empty(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert empty.write_fraction() == 0.0

    def test_unique_page_count(self):
        # Pages: 0, 1, 2, 1, 30 -> 4 distinct.
        assert _small_trace().unique_page_count() == 4

    def test_footprint_bytes(self):
        assert _small_trace().footprint_bytes() == 4 * PAGE_SIZE


class TestConcatenate:
    def test_concatenate_rebases_times(self):
        a = MemoryTrace(np.array([0]), np.array([False]), np.array([10]))
        b = MemoryTrace(np.array([4096]), np.array([True]), np.array([3]))
        combined = MemoryTrace.concatenate([a, b])
        assert len(combined) == 2
        assert list(combined.times) == [0, 1]

    def test_concatenate_empty_list(self):
        combined = MemoryTrace.concatenate([])
        assert len(combined) == 0

    def test_concatenate_preserves_order_and_flags(self):
        a = _small_trace()
        combined = MemoryTrace.concatenate([a, a])
        np.testing.assert_array_equal(
            combined.addresses,
            np.concatenate([a.addresses, a.addresses]),
        )
        np.testing.assert_array_equal(
            combined.is_write,
            np.concatenate([a.is_write, a.is_write]),
        )

    def test_concatenate_with_empty_segment(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        combined = MemoryTrace.concatenate([empty, _small_trace()])
        assert len(combined) == 5

"""Tests for the synthetic sampler building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.record import PAGE_SHIFT
from repro.traces.synthetic import (
    GaussianClusterSampler,
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    SequentialLoopSampler,
    UniformSampler,
    ZipfSampler,
    pages_to_addresses,
    zipf_probabilities,
)


class TestZipfProbabilities:
    def test_normalised(self):
        probs = zipf_probabilities(100, 1.0)
        assert probs.sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        probs = zipf_probabilities(50, 0.8)
        assert np.all(np.diff(probs) <= 0)

    def test_alpha_zero_uniform(self):
        probs = zipf_probabilities(10, 0.0)
        np.testing.assert_allclose(probs, 0.1)

    def test_higher_alpha_more_skewed(self):
        weak = zipf_probabilities(100, 0.5)
        strong = zipf_probabilities(100, 1.5)
        assert strong[0] > weak[0]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ValueError):
            zipf_probabilities(10, -0.1)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=1000),
        alpha=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_property_valid_distribution(self, n, alpha):
        probs = zipf_probabilities(n, alpha)
        assert probs.shape == (n,)
        assert np.all(probs > 0)
        assert probs.sum() == pytest.approx(1.0)


class TestZipfSampler:
    def test_stays_in_range(self, rng):
        sampler = ZipfSampler(base_page=100, n_pages=50, alpha=1.0)
        pages, _ = sampler.sample(1000, rng)
        assert pages.min() >= 100
        assert pages.max() < 150

    def test_head_hotter_than_tail(self, rng):
        sampler = ZipfSampler(base_page=0, n_pages=1000, alpha=1.2)
        pages, _ = sampler.sample(20_000, rng)
        head_hits = np.sum(pages < 100)
        tail_hits = np.sum(pages >= 900)
        assert head_hits > 5 * tail_hits

    def test_write_fraction_respected(self, rng):
        sampler = ZipfSampler(0, 100, 1.0, write_fraction=0.3)
        _, writes = sampler.sample(20_000, rng)
        assert np.mean(writes) == pytest.approx(0.3, abs=0.02)

    def test_scramble_spreads_hot_pages(self, rng):
        plain = ZipfSampler(0, 1000, 1.5, scramble=False)
        scrambled = ZipfSampler(0, 1000, 1.5, scramble=True, perm_seed=7)
        plain_pages, _ = plain.sample(5000, rng)
        scrambled_pages, _ = scrambled.sample(
            5000, np.random.default_rng(0)
        )
        # Without scrambling the mean page is near the base; scrambling
        # moves it toward the middle of the range.
        assert plain_pages.mean() < scrambled_pages.mean()


class TestGaussianClusterSampler:
    def test_clip_to_bounds(self, rng):
        sampler = GaussianClusterSampler(
            [(0.0, 100.0, 1.0)], lo_page=0, hi_page=50
        )
        pages, _ = sampler.sample(1000, rng)
        assert pages.min() >= 0
        assert pages.max() < 50

    def test_clusters_produce_local_modes(self, rng):
        sampler = GaussianClusterSampler(
            [(1000.0, 50.0, 0.5), (5000.0, 50.0, 0.5)],
            lo_page=0,
            hi_page=10_000,
        )
        pages, _ = sampler.sample(10_000, rng)
        near_first = np.sum(np.abs(pages - 1000) < 200)
        near_second = np.sum(np.abs(pages - 5000) < 200)
        in_between = np.sum(np.abs(pages - 3000) < 200)
        assert near_first > 100
        assert near_second > 100
        assert in_between < near_first / 10

    def test_rejects_empty_clusters(self):
        with pytest.raises(ValueError, match="at least one"):
            GaussianClusterSampler([], 0, 10)

    def test_rejects_bad_std(self):
        with pytest.raises(ValueError, match="std"):
            GaussianClusterSampler([(0.0, 0.0, 1.0)], 0, 10)

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError, match="hi_page"):
            GaussianClusterSampler([(0.0, 1.0, 1.0)], 10, 10)


class TestUniformSampler:
    def test_covers_range(self, rng):
        sampler = UniformSampler(10, 20)
        pages, _ = sampler.sample(5000, rng)
        assert pages.min() == 10
        assert pages.max() == 29
        assert len(np.unique(pages)) == 20

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            UniformSampler(0, 0)


class TestSequentialLoopSampler:
    def test_wraps_around(self, rng):
        sampler = SequentialLoopSampler(0, 4)
        pages, _ = sampler.sample(10, rng)
        np.testing.assert_array_equal(
            pages, [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]
        )

    def test_burst_repeats_pages(self, rng):
        sampler = SequentialLoopSampler(0, 3, burst=2)
        pages, _ = sampler.sample(8, rng)
        np.testing.assert_array_equal(pages, [0, 0, 1, 1, 2, 2, 0, 0])

    def test_stride_skips(self, rng):
        sampler = SequentialLoopSampler(0, 10, stride_pages=3)
        pages, _ = sampler.sample(5, rng)
        np.testing.assert_array_equal(pages, [0, 3, 6, 9, 2])

    def test_state_persists_across_calls(self, rng):
        sampler = SequentialLoopSampler(0, 100)
        first, _ = sampler.sample(5, rng)
        second, _ = sampler.sample(5, rng)
        np.testing.assert_array_equal(second, [5, 6, 7, 8, 9])

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SequentialLoopSampler(0, 0)
        with pytest.raises(ValueError):
            SequentialLoopSampler(0, 5, burst=0)
        with pytest.raises(ValueError):
            SequentialLoopSampler(0, 5, stride_pages=0)


class TestScanOnceSampler:
    def test_every_page_fresh_within_region(self, rng):
        sampler = ScanOnceSampler(0, 1000)
        pages, _ = sampler.sample(500, rng)
        assert len(np.unique(pages)) == 500

    def test_wraps_at_region_end(self, rng):
        sampler = ScanOnceSampler(0, 5)
        pages, _ = sampler.sample(7, rng)
        np.testing.assert_array_equal(pages, [0, 1, 2, 3, 4, 0, 1])


class TestMixtureSampler:
    def test_interleaves_components_in_order(self, rng):
        loop = SequentialLoopSampler(0, 1000)
        mixture = MixtureSampler([(loop, 1.0)])
        pages, _ = mixture.sample(5, rng)
        np.testing.assert_array_equal(pages, [0, 1, 2, 3, 4])

    def test_weights_respected(self, rng):
        a = UniformSampler(0, 10)
        b = UniformSampler(1000, 10)
        mixture = MixtureSampler([(a, 0.8), (b, 0.2)])
        pages, _ = mixture.sample(10_000, rng)
        fraction_b = np.mean(pages >= 1000)
        assert fraction_b == pytest.approx(0.2, abs=0.02)

    def test_stateful_component_keeps_internal_order(self, rng):
        loop = SequentialLoopSampler(1000, 1000)
        noise = UniformSampler(0, 10)
        mixture = MixtureSampler([(loop, 0.5), (noise, 0.5)])
        pages, _ = mixture.sample(200, rng)
        loop_pages = pages[pages >= 1000]
        np.testing.assert_array_equal(
            loop_pages, 1000 + np.arange(len(loop_pages))
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            MixtureSampler([])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError, match="non-negative"):
            MixtureSampler([(UniformSampler(0, 5), -1.0)])


class TestPagesToAddresses:
    def test_addresses_in_page(self, rng):
        pages = np.array([3, 7])
        addresses = pages_to_addresses(pages, rng)
        np.testing.assert_array_equal(addresses >> PAGE_SHIFT, pages)

    def test_line_aligned(self, rng):
        addresses = pages_to_addresses(np.arange(100), rng)
        assert np.all(addresses % 64 == 0)

    def test_no_sub_page(self, rng):
        pages = np.array([3, 7])
        addresses = pages_to_addresses(pages, rng, sub_page=False)
        np.testing.assert_array_equal(addresses, pages << PAGE_SHIFT)


class TestPhasedTraceBuilder:
    def test_total_and_build_length(self, rng):
        builder = PhasedTraceBuilder()
        builder.add_phase(100, UniformSampler(0, 10))
        builder.add_phase(50, UniformSampler(100, 10))
        assert builder.total_accesses == 150
        trace = builder.build(rng)
        assert len(trace) == 150

    def test_phases_in_order(self, rng):
        builder = PhasedTraceBuilder()
        builder.add_phase(10, UniformSampler(0, 5))
        builder.add_phase(10, UniformSampler(1000, 5))
        trace = builder.build(rng)
        pages = trace.page_indices()
        assert np.all(pages[:10] < 1000)
        assert np.all(pages[10:] >= 1000)

    def test_empty_builder_raises(self, rng):
        with pytest.raises(ValueError, match="no phases"):
            PhasedTraceBuilder().build(rng)

    def test_zero_length_phase_skipped(self, rng):
        builder = PhasedTraceBuilder()
        builder.add_phase(0, UniformSampler(0, 5))
        builder.add_phase(10, UniformSampler(0, 5))
        assert len(builder.build(rng)) == 10

    def test_negative_phase_rejected(self):
        builder = PhasedTraceBuilder()
        with pytest.raises(ValueError, match=">= 0"):
            builder.add_phase(-1, UniformSampler(0, 5))

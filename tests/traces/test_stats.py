"""Tests for trace statistics (Fig. 2 data)."""

import numpy as np
import pytest

from repro.traces.record import MemoryTrace
from repro.traces.stats import (
    hot_page_concentration,
    page_access_counts,
    reuse_gaps,
    spatial_histogram,
    temporal_histogram,
)


def _trace_from_pages(pages, times=None):
    pages = np.asarray(pages, dtype=np.int64)
    return MemoryTrace(
        pages << 12, np.zeros(len(pages), dtype=bool), times
    )


class TestSpatialHistogram:
    def test_counts_sum_to_trace_length(self):
        trace = _trace_from_pages([0, 1, 2, 100, 100, 100])
        histogram = spatial_histogram(trace, n_bins=10)
        assert histogram.counts.sum() == 6

    def test_bimodal_trace_detected(self):
        pages = [10] * 100 + [5000] * 100
        histogram = spatial_histogram(_trace_from_pages(pages), 50)
        assert histogram.modality() == 2

    def test_unimodal_trace(self):
        pages = list(range(100))
        histogram = spatial_histogram(_trace_from_pages(pages), 10)
        assert histogram.modality() == 1

    def test_empty_trace(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        histogram = spatial_histogram(empty, 10)
        assert histogram.counts.sum() == 0
        assert histogram.modality() == 0

    def test_bin_centers_between_edges(self):
        trace = _trace_from_pages([0, 100])
        histogram = spatial_histogram(trace, 4)
        assert np.all(histogram.bin_centers > histogram.bin_edges[:-1])
        assert np.all(histogram.bin_centers < histogram.bin_edges[1:])

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            spatial_histogram(_trace_from_pages([1]), 0)


class TestTemporalHistogram:
    def test_shape(self):
        trace = _trace_from_pages(list(range(100)))
        histogram = temporal_histogram(trace, 5, 4)
        assert histogram.counts.shape == (5, 4)

    def test_moving_hotspot_is_nonuniform(self):
        # First half hits page 0, second half hits page 1000.
        pages = [0] * 500 + [1000] * 500
        histogram = temporal_histogram(_trace_from_pages(pages), 10, 10)
        assert histogram.column_nonuniformity() > 0.5

    def test_stationary_pattern_is_uniform(self, rng):
        pages = rng.integers(0, 100, size=10_000)
        histogram = temporal_histogram(_trace_from_pages(pages), 10, 5)
        assert histogram.column_nonuniformity() < 0.2

    def test_empty_trace(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        histogram = temporal_histogram(empty, 5, 5)
        assert histogram.counts.sum() == 0
        assert histogram.column_nonuniformity() == 0.0


class TestPageAccessCounts:
    def test_sorted_hottest_first(self):
        pages, counts = page_access_counts(
            _trace_from_pages([1, 2, 2, 3, 3, 3])
        )
        np.testing.assert_array_equal(counts, [3, 2, 1])
        np.testing.assert_array_equal(pages, [3, 2, 1])


class TestHotPageConcentration:
    def test_uniform_trace(self):
        pages = list(range(100))
        assert hot_page_concentration(
            _trace_from_pages(pages), 0.1
        ) == pytest.approx(0.1)

    def test_skewed_trace(self):
        pages = [0] * 900 + list(range(1, 101))
        concentration = hot_page_concentration(
            _trace_from_pages(pages), 0.01
        )
        assert concentration > 0.85

    def test_empty_trace(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert hot_page_concentration(empty, 0.1) == 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            hot_page_concentration(_trace_from_pages([1]), 0.0)


class TestReuseGaps:
    def test_simple_pattern(self):
        # First touches of 7 and 8 are excluded; three reuses remain.
        gaps = reuse_gaps(_trace_from_pages([7, 8, 7, 8, 7]))
        np.testing.assert_array_equal(gaps, [2, 2, 2])

    def test_no_reuse(self):
        gaps = reuse_gaps(_trace_from_pages([1, 2, 3, 4]))
        assert gaps.size == 0

    def test_gap_counts_requests_not_pages(self):
        gaps = reuse_gaps(_trace_from_pages([5, 1, 2, 3, 5]))
        np.testing.assert_array_equal(gaps, [4])

"""Tests for the maintenance-burst structure of the workloads.

The burst-phased generators place their maintenance traffic (expiry
scans, rehashes, rebuilds, range scans, reduction sweeps) in the final
``burst_len`` requests of every ``burst_period`` window.  That
placement is load-bearing: it aligns the bursts with Algorithm 1's
access shots, giving the GMM's temporal dimension its signal.
"""

import numpy as np
import pytest

from repro.traces.synthetic import (
    PhasedTraceBuilder,
    UniformSampler,
    add_bursty_phases,
)
from repro.traces.workloads import get_workload

#: (workload, attribute holding the burst sampler's page region lo).
BURSTY_WORKLOADS = ("memtier", "hashmap", "heap", "sysbench", "dlrm")


class TestAddBurstyPhases:
    def test_alternating_layout(self, rng):
        builder = PhasedTraceBuilder()
        normal = UniformSampler(0, 10)
        burst = UniformSampler(1000, 10)
        add_bursty_phases(
            builder, 1000, normal, burst, period=100, burst_len=20
        )
        trace = builder.build(rng)
        pages = trace.page_indices()
        # Each period: first 80 normal, last 20 burst.
        for start in range(0, 1000, 100):
            window = pages[start : start + 100]
            assert np.all(window[:80] < 1000)
            assert np.all(window[80:] >= 1000)

    def test_zero_burst_len(self, rng):
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            250,
            UniformSampler(0, 4),
            UniformSampler(100, 4),
            period=100,
            burst_len=0,
        )
        trace = builder.build(rng)
        assert np.all(trace.page_indices() < 100)

    def test_partial_trailing_period(self, rng):
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            150,  # one full period + half a quiet phase
            UniformSampler(0, 4),
            UniformSampler(100, 4),
            period=100,
            burst_len=10,
        )
        assert builder.total_accesses == 150

    def test_validation(self):
        builder = PhasedTraceBuilder()
        normal = UniformSampler(0, 4)
        with pytest.raises(ValueError, match="period"):
            add_bursty_phases(builder, 10, normal, normal, 0, 0)
        with pytest.raises(ValueError, match="burst_len"):
            add_bursty_phases(builder, 10, normal, normal, 10, 10)


class TestWorkloadBurstAlignment:
    @pytest.mark.parametrize("name", BURSTY_WORKLOADS)
    def test_bursts_sit_in_shot_tail(self, name):
        # Burst traffic is sequential (scans/sweeps advance page by
        # page), so within each 10k period the tail (where bursts
        # live) must show a far higher rate of +1-page steps than the
        # body's random traffic.
        rng = np.random.default_rng(0)
        workload = get_workload(name, scale=1 / 32)
        trace = workload.generate(60_000, rng)
        pages = trace.page_indices()
        sequential = np.zeros(len(pages), dtype=bool)
        sequential[1:] = np.diff(pages) == 1
        period = workload.burst_period
        burst_len = workload.burst_len
        body_rate = []
        tail_rate = []
        for start in range(0, 60_000 - period + 1, period):
            body = sequential[start : start + period - burst_len]
            tail = sequential[
                start + period - burst_len : start + period
            ]
            body_rate.append(body.mean())
            tail_rate.append(tail.mean())
        assert np.mean(tail_rate) > 5 * max(
            np.mean(body_rate), 1e-3
        ), name

"""Tests for multi-tenant trace mixing."""

import numpy as np
import pytest

from repro.traces.mixing import interleave, multi_tenant_trace, relocate
from repro.traces.record import MemoryTrace
from repro.traces.workloads import get_workload


def _trace(pages, writes=None):
    pages = np.asarray(pages, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(pages), dtype=bool)
    return MemoryTrace(pages << 12, np.asarray(writes))


class TestRelocate:
    def test_moves_origin(self):
        trace = _trace([10, 12, 11])
        moved = relocate(trace, base_page=100)
        np.testing.assert_array_equal(
            moved.page_indices(), [100, 102, 101]
        )

    def test_preserves_flags_and_order(self):
        trace = _trace([5, 6], writes=[True, False])
        moved = relocate(trace, 0)
        np.testing.assert_array_equal(moved.is_write, [True, False])
        np.testing.assert_array_equal(moved.page_indices(), [0, 1])

    def test_empty_trace(self):
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        assert len(relocate(empty, 50)) == 0

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError, match="base_page"):
            relocate(_trace([1]), -1)


class TestInterleave:
    def test_length_and_sources(self, rng):
        a = _trace([0, 1, 2])
        b = _trace([1000, 1001])
        mixed = interleave([a, b], [0.5, 0.5], 200, rng)
        assert len(mixed) == 200
        pages = mixed.page_indices()
        assert np.any(pages < 100)
        assert np.any(pages >= 1000)

    def test_per_tenant_order_preserved(self, rng):
        a = _trace(list(range(50)))
        b = _trace([9999])
        mixed = interleave([a, b], [0.7, 0.3], 60, rng)
        a_pages = mixed.page_indices()[mixed.page_indices() < 9999]
        # Tenant A's stream is consumed in order (with wraparound).
        diffs = np.diff(a_pages)
        assert np.all((diffs == 1) | (diffs < 0))

    def test_weights_respected(self, rng):
        a = _trace([0])
        b = _trace([1000])
        mixed = interleave([a, b], [0.9, 0.1], 5000, rng)
        fraction_b = np.mean(mixed.page_indices() == 1000)
        assert fraction_b == pytest.approx(0.1, abs=0.02)

    def test_validation(self, rng):
        with pytest.raises(ValueError, match="not be empty"):
            interleave([], [], 10, rng)
        with pytest.raises(ValueError, match="align"):
            interleave([_trace([1])], [0.5, 0.5], 10, rng)
        with pytest.raises(ValueError, match="non-negative"):
            interleave([_trace([1])], [-1.0], 10, rng)
        empty = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        with pytest.raises(ValueError, match="non-empty"):
            interleave([empty], [1.0], 10, rng)


class TestMultiTenant:
    def test_partitions_are_disjoint(self, rng):
        mixed = multi_tenant_trace(
            [
                get_workload("memtier", scale=1 / 128),
                get_workload("stream", scale=1 / 128),
            ],
            weights=[0.5, 0.5],
            n_accesses=20_000,
            rng=rng,
            partition_pages=100_000,
        )
        pages = mixed.page_indices()
        tenant = pages // 100_000
        assert set(np.unique(tenant)) == {0, 1}

    def test_rejects_misaligned_weights(self, rng):
        with pytest.raises(ValueError, match="align"):
            multi_tenant_trace(
                [get_workload("heap")], [0.5, 0.5], 100, rng
            )

    def test_rejects_bad_partition(self, rng):
        with pytest.raises(ValueError, match="partition_pages"):
            multi_tenant_trace(
                [get_workload("heap", scale=1 / 128)],
                [1.0],
                100,
                rng,
                partition_pages=0,
            )

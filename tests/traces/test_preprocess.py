"""Tests for Sec. 3.1 preprocessing (trim, page index, Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.preprocess import (
    ProcessedTrace,
    TracePreprocessor,
    transform_timestamps,
    transform_timestamps_at,
    transform_timestamps_reference,
    trim_warmup,
)
from repro.traces.record import MemoryTrace


def _trace(n=100):
    return MemoryTrace(
        np.arange(n, dtype=np.int64) * 4096,
        np.zeros(n, dtype=bool),
    )


class TestTrimWarmup:
    def test_paper_defaults_trim_20_and_10_percent(self):
        trimmed = trim_warmup(_trace(100))
        assert len(trimmed) == 70
        assert trimmed[0].address == 20 * 4096
        assert trimmed[-1].address == 89 * 4096

    def test_zero_fractions_keep_everything(self):
        trimmed = trim_warmup(_trace(50), 0.0, 0.0)
        assert len(trimmed) == 50

    def test_rejects_fractions_that_consume_trace(self):
        with pytest.raises(ValueError, match="non-empty middle"):
            trim_warmup(_trace(), 0.6, 0.4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            trim_warmup(_trace(), -0.1, 0.1)
        with pytest.raises(ValueError):
            trim_warmup(_trace(), 0.1, 1.0)

    def test_small_trace(self):
        trimmed = trim_warmup(_trace(3), 0.2, 0.1)
        assert len(trimmed) == 3  # floor(3*0.2) = floor(3*0.1) = 0


class TestTransformTimestamps:
    def test_window_grouping(self):
        ts = transform_timestamps(10, len_window=3, len_access_shot=100)
        np.testing.assert_array_equal(
            ts, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]
        )

    def test_shot_reset_algorithm_mode(self):
        # Timestamp wraps when it reaches len_access_shot.
        ts = transform_timestamps(
            12, len_window=2, len_access_shot=3, mode="algorithm"
        )
        np.testing.assert_array_equal(
            ts, [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]
        )

    def test_prose_mode_wraps_by_requests(self):
        # Shot = 6 requests, window = 2 -> timestamps 0,0,1,1,2,2 repeat.
        ts = transform_timestamps(
            12, len_window=2, len_access_shot=6, mode="prose"
        )
        np.testing.assert_array_equal(
            ts, [0, 0, 1, 1, 2, 2, 0, 0, 1, 1, 2, 2]
        )

    def test_matches_reference_implementation(self):
        # The vectorised version must agree with the literal
        # line-by-line transcription of Algorithm 1.
        got = transform_timestamps(5000, 32, 10, mode="algorithm")
        expected = transform_timestamps_reference(5000, 32, 10)
        np.testing.assert_array_equal(got, expected)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=2000),
        len_window=st.integers(min_value=1, max_value=64),
        len_access_shot=st.integers(min_value=1, max_value=50),
    )
    def test_property_matches_reference(
        self, n, len_window, len_access_shot
    ):
        got = transform_timestamps(
            n, len_window, len_access_shot, mode="algorithm"
        )
        expected = transform_timestamps_reference(
            n, len_window, len_access_shot
        )
        np.testing.assert_array_equal(got, expected)

    def test_paper_defaults(self):
        ts = transform_timestamps(100_000)
        # 100k accesses / 32 per window < 10,000 shots: no wrap yet.
        assert ts[0] == 0
        assert ts[-1] == (100_000 - 1) // 32

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            transform_timestamps(-1)
        with pytest.raises(ValueError):
            transform_timestamps(10, len_window=0)
        with pytest.raises(ValueError):
            transform_timestamps(10, len_access_shot=0)
        with pytest.raises(ValueError, match="unknown mode"):
            transform_timestamps(10, mode="banana")

    def test_zero_length(self):
        assert transform_timestamps(0).shape == (0,)


class TestTransformTimestampsAt:
    """The streaming variant: stamps at arbitrary absolute indices."""

    @pytest.mark.parametrize("mode", ["prose", "algorithm"])
    def test_chunked_agrees_with_full_pass(self, mode):
        full = transform_timestamps(
            40_000, len_window=32, len_access_shot=10_000, mode=mode
        )
        chunked = np.concatenate(
            [
                transform_timestamps_at(
                    np.arange(start, min(start + 6_113, 40_000)),
                    len_window=32,
                    len_access_shot=10_000,
                    mode=mode,
                )
                for start in range(0, 40_000, 6_113)
            ]
        )
        np.testing.assert_array_equal(full, chunked)

    def test_arbitrary_index_subsets(self):
        full = transform_timestamps(5_000, 4, 100, mode="prose")
        picks = np.array([0, 3, 17, 4_999, 250, 250])
        np.testing.assert_array_equal(
            transform_timestamps_at(picks, 4, 100, mode="prose"),
            full[picks],
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match=">= 0"):
            transform_timestamps_at(np.array([-1]))
        with pytest.raises(ValueError):
            transform_timestamps_at(np.array([0]), len_window=0)
        with pytest.raises(ValueError, match="unknown mode"):
            transform_timestamps_at(np.array([0]), mode="banana")


class TestTracePreprocessor:
    def test_process_pipeline(self):
        processor = TracePreprocessor()
        processed = processor.process(_trace(1000))
        assert isinstance(processed, ProcessedTrace)
        assert len(processed) == 700
        # Page indices derive from the *trimmed* trace.
        np.testing.assert_array_equal(
            processed.page_indices, np.arange(200, 900)
        )

    def test_features_shape_and_columns(self):
        processed = TracePreprocessor().process(_trace(1000))
        features = processed.features
        assert features.shape == (700, 2)
        np.testing.assert_array_equal(
            features[:, 0], processed.page_indices.astype(float)
        )
        np.testing.assert_array_equal(
            features[:, 1], processed.timestamps.astype(float)
        )

    def test_timestamps_restart_after_trim(self):
        # Timestamps are assigned on the trimmed trace, so the first
        # surviving request gets timestamp 0.
        processed = TracePreprocessor().process(_trace(1000))
        assert processed.timestamps[0] == 0

    def test_custom_windows_prose_default(self):
        # Default mode is "prose": shot = 50 requests, window = 10
        # -> timestamps cycle 0..4.
        processor = TracePreprocessor(
            head_fraction=0.0,
            tail_fraction=0.0,
            len_window=10,
            len_access_shot=50,
        )
        processed = processor.process(_trace(100))
        assert processed.timestamps.max() == 4
        assert processed.timestamps[50] == 0  # wrapped at shot end

    def test_custom_windows_algorithm_mode(self):
        processor = TracePreprocessor(
            head_fraction=0.0,
            tail_fraction=0.0,
            len_window=10,
            len_access_shot=5,
            timestamp_mode="algorithm",
        )
        processed = processor.process(_trace(100))
        assert processed.timestamps.max() == 4  # wraps at 5

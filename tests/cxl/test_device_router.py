"""Tests for the CXL device, link and router."""

import numpy as np
import pytest

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.cxl.address_space import UnifiedAddressSpace
from repro.cxl.device import CxlMemoryDevice
from repro.cxl.link import CxlLinkSpec
from repro.cxl.router import CxlSystem
from repro.traces.record import MemoryTrace


def _device(policy=None, ways=2, sets=2):
    cache = SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )
    return CxlMemoryDevice(
        cache, policy if policy is not None else LruPolicy()
    )


class TestLink:
    def test_transfer_time(self):
        link = CxlLinkSpec(bandwidth_gb_s=25.0)
        # 25 GB/s ~ 25 bytes/ns -> 4 KiB ~ 164 ns.
        assert link.transfer_ns(4096) == pytest.approx(164, abs=1)

    def test_request_latency_includes_overhead(self):
        link = CxlLinkSpec(round_trip_overhead_ns=150)
        assert link.request_latency_ns(0) == 150

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CxlLinkSpec(round_trip_overhead_ns=-1)
        with pytest.raises(ValueError):
            CxlLinkSpec(bandwidth_gb_s=0)
        with pytest.raises(ValueError):
            CxlLinkSpec().transfer_ns(-1)


class TestDevice:
    def test_hit_latency(self):
        device = _device()
        device.access(0, False)  # miss + fill
        result = device.access(0, False)
        assert result.hit
        assert result.latency_ns == 1_000

    def test_miss_pays_ssd_read(self):
        device = _device()
        result = device.access(0, False)
        assert not result.hit
        assert result.latency_ns == 75_000

    def test_dirty_eviction_adds_write(self):
        device = _device()
        device.access(0, True)  # dirty fill, set 0
        device.access(2, False)  # set 0 second way
        result = device.access(4, False)  # evicts dirty page 0
        assert result.latency_ns == 75_000 + 900_000
        assert device.stats.dirty_evictions == 1

    def test_bypass(self):
        device = _device(policy=GmmCachePolicy(threshold=0.5))
        result = device.access(0, False, score=0.1)
        assert result.bypassed
        assert device.stats.bypasses == 1
        # Bypassed page is not resident.
        assert device.cache.occupancy() == 0

    def test_stats_accumulate(self):
        device = _device()
        for page in (0, 0, 1, 1):
            device.access(page, False)
        assert device.stats.hits == 2
        assert device.stats.misses == 2

    def test_rejects_bad_hit_latency(self):
        with pytest.raises(ValueError):
            CxlMemoryDevice(
                SetAssociativeCache(), LruPolicy(), hit_latency_ns=0
            )


class TestRouter:
    def _system(self):
        space = UnifiedAddressSpace(
            host_bytes=1 << 20, device_bytes=1 << 30
        )
        return CxlSystem(space, _device()), space

    def test_host_access_is_fast(self):
        system, _ = self._system()
        assert system.access(0, False) == 80

    def test_device_access_includes_link(self):
        system, space = self._system()
        address = space.device_range.base  # device page 0, miss
        latency = system.access(address, False)
        link_ns = system.link.request_latency_ns(64)
        assert latency == link_ns + 75_000

    def test_device_page_translation(self):
        # Two unified addresses in the same device page must hit.
        system, space = self._system()
        base = space.device_range.base
        system.access(base, False)
        latency = system.access(base + 64, False)
        assert latency == system.link.request_latency_ns(64) + 1_000

    def test_run_trace_partitions_accesses(self):
        system, space = self._system()
        addresses = np.array(
            [0, 64, space.device_range.base, space.device_range.base + 64]
        )
        trace = MemoryTrace(addresses, np.zeros(4, dtype=bool))
        result = system.run_trace(trace)
        assert result.host_accesses == 2
        assert result.device_accesses == 2
        assert result.total_accesses == 4
        assert result.average_latency_ns > 0

    def test_run_trace_score_validation(self):
        system, _ = self._system()
        trace = MemoryTrace(np.array([0]), np.array([False]))
        with pytest.raises(ValueError, match="align"):
            system.run_trace(trace, scores=np.array([0.1, 0.2]))

    def test_empty_trace(self):
        system, _ = self._system()
        trace = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        result = system.run_trace(trace)
        assert result.average_latency_ns == 0.0
        assert result.average_device_latency_us == 0.0

    def test_rejects_bad_host_latency(self):
        space = UnifiedAddressSpace(1 << 20, 1 << 30)
        with pytest.raises(ValueError):
            CxlSystem(space, _device(), host_latency_ns=0)


class TestOutcomeAccounting:
    """The device/router tallies are rebuilt from recorded
    ``OUTCOME_*`` codes (one accounting implementation, not four)."""

    def _system(self):
        space = UnifiedAddressSpace(
            host_bytes=1 << 20, device_bytes=1 << 30
        )
        return CxlSystem(space, _device(ways=2, sets=4)), space

    def test_access_results_carry_outcome_codes(self):
        from repro.cache.stats import (
            OUTCOME_EVICT,
            OUTCOME_FILL,
            OUTCOME_HIT,
        )

        device = _device(ways=1, sets=1)
        assert device.access(0, False).outcome == OUTCOME_FILL
        assert device.access(0, False).outcome == OUTCOME_HIT
        assert device.access(1, False).outcome == OUTCOME_EVICT

    def test_device_stats_from_outcomes(self):
        from repro.cache.stats import stats_from_outcomes

        device = _device()
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 12, size=200)
        writes = rng.random(200) < 0.4
        for page, write in zip(pages, writes):
            device.access(int(page), bool(write))
        outcomes, is_write = device.outcome_record()
        assert outcomes.shape == (200,)
        assert np.array_equal(is_write, writes)
        assert device.stats == stats_from_outcomes(outcomes, writes)

    def test_run_trace_exposes_device_stats(self):
        system, space = self._system()
        rng = np.random.default_rng(1)
        n = 300
        device_addresses = (
            space.device_range.base
            + (rng.integers(0, 20, n) << 12)
        )
        host_addresses = rng.integers(0, 1 << 20, n)
        addresses = np.where(
            rng.random(n) < 0.5, device_addresses, host_addresses
        )
        writes = rng.random(n) < 0.3
        trace = MemoryTrace(addresses, writes)
        result = system.run_trace(trace)
        stats = result.device_stats
        assert stats.accesses == result.device_accesses
        # Read/write split consistent with CacheStats semantics.
        assert stats.write_hits + stats.write_misses == int(
            np.count_nonzero(
                writes & (addresses >= space.device_range.base)
            )
        )
        assert stats.hits + stats.misses == stats.accesses
        assert stats == system.device.stats

    def test_empty_trace_has_empty_device_stats(self):
        system, _ = self._system()
        trace = MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
        result = system.run_trace(trace)
        assert result.device_stats.accesses == 0

"""Tests for the unified address space."""

import pytest

from repro.cxl.address_space import AddressRange, UnifiedAddressSpace


class TestAddressRange:
    def test_contains(self):
        r = AddressRange(100, 50)
        assert 100 in r
        assert 149 in r
        assert 150 not in r
        assert 99 not in r

    def test_offset(self):
        r = AddressRange(100, 50)
        assert r.offset_of(120) == 20

    def test_offset_out_of_range(self):
        with pytest.raises(ValueError, match="outside"):
            AddressRange(100, 50).offset_of(10)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AddressRange(-1, 10)
        with pytest.raises(ValueError):
            AddressRange(0, 0)


class TestUnifiedAddressSpace:
    def test_layout(self):
        space = UnifiedAddressSpace(host_bytes=1024, device_bytes=4096)
        assert space.host_range.base == 0
        assert space.device_range.base == 1024
        assert space.total_bytes == 5120

    def test_routing_predicates(self):
        space = UnifiedAddressSpace(host_bytes=1024, device_bytes=4096)
        assert space.is_host_address(0)
        assert space.is_host_address(1023)
        assert space.is_device_address(1024)
        assert space.is_device_address(5119)
        assert not space.is_device_address(1023)
        assert not space.is_host_address(1024)

    def test_translation_round_trip(self):
        space = UnifiedAddressSpace(host_bytes=1024, device_bytes=4096)
        offset = space.to_device_offset(3000)
        assert offset == 3000 - 1024
        assert space.to_host_physical(offset) == 3000

    def test_translation_bounds(self):
        space = UnifiedAddressSpace(host_bytes=1024, device_bytes=4096)
        with pytest.raises(ValueError):
            space.to_device_offset(100)
        with pytest.raises(ValueError):
            space.to_host_physical(4096)

    def test_defaults_are_tb_scale(self):
        space = UnifiedAddressSpace()
        assert space.device_range.size == 1 << 40

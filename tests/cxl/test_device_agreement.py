"""Property test: the CXL device agrees with the cache simulator.

Third independent implementation of the request loop
(:class:`repro.cxl.device.CxlMemoryDevice` serves requests one at a
time with latencies); its counters must match
:func:`repro.cache.setassoc.simulate` exactly on any stream.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cxl.device import CxlMemoryDevice


def _cache():
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=4 * 4 * 4096, block_bytes=4096, associativity=4
        )
    )


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    use_gmm=st.booleans(),
)
def test_device_counters_match_simulator(seed, use_gmm):
    rng = np.random.default_rng(seed)
    n = 400
    pages = rng.integers(0, 50, size=n)
    writes = rng.random(n) < 0.3
    scores = rng.random(n)

    def make_policy():
        if use_gmm:
            return GmmCachePolicy(threshold=0.4)
        return LruPolicy()

    fast = simulate(
        _cache(), make_policy(), pages, writes, scores=scores
    )
    device = CxlMemoryDevice(_cache(), make_policy())
    for page, write, score in zip(pages, writes, scores):
        device.access(int(page), bool(write), float(score))

    for field in (
        "hits",
        "misses",
        "bypasses",
        "bypassed_writes",
        "fills",
        "evictions",
        "dirty_evictions",
        "write_hits",
        "write_misses",
    ):
        assert getattr(fast, field) == getattr(
            device.stats, field
        ), field

"""Fabric <-> offline differential parity suite.

The contract of :class:`repro.cxl.fabric.CxlFabric`: replaying a
trace over N devices is *bit-identical* to running each device's
sub-stream through a single-shot offline simulation (the same staged
pipeline the offline system drives), for every placement and every
Fig. 6 strategy; chunked streaming ingestion equals the one-shot
replay; and the count-based per-link pricing reproduces the scalar
per-access :class:`~repro.cxl.device.CxlMemoryDevice` loop exactly.
"""

import numpy as np
import pytest

from repro.cache.setassoc import SetAssociativeCache
from repro.core.config import (
    PLACEMENTS,
    STRATEGIES,
    FabricTopology,
    GmmEngineConfig,
    IcgmmConfig,
)
from repro.core.pipeline import StagedPipeline
from repro.core.policy import build_policy
from repro.core.system import IcgmmSystem
from repro.cxl.device import CxlMemoryDevice
from repro.cxl.fabric import CxlFabric
from repro.traces.record import CACHE_LINE_SIZE

N_DEVICES = 4
WARMUP = 0.2


@pytest.fixture(scope="module")
def config():
    return IcgmmConfig(
        trace_length=24_000,
        gmm=GmmEngineConfig(n_components=8, max_train_samples=4_000),
    )


@pytest.fixture(scope="module")
def prepared(config):
    return IcgmmSystem(config).prepare("memtier")


def _topology(placement):
    # Heterogeneous links so per-link pricing actually differs.
    return FabricTopology(
        n_devices=N_DEVICES,
        placement=placement,
        link_overhead_ns=(100, 150, 200, 250),
    )


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("strategy", STRATEGIES)
class TestFabricOfflineParity:
    def test_per_device_stats_match_single_shot(
        self, config, prepared, placement, strategy
    ):
        """Every device's counters equal a fresh offline run on its
        sub-stream (same pipeline, same warm-up cut)."""
        fabric = CxlFabric(_topology(placement), config=config)
        result = fabric.run_prepared(
            prepared, strategy, warmup_fraction=WARMUP
        )
        assert result.accesses > 0

        pipeline = StagedPipeline(config)
        device_ids, local_pages = fabric.place(
            prepared.page_indices, prepared.page_frequency_scores
        )
        scores = pipeline.strategy_scores(prepared, strategy)
        for device in range(N_DEVICES):
            positions = np.nonzero(device_ids == device)[0]
            policy = build_policy(
                strategy,
                prepared.engine.admission_threshold,
                page_scores=(
                    dict(fabric._device_page_maps[device])
                    if strategy == "gmm-caching-eviction"
                    else None
                ),
            )
            stats = pipeline.simulate(
                SetAssociativeCache(config.geometry),
                policy,
                local_pages[positions],
                prepared.is_write[positions],
                scores=(
                    scores[positions] if scores is not None else None
                ),
                warmup_fraction=WARMUP,
            )
            assert stats == result.devices[device].stats, (
                placement,
                strategy,
                device,
            )

    def test_chunked_ingest_equals_one_shot(
        self, config, prepared, placement, strategy
    ):
        """Streaming ingestion (resumable per-device cursors) is
        bit-identical to the one-shot replay with no warm-up cut."""
        one_shot = CxlFabric(_topology(placement), config=config)
        reference = one_shot.run_prepared(
            prepared, strategy, warmup_fraction=0.0
        )

        streamed = CxlFabric(_topology(placement), config=config)
        streamed.bind(
            strategy,
            prepared.engine.admission_threshold,
            page_score_map=(
                prepared.page_score_map()
                if strategy == "gmm-caching-eviction"
                else None
            ),
            score_cuts=one_shot._score_cuts,
        )
        scores = streamed.pipeline.strategy_scores(prepared, strategy)
        n = len(prepared)
        for start in range(0, n, 5_000):
            stop = min(start + 5_000, n)
            streamed.ingest(
                prepared.page_indices[start:stop],
                prepared.is_write[start:stop],
                scores=(
                    scores[start:stop] if scores is not None else None
                ),
                page_marginals=prepared.page_frequency_scores[
                    start:stop
                ],
            )
        result = streamed.results()
        for device in range(N_DEVICES):
            assert (
                result.devices[device].stats
                == reference.devices[device].stats
            )
            assert (
                result.devices[device].time_ns
                == reference.devices[device].time_ns
            )
        assert result.total_time_ns == reference.total_time_ns


class TestFabricScalarRouterParity:
    @pytest.mark.parametrize(
        "strategy", ("lru", "gmm-caching", "gmm-caching-eviction")
    )
    def test_pricing_matches_per_access_device_loop(
        self, config, prepared, strategy
    ):
        """Count-based per-link pricing equals summing the scalar
        device loop's per-access latencies plus the link, request by
        request."""
        fabric = CxlFabric(_topology("interleave"), config=config)
        result = fabric.run_prepared(
            prepared, strategy, warmup_fraction=0.0
        )
        device_ids, local_pages = fabric.place(prepared.page_indices)
        scores = fabric.pipeline.strategy_scores(prepared, strategy)
        for d in range(N_DEVICES):
            positions = np.nonzero(device_ids == d)[0]
            device = CxlMemoryDevice(
                SetAssociativeCache(config.geometry),
                build_policy(
                    strategy,
                    prepared.engine.admission_threshold,
                    page_scores=(
                        dict(fabric._device_page_maps[d])
                        if strategy == "gmm-caching-eviction"
                        else None
                    ),
                ),
            )
            link_ns = fabric.links[d].request_latency_ns(
                CACHE_LINE_SIZE
            )
            total_ns = 0
            lp = local_pages[positions]
            wr = prepared.is_write[positions]
            for i in range(positions.size):
                access = device.access(
                    int(lp[i]),
                    bool(wr[i]),
                    float(scores[positions[i]])
                    if scores is not None
                    else 0.0,
                )
                total_ns += link_ns + access.latency_ns
            assert device.stats == result.devices[d].stats
            assert total_ns == result.devices[d].time_ns


class TestPlacements:
    def test_interleave_balances_and_is_collision_free(self, config):
        fabric = CxlFabric(_topology("interleave"), config=config)
        pages = np.arange(1000, dtype=np.int64)
        device_ids, local = fabric.place(pages)
        assert set(np.unique(device_ids).tolist()) == set(
            range(N_DEVICES)
        )
        # Division keeps (device, local) unique per page.
        assert np.array_equal(
            local * N_DEVICES + device_ids, pages
        )

    def test_range_keeps_runs_together(self, config):
        topology = FabricTopology(
            n_devices=2, placement="range", range_stride_pages=64
        )
        fabric = CxlFabric(topology, config=config)
        pages = np.arange(256, dtype=np.int64)
        device_ids, local = fabric.place(pages)
        assert np.array_equal(local, pages)
        assert np.all(device_ids[:64] == 0)
        assert np.all(device_ids[64:128] == 1)
        assert np.all(device_ids[128:192] == 0)

    def test_score_placement_sends_hot_pages_to_fast_links(
        self, config
    ):
        topology = FabricTopology(
            n_devices=2,
            placement="score",
            link_overhead_ns=(500, 100),
        )
        fabric = CxlFabric(topology, config=config)
        pages = np.arange(100, dtype=np.int64)
        marginals = pages.astype(np.float64)  # page i scores i
        fabric.bind(
            "lru", score_cuts=fabric._cuts_from_marginals(marginals)
        )
        device_ids, _ = fabric.place(pages, marginals)
        # Device 1 has the faster link: the hottest half lands there.
        assert np.all(device_ids[50:] == 1)
        assert np.all(device_ids[:50] == 0)

    def test_score_placement_requires_binding(self, config):
        fabric = CxlFabric(_topology("score"), config=config)
        with pytest.raises(ValueError, match="bind"):
            fabric.place(np.arange(10), np.arange(10, dtype=float))

    def test_ingest_requires_bind(self, config):
        fabric = CxlFabric(_topology("interleave"), config=config)
        with pytest.raises(ValueError, match="bind"):
            fabric.ingest(np.arange(10), np.zeros(10, dtype=bool))

    def test_topology_validation(self):
        with pytest.raises(ValueError):
            FabricTopology(n_devices=0)
        with pytest.raises(ValueError):
            FabricTopology(placement="striped")
        with pytest.raises(ValueError):
            FabricTopology(n_devices=2, link_overhead_ns=(100,))

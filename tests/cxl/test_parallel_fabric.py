"""Parallel fabric replay determinism + memory-lean result tests.

The multicore contract of :class:`repro.cxl.fabric.CxlFabric`: any
worker count, either backend, one-shot or chunked, produces
*byte-identical* per-device counters and priced service times to the
sequential replay; a worker crash propagates to the caller; and
outcome arrays are only materialised when explicitly requested
(``keep_outcomes=True``).
"""

import numpy as np
import pytest

from repro.cache.stats import stats_from_outcomes
from repro.core.config import (
    FabricTopology,
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
)
from repro.core.system import IcgmmSystem
from repro.cxl.fabric import CxlFabric

N_DEVICES = 4
N = 80_000

PARALLEL_VARIANTS = [
    ParallelConfig(workers=4, backend="thread"),
    ParallelConfig(workers=2, backend="process"),
]


@pytest.fixture(scope="module")
def config():
    return IcgmmConfig(
        trace_length=16_000,
        gmm=GmmEngineConfig(n_components=8, max_train_samples=4_000),
    )


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(17)
    pages = rng.integers(0, 30_000, N)
    is_write = rng.random(N) < 0.3
    scores = rng.standard_normal(N)
    return pages, is_write, scores


def _topology():
    return FabricTopology(
        n_devices=N_DEVICES, link_overhead_ns=(100, 150, 200, 250)
    )


def _replay(config, stream, parallel, strategy, chunked):
    pages, is_write, scores = stream
    fabric = CxlFabric(_topology(), config=config, parallel=parallel)
    fabric.bind(strategy, 0.1)
    try:
        if chunked:
            for start in range(0, N, 9_000):
                stop = start + 9_000
                fabric.ingest(
                    pages[start:stop],
                    is_write[start:stop],
                    scores=scores[start:stop],
                )
        else:
            fabric.ingest(pages, is_write, scores=scores)
        return fabric.results()
    finally:
        fabric.close()


@pytest.mark.parametrize(
    "parallel",
    PARALLEL_VARIANTS,
    ids=["thread4", "process2"],
)
@pytest.mark.parametrize("strategy", ["lru", "gmm-caching"])
@pytest.mark.parametrize("chunked", [False, True], ids=["oneshot", "chunked"])
def test_parallel_replay_is_bit_identical(
    config, stream, parallel, strategy, chunked
):
    sequential = _replay(
        config, stream, ParallelConfig(workers=1), strategy, chunked
    )
    parallel_result = _replay(
        config, stream, parallel, strategy, chunked
    )
    for seq, par in zip(
        sequential.devices, parallel_result.devices, strict=True
    ):
        assert par.stats == seq.stats
        assert par.time_ns == seq.time_ns
    assert (
        parallel_result.total_time_ns == sequential.total_time_ns
    )


def test_combined_strategy_parallel_parity(config, stream):
    """The combined policy's per-device score maps survive the
    process backend's policy round-trip (re-aliased on adoption)."""
    pages, is_write, scores = stream
    marginals = (pages % 97).astype(np.float64) / 97.0

    def run(parallel):
        fabric = CxlFabric(
            _topology(), config=config, parallel=parallel
        )
        fabric.bind("gmm-caching-eviction", 0.1, page_score_map={})
        try:
            for start in range(0, N, 9_000):
                stop = start + 9_000
                fabric.ingest(
                    pages[start:stop],
                    is_write[start:stop],
                    scores=scores[start:stop],
                    page_marginals=marginals[start:stop],
                )
            return fabric.results()
        finally:
            fabric.close()

    sequential = run(ParallelConfig(workers=1))
    for parallel in PARALLEL_VARIANTS:
        result = run(parallel)
        for seq, par in zip(
            sequential.devices, result.devices, strict=True
        ):
            assert par.stats == seq.stats
            assert par.time_ns == seq.time_ns


@pytest.mark.parametrize(
    "parallel",
    [ParallelConfig(workers=1), PARALLEL_VARIANTS[0]],
    ids=["inline", "thread4"],
)
def test_worker_crash_propagates(
    config, stream, parallel, monkeypatch
):
    """A failing device replay surfaces as the caller's exception,
    never as a silently dropped device."""
    import repro.core.parallel as parallel_mod

    def explode(task, simulator):
        raise RuntimeError("device replay exploded")

    monkeypatch.setattr(parallel_mod, "_run_replay", explode)
    pages, is_write, scores = stream
    fabric = CxlFabric(_topology(), config=config, parallel=parallel)
    fabric.bind("gmm-caching", 0.1)
    try:
        with pytest.raises(RuntimeError, match="exploded"):
            fabric.ingest(pages, is_write, scores=scores)
    finally:
        fabric.close()


def test_process_worker_crash_propagates(config, stream):
    """A crash inside a spawned worker (its shared segment is gone)
    reaches the caller instead of hanging or dropping the device."""
    pages, is_write, scores = stream
    fabric = CxlFabric(
        _topology(),
        config=config,
        parallel=ParallelConfig(workers=2, backend="process"),
    )
    fabric.bind("gmm-caching", 0.1)
    try:
        fabric._shared[0].close()  # workers can no longer attach
        with pytest.raises(FileNotFoundError):
            fabric.ingest(pages, is_write, scores=scores)
    finally:
        fabric.close()


class TestKeepOutcomes:
    @pytest.fixture(scope="class")
    def prepared(self, config):
        return IcgmmSystem(config).prepare("memtier")

    def test_default_keeps_nothing(self, config, prepared):
        fabric = CxlFabric(_topology(), config=config)
        result = fabric.run_prepared(prepared, "gmm-caching")
        assert all(d.outcomes is None for d in result.devices)

    def test_requested_outcomes_reaccount_to_stats(
        self, config, prepared
    ):
        fabric = CxlFabric(_topology(), config=config)
        result = fabric.run_prepared(
            prepared, "gmm-caching", warmup_fraction=0.0,
            keep_outcomes=True,
        )
        device_ids, _ = fabric.place(prepared.page_indices)
        for device in result.devices:
            assert device.outcomes is not None
            positions = np.nonzero(device_ids == device.device_id)[0]
            assert device.outcomes.shape[0] == positions.size
            rebuilt = stats_from_outcomes(
                device.outcomes, prepared.is_write[positions]
            )
            assert rebuilt == device.stats

    def test_parallel_outcome_streams_match_sequential(
        self, config, prepared
    ):
        sequential = CxlFabric(
            _topology(), config=config
        ).run_prepared(prepared, "lru", keep_outcomes=True)
        for parallel in PARALLEL_VARIANTS:
            fabric = CxlFabric(
                _topology(), config=config, parallel=parallel
            )
            try:
                result = fabric.run_prepared(
                    prepared, "lru", keep_outcomes=True
                )
                for seq, par in zip(
                    sequential.devices, result.devices, strict=True
                ):
                    np.testing.assert_array_equal(
                        seq.outcomes, par.outcomes
                    )
            finally:
                fabric.close()

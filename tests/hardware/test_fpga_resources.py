"""Tests for FPGA timing and resource models (Table 2, Sec. 5.1)."""

import pytest

from repro.hardware.fpga import (
    FpgaSpec,
    GmmEngineTiming,
    LstmEngineTiming,
    engine_speedup,
)
from repro.hardware.resources import (
    ResourceEstimate,
    estimate_cache_controller,
    estimate_gmm_engine,
    estimate_icgmm_system,
    estimate_lstm_engine,
    lstm_parameter_count,
)


class TestFpgaSpec:
    def test_u50_defaults(self):
        fpga = FpgaSpec()
        assert fpga.clock_mhz == 233.0
        assert fpga.bram == 1344
        assert fpga.dsp == 5952

    def test_cycle_ns(self):
        assert FpgaSpec(clock_mhz=250).cycle_ns == pytest.approx(4.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            FpgaSpec(clock_mhz=0)


class TestGmmTiming:
    def test_paper_latency_3us(self):
        timing = GmmEngineTiming()
        assert timing.latency_us(FpgaSpec()) == pytest.approx(3.0, abs=0.01)

    def test_scales_with_components(self):
        small = GmmEngineTiming(n_components=64)
        large = GmmEngineTiming(n_components=1024)
        assert large.cycles > small.cycles

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GmmEngineTiming(n_components=0)
        with pytest.raises(ValueError):
            GmmEngineTiming(ii=0)


class TestLstmTiming:
    def test_paper_latency_46ms(self):
        timing = LstmEngineTiming()
        assert timing.latency_us(FpgaSpec()) / 1000 == pytest.approx(
            46.3, abs=0.1
        )

    def test_mac_count(self):
        timing = LstmEngineTiming()
        expected = 32 * (
            4 * 128 * (2 + 128) + 2 * 4 * 128 * 256
        ) + 128
        assert timing.macs_per_inference == expected

    def test_speedup_over_10000x(self):
        # Table 2 reports a 15,433x latency gap.
        speedup = engine_speedup(LstmEngineTiming(), GmmEngineTiming())
        assert speedup > 10_000
        assert speedup == pytest.approx(15_433, rel=0.01)

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            LstmEngineTiming(hidden_size=0)
        with pytest.raises(ValueError):
            LstmEngineTiming(effective_macs_per_cycle=0)


class TestGmmResources:
    def test_table2_row_exact(self):
        estimate = estimate_gmm_engine()
        assert estimate == ResourceEstimate(
            bram=8, dsp=113, lut=58_353, ff=152_583
        )

    def test_bram_scales_with_components(self):
        small = estimate_gmm_engine(n_components=256)
        large = estimate_gmm_engine(n_components=8192)
        assert large.bram > small.bram
        assert large.dsp == small.dsp  # unroll unchanged

    def test_dsp_scales_with_unroll(self):
        assert estimate_gmm_engine(unroll=32).dsp > estimate_gmm_engine(
            unroll=16
        ).dsp

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            estimate_gmm_engine(n_components=0)


class TestLstmResources:
    def test_table2_row_exact(self):
        estimate = estimate_lstm_engine()
        assert estimate == ResourceEstimate(
            bram=339, dsp=145, lut=85_029, ff=103_561
        )

    def test_parameter_count_matches_network_module(self):
        # The resource model and the executable numpy network must
        # agree on the parameter count.
        import numpy as np

        from repro.lstm.network import LstmNetwork

        network = LstmNetwork(
            input_size=2,
            hidden_size=128,
            n_layers=3,
            rng=np.random.default_rng(0),
        )
        assert lstm_parameter_count() == network.parameter_count

    def test_bram_ratio_over_40x(self):
        # The paper highlights >40x BRAM advantage for the GMM.
        gmm = estimate_gmm_engine()
        lstm = estimate_lstm_engine()
        assert lstm.bram / gmm.bram > 40

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            estimate_lstm_engine(hidden_size=0)
        with pytest.raises(ValueError):
            estimate_lstm_engine(dsp_budget=0)


class TestSystemResources:
    def test_section51_totals(self):
        system = estimate_icgmm_system()
        assert system.bram == 190
        assert system.dsp == 117

    def test_utilization_on_u50(self):
        # Sec. 5.1: "only 190 (14%) BRAM and 117 (2%) DSP consumption".
        utilization = estimate_icgmm_system().utilization(FpgaSpec())
        assert utilization["bram"] == pytest.approx(0.14, abs=0.005)
        assert utilization["dsp"] == pytest.approx(0.02, abs=0.002)

    def test_system_fits_u50(self):
        assert estimate_icgmm_system().fits(FpgaSpec())

    def test_cache_controller_scales_with_blocks(self):
        small = estimate_cache_controller(n_blocks=16_384)
        large = estimate_cache_controller(n_blocks=262_144)
        assert large.bram > small.bram

    def test_estimate_addition(self):
        a = ResourceEstimate(1, 2, 3, 4)
        b = ResourceEstimate(10, 20, 30, 40)
        assert a + b == ResourceEstimate(11, 22, 33, 44)

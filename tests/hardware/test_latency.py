"""Tests for the average access-time model (Table 1 machinery)."""

import pytest

from repro.cache.stats import CacheStats
from repro.hardware.latency import LatencyModel, reduction_percent
from repro.hardware.ssd import get_ssd_spec


class TestAverageAccessTime:
    def test_all_hits(self):
        model = LatencyModel()
        stats = CacheStats(hits=100)
        assert model.average_access_time_us(stats) == pytest.approx(1.0)

    def test_empty(self):
        assert LatencyModel().average_access_time_us(CacheStats()) == 0.0

    def test_paper_miss_penalty_values(self):
        # One clean read miss costs exactly the 75 us SSD read.
        model = LatencyModel()
        stats = CacheStats(misses=1, fills=1)
        assert model.average_access_time_us(stats) == pytest.approx(75.0)

    def test_dirty_eviction_adds_975_total(self):
        # Sec. 5.3: "975 us for dirty cache block writing back".
        model = LatencyModel()
        stats = CacheStats(
            misses=1, fills=1, evictions=1, dirty_evictions=1
        )
        assert model.average_access_time_us(stats) == pytest.approx(975.0)

    def test_bypassed_read_pays_read_only(self):
        model = LatencyModel()
        stats = CacheStats(misses=1, bypasses=1)
        assert model.average_access_time_us(stats) == pytest.approx(75.0)

    def test_bypassed_write_pays_write(self):
        model = LatencyModel()
        stats = CacheStats(
            misses=1, bypasses=1, bypassed_writes=1, write_misses=1
        )
        assert model.average_access_time_us(stats) == pytest.approx(900.0)

    def test_mixed_example(self):
        # 90 hits, 10 misses of which 2 dirty evictions.
        model = LatencyModel()
        stats = CacheStats(
            hits=90, misses=10, fills=10, evictions=5, dirty_evictions=2
        )
        expected = (90 * 1.0 + 10 * 75.0 + 2 * 900.0) / 100
        assert model.average_access_time_us(stats) == pytest.approx(
            expected
        )

    def test_overlap_hides_policy_latency(self):
        overlapped = LatencyModel(overlapped=True)
        sequential = LatencyModel(overlapped=False)
        stats = CacheStats(hits=0, misses=10, fills=10)
        gap = sequential.average_access_time_us(
            stats
        ) - overlapped.average_access_time_us(stats)
        assert gap == pytest.approx(3.0)  # 3 us per miss

    def test_different_device(self):
        model = LatencyModel(ssd=get_ssd_spec("optane"))
        stats = CacheStats(misses=1, fills=1)
        assert model.average_access_time_us(stats) == pytest.approx(10.0)


class TestBreakdown:
    def test_components_sum_to_amat(self):
        model = LatencyModel()
        stats = CacheStats(
            hits=80,
            misses=20,
            bypasses=5,
            bypassed_writes=2,
            fills=15,
            evictions=10,
            dirty_evictions=4,
            write_misses=6,
        )
        breakdown = model.breakdown_us(stats)
        assert sum(breakdown.values()) == pytest.approx(
            model.average_access_time_us(stats)
        )

    def test_empty_breakdown(self):
        assert LatencyModel().breakdown_us(CacheStats()) == {}

    def test_policy_component_only_when_sequential(self):
        stats = CacheStats(hits=1, misses=1, fills=1)
        assert "policy" not in LatencyModel().breakdown_us(stats)
        assert "policy" in LatencyModel(overlapped=False).breakdown_us(
            stats
        )


class TestReductionPercent:
    def test_matches_paper_arithmetic(self):
        # Table 1 parsec row: 3.92 -> 3.29 us is a 16.07% reduction
        # (the paper rounds to 16.23 from unrounded values).
        assert reduction_percent(3.92, 3.29) == pytest.approx(
            16.07, abs=0.01
        )

    def test_no_change(self):
        assert reduction_percent(5.0, 5.0) == 0.0

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            reduction_percent(0.0, 1.0)

"""Tests for the SSD latency emulator."""

import numpy as np
import pytest

from repro.hardware.ssd import (
    SSD_CATALOG,
    SsdLatencyEmulator,
    SsdSpec,
    get_ssd_spec,
)


class TestSsdSpec:
    def test_paper_tlc_target(self):
        spec = get_ssd_spec("tlc")
        assert spec.read_latency_us == 75.0
        assert spec.write_latency_us == 900.0

    def test_ns_conversion(self):
        spec = SsdSpec("x", 75.0, 900.0)
        assert spec.read_latency_ns == 75_000
        assert spec.write_latency_ns == 900_000

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            SsdSpec("bad", 0.0, 1.0)

    def test_unknown_profile(self):
        with pytest.raises(ValueError, match="unknown SSD"):
            get_ssd_spec("floppy")

    def test_catalog_ordering(self):
        # Denser cells are slower: slc < mlc < tlc < qlc on both axes.
        order = ["slc", "mlc", "tlc", "qlc"]
        reads = [SSD_CATALOG[n].read_latency_us for n in order]
        writes = [SSD_CATALOG[n].write_latency_us for n in order]
        assert reads == sorted(reads)
        assert writes == sorted(writes)


class TestEmulator:
    def test_deterministic_without_jitter(self):
        emulator = SsdLatencyEmulator()
        assert emulator.read_latency_ns() == 75_000
        assert emulator.write_latency_ns() == 900_000
        assert emulator.access_latency_ns(False) == 75_000
        assert emulator.access_latency_ns(True) == 900_000

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            SsdLatencyEmulator(jitter=0.1)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            SsdLatencyEmulator(jitter=-0.1, rng=np.random.default_rng(0))

    def test_jitter_mean_preserved(self):
        emulator = SsdLatencyEmulator(
            jitter=0.3, rng=np.random.default_rng(0)
        )
        samples = np.array(
            [emulator.read_latency_ns() for _ in range(20_000)]
        )
        assert samples.mean() == pytest.approx(75_000, rel=0.02)
        assert samples.std() > 0

    def test_jitter_latency_positive(self):
        emulator = SsdLatencyEmulator(
            jitter=2.0, rng=np.random.default_rng(1)
        )
        for _ in range(100):
            assert emulator.read_latency_ns() >= 1

"""Disabled-telemetry parity: no bundle means the pre-telemetry bits.

Every instrumented layer gates its hooks on ``telemetry is not
None``; these tests pin the contract that a run with telemetry
disabled (omitted, ``None``, or ``TelemetryConfig(enabled=False)``)
is byte-identical -- counters, summaries, payload keys -- to a run
constructed without any telemetry argument at all, and that an
*enabled* bundle observes without perturbing the results.
"""

import json

import pytest

from repro.chaos.scenarios import (
    run_fabric_scenario,
    run_serving_scenario,
    scenario_chaos,
)
from repro.core.config import (
    FabricTopology,
    ServingConfig,
    TelemetryConfig,
)
from repro.cxl.fabric import CxlFabric
from repro.obs import Telemetry
from repro.serving import IcgmmCacheService

#: The three spellings of "telemetry off" (``from_config`` maps the
#: disabled config to None before it reaches any constructor).
DISABLED = {
    "omitted": "omitted",
    "none": None,
    "disabled-config": Telemetry.from_config(
        TelemetryConfig(enabled=False, seed=9)
    ),
}


def _serving_config():
    return ServingConfig(
        chunk_requests=2_000,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=True,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )


def _serve(config, engine, pages, writes, telemetry):
    kwargs = (
        {} if telemetry == "omitted" else {"telemetry": telemetry}
    )
    service = IcgmmCacheService(
        engine, config=config, serving=_serving_config(), **kwargs
    )
    try:
        service.ingest(pages, writes)
        return service.summary()
    finally:
        service.close()


def _stream_fabric(config, pages, writes, telemetry):
    kwargs = (
        {} if telemetry == "omitted" else {"telemetry": telemetry}
    )
    fabric = CxlFabric(
        FabricTopology(n_devices=4), config=config, **kwargs
    )
    try:
        fabric.bind("lru", 0.0)
        for start in range(0, pages.shape[0], 2_000):
            fabric.ingest(
                pages[start : start + 2_000],
                writes[start : start + 2_000],
            )
        return fabric.results().as_dict()
    finally:
        fabric.close()


class TestServingParity:
    @pytest.mark.parametrize("spelling", list(DISABLED))
    def test_summary_is_byte_identical(self, obs_workload, spelling):
        config, engine, pages, writes = obs_workload
        reference = _serve(config, engine, pages, writes, "omitted")
        candidate = _serve(
            config, engine, pages, writes, DISABLED[spelling]
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_enabled_telemetry_does_not_perturb_results(
        self, obs_workload
    ):
        config, engine, pages, writes = obs_workload
        reference = _serve(config, engine, pages, writes, "omitted")
        telemetry = Telemetry.from_config(
            TelemetryConfig(enabled=True, seed=0)
        )
        observed = _serve(config, engine, pages, writes, telemetry)
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )
        assert len(telemetry.registry) > 0


class TestFabricParity:
    @pytest.mark.parametrize("spelling", list(DISABLED))
    def test_streamed_results_are_byte_identical(
        self, obs_workload, spelling
    ):
        config, _, pages, writes = obs_workload
        reference = _stream_fabric(config, pages, writes, "omitted")
        candidate = _stream_fabric(
            config, pages, writes, DISABLED[spelling]
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_enabled_telemetry_does_not_perturb_results(
        self, obs_workload
    ):
        config, _, pages, writes = obs_workload
        reference = _stream_fabric(config, pages, writes, "omitted")
        telemetry = Telemetry.from_config(
            TelemetryConfig(enabled=True, seed=0)
        )
        observed = _stream_fabric(config, pages, writes, telemetry)
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )


class TestScenarioParity:
    """The chaos scenario runners accept telemetry without changing
    their scorecards -- faulted or fault-free."""

    @pytest.mark.parametrize("faulted", [False, True])
    def test_fabric_scenario_rows_unchanged(
        self, obs_workload, faulted
    ):
        config, _, pages, writes = obs_workload
        chaos = (
            scenario_chaos("device_failure", seed=0, horizon_chunks=4)
            if faulted
            else None
        )
        reference = run_fabric_scenario(
            chaos, pages, writes, config=config, chunk_requests=2_000
        )
        observed = run_fabric_scenario(
            chaos,
            pages,
            writes,
            config=config,
            chunk_requests=2_000,
            telemetry=Telemetry.from_config(
                TelemetryConfig(enabled=True, seed=0)
            ),
        )
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_serving_scenario_rows_unchanged(self, obs_workload):
        config, engine, pages, writes = obs_workload
        chaos = scenario_chaos(
            "shard_stall", seed=0, horizon_chunks=4
        )
        kwargs = {"config": config, "serving": _serving_config()}
        reference = run_serving_scenario(
            chaos, engine, pages, writes, **kwargs
        )
        observed = run_serving_scenario(
            chaos,
            engine,
            pages,
            writes,
            telemetry=Telemetry.from_config(
                TelemetryConfig(enabled=True, seed=0)
            ),
            **kwargs,
        )
        assert json.dumps(observed, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

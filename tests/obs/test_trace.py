"""Unit tests for the logical-clock tracer."""

from repro.obs.trace import Span, Tracer, span_id


class TestSpanIds:
    def test_ids_are_pure_functions_of_inputs(self):
        assert span_id(7, "fabric", "chunk", 3) == span_id(
            7, "fabric", "chunk", 3
        )
        assert span_id(7, "fabric", "chunk", 3) != span_id(
            8, "fabric", "chunk", 3
        )
        assert span_id(7, "fabric", "chunk", 3) != span_id(
            7, "fabric", "chunk", 4
        )
        assert len(span_id(0, "a", "b", 1)) == 16

    def test_two_tracers_same_seed_agree(self):
        def record(tracer):
            with tracer.span("serving", "chunk", index=0):
                tracer.instant("serving", "shard_round", shard=1)
            return tracer.as_dicts()

        assert record(Tracer(seed=5)) == record(Tracer(seed=5))
        assert record(Tracer(seed=5)) != record(Tracer(seed=6))


class TestClockAndNesting:
    def test_clock_ticks_on_begin_and_end(self):
        tracer = Tracer()
        span = tracer.begin("pipeline", "prepare")
        assert span.start == 1
        tracer.end(span)
        assert span.end == 2
        assert tracer.clock == 2

    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("fabric", "chunk") as parent:
            child = tracer.instant("fabric", "device_round", device=0)
        assert child.parent_id == parent.id
        assert parent.parent_id is None
        assert child.start > parent.start
        assert parent.end > child.end

    def test_out_of_order_end_unwinds_stack(self):
        tracer = Tracer()
        outer = tracer.begin("a", "outer")
        inner = tracer.begin("a", "inner")
        tracer.end(outer)  # closes outer while inner is still open
        follow = tracer.begin("a", "next")
        # outer was removed from the stack, so the next span parents
        # under the still-open inner span.
        assert follow.parent_id == inner.id

    def test_end_attrs_merge(self):
        tracer = Tracer()
        span = tracer.begin("serving", "chunk", index=4)
        tracer.end(span, accesses=100)
        assert span.attrs == {"index": 4, "accesses": 100}

    def test_as_dict_sorts_attrs(self):
        span = Span(
            id="x", parent_id=None, component="c", name="n",
            start=1, end=2, attrs={"z": 1, "a": 2},
        )
        assert list(span.as_dict()["attrs"]) == ["a", "z"]


class TestCap:
    def test_cap_drops_and_counts(self):
        tracer = Tracer(max_spans=2)
        kept_a = tracer.begin("c", "one")
        kept_b = tracer.begin("c", "two")
        dropped = tracer.begin("c", "three")
        assert dropped is None
        assert tracer.dropped == 1
        tracer.end(dropped)  # no-op, must not raise
        tracer.end(kept_b)
        tracer.end(kept_a)
        assert len(tracer) == 2

    def test_capped_trace_is_still_deterministic(self):
        def record():
            tracer = Tracer(seed=3, max_spans=3)
            for index in range(6):
                tracer.instant("c", "tick", index=index)
            return tracer.as_dicts(), tracer.dropped

        assert record() == record()

"""Exporter tests: snapshot digest, Prometheus text, Chrome trace.

Includes the chaos-bridge satellite: fault windows recorded on a
``RollingMetrics`` timeline during a real chaos scenario must render
as duration slices in the trace-event export.
"""

import json

import pytest

from repro.chaos.scenarios import run_fabric_scenario, scenario_chaos
from repro.core.config import TelemetryConfig
from repro.obs import Telemetry
from repro.obs.export import (
    EVENT_PAIRS,
    SNAPSHOT_SCHEMA,
    build_snapshot,
    canonical_json,
    chrome_trace,
    digest_payload,
    prometheus_text,
    snapshot_json,
)


def _families(**values):
    return [
        {
            "name": name,
            "type": "counter",
            "help": "",
            "deterministic": deterministic,
            "samples": [{"labels": {}, "value": value}],
        }
        for name, (value, deterministic) in values.items()
    ]


class TestSnapshot:
    def test_schema_and_digest_fields(self):
        snapshot = build_snapshot([], [], [])
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert len(snapshot["digest"]) == 64

    def test_digest_ignores_non_deterministic_metrics(self):
        base = _families(
            chunks_total=(4.0, True), wall_seconds=(1.25, False)
        )
        moved = _families(
            chunks_total=(4.0, True), wall_seconds=(9.75, False)
        )
        assert (
            build_snapshot(base, [], [])["digest"]
            == build_snapshot(moved, [], [])["digest"]
        )

    def test_digest_covers_deterministic_metrics_spans_events(self):
        base = build_snapshot(
            _families(chunks_total=(4.0, True)), [], []
        )
        bumped = build_snapshot(
            _families(chunks_total=(5.0, True)), [], []
        )
        assert base["digest"] != bumped["digest"]
        spanned = build_snapshot(
            _families(chunks_total=(4.0, True)),
            [{"id": "a", "parent_id": None, "component": "c",
              "name": "n", "start": 1, "end": 2, "attrs": {}}],
            [],
        )
        assert spanned["digest"] != base["digest"]

    def test_snapshot_json_is_stable_and_parseable(self):
        snapshot = build_snapshot(
            _families(chunks_total=(4.0, True)), [], [],
            extra={"command": "run"},
        )
        text = snapshot_json(snapshot)
        assert text.endswith("\n")
        assert json.loads(text) == snapshot

    def test_canonical_json_digest_convention(self):
        payload = {"b": 1, "a": [1, 2]}
        assert canonical_json(payload) == '{"a":[1,2],"b":1}'
        assert len(digest_payload(payload)) == 64


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = prometheus_text(
            [
                {
                    "name": "serving_chunks_total",
                    "type": "counter",
                    "help": "Chunks processed.",
                    "deterministic": True,
                    "samples": [
                        {"labels": {"scope": "shard"}, "value": 3.0}
                    ],
                }
            ]
        )
        assert "# HELP serving_chunks_total Chunks processed." in text
        assert "# TYPE serving_chunks_total counter" in text
        assert 'serving_chunks_total{scope="shard"} 3' in text

    def test_histogram_buckets_are_cumulative(self):
        text = prometheus_text(
            [
                {
                    "name": "chunk_miss_ratio",
                    "type": "histogram",
                    "help": "",
                    "deterministic": True,
                    "samples": [
                        {
                            "labels": {},
                            "buckets": [0.5, 1.0],
                            "counts": [2, 1, 1],
                            "sum": 2.25,
                            "count": 4,
                        }
                    ],
                }
            ]
        )
        assert 'chunk_miss_ratio_bucket{le="0.5"} 2' in text
        assert 'chunk_miss_ratio_bucket{le="1"} 3' in text
        assert 'chunk_miss_ratio_bucket{le="+Inf"} 4' in text
        assert "chunk_miss_ratio_sum 2.25" in text
        assert "chunk_miss_ratio_count 4" in text

    def test_label_values_are_escaped(self):
        text = prometheus_text(
            [
                {
                    "name": "rolling_events_count",
                    "type": "gauge",
                    "help": "",
                    "deterministic": True,
                    "samples": [
                        {
                            "labels": {"key": 'sh"ard\n'},
                            "value": 1.0,
                        }
                    ],
                }
            ]
        )
        assert '\\"' in text
        assert "\\n" in text


def _event(kind, key, chunk, **info):
    return {
        "scope": "test",
        "key": key,
        "kind": kind,
        "chunk_index": chunk,
        "info": info,
    }


class TestChromeTrace:
    def test_spans_render_as_complete_events(self):
        trace = chrome_trace(
            [
                {
                    "id": "abc", "parent_id": None,
                    "component": "fabric", "name": "chunk",
                    "start": 3, "end": 7, "attrs": {"index": 0},
                }
            ],
            [],
        )
        slices = [
            e for e in trace["traceEvents"] if e["ph"] == "X"
        ]
        assert len(slices) == 1
        assert slices[0]["name"] == "fabric.chunk"
        assert slices[0]["ts"] == 3
        assert slices[0]["dur"] == 4

    @pytest.mark.parametrize(
        "down,up", sorted(EVENT_PAIRS.items())
    )
    def test_paired_events_become_windows(self, down, up):
        trace = chrome_trace(
            [],
            [
                _event(down, "device:1", 4, reason="injected"),
                _event(up, "device:1", 9),
            ],
        )
        windows = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 1
        ]
        assert len(windows) == 1
        assert windows[0]["ts"] == 4
        assert windows[0]["dur"] == 5
        assert windows[0]["args"]["open"] == {"reason": "injected"}

    def test_unpaired_kinds_are_instants(self):
        trace = chrome_trace(
            [], [_event("refresh-failed", "engine", 6, build=2)]
        )
        instants = [
            e for e in trace["traceEvents"] if e["ph"] == "i"
        ]
        assert len(instants) == 1
        assert instants[0]["ts"] == 6

    def test_unclosed_window_surfaces_as_instant(self):
        trace = chrome_trace(
            [], [_event("device-down", "device:0", 3)]
        )
        names = [e["name"] for e in trace["traceEvents"]]
        assert "device-down:device:0 (unclosed)" in names

    def test_windows_pair_per_key(self):
        trace = chrome_trace(
            [],
            [
                _event("device-down", "device:0", 2),
                _event("device-down", "device:1", 3),
                _event("device-restored", "device:0", 5),
                _event("device-restored", "device:1", 7),
            ],
        )
        windows = {
            e["name"]: e["dur"]
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        }
        assert windows["device-down:device:0"] == 3
        assert windows["device-down:device:1"] == 4


class TestChaosScenarioExport:
    """Satellite: chaos fault windows flow through the event bridge
    into the trace export of a real scenario run."""

    @pytest.fixture(scope="class")
    def scenario_snapshot(self, obs_workload):
        config, _, pages, writes = obs_workload
        telemetry = Telemetry.from_config(
            TelemetryConfig(enabled=True, seed=0)
        )
        out = run_fabric_scenario(
            scenario_chaos("device_failure", seed=0, horizon_chunks=6),
            pages,
            writes,
            config=config,
            chunk_requests=2_000,
            telemetry=telemetry,
        )
        return out, telemetry.snapshot()

    def test_fault_events_reach_the_snapshot(self, scenario_snapshot):
        out, snapshot = scenario_snapshot
        assert out["timeline"], "scenario must fire at least one fault"
        kinds = {event["kind"] for event in snapshot["events"]}
        assert "device-down" in kinds

    def test_fault_windows_render_as_slices(self, scenario_snapshot):
        _, snapshot = scenario_snapshot
        trace = chrome_trace(snapshot["spans"], snapshot["events"])
        windows = [
            e
            for e in trace["traceEvents"]
            if e["ph"] == "X"
            and e["tid"] == 1
            and e["name"].startswith("device-down")
        ]
        assert windows, "device outage must render as a slice"

    def test_chunk_spans_bracket_device_rounds(self, scenario_snapshot):
        _, snapshot = scenario_snapshot
        chunks = [
            s
            for s in snapshot["spans"]
            if s["component"] == "fabric" and s["name"] == "chunk"
        ]
        rounds = [
            s
            for s in snapshot["spans"]
            if s["name"] == "device_round"
        ]
        assert chunks and rounds
        chunk_ids = {s["id"] for s in chunks}
        assert all(r["parent_id"] in chunk_ids for r in rounds)

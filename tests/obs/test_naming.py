"""Metric-name lint: every family obeys snake_case + unit suffix.

Two layers of enforcement: a static sweep over the instrument
registrations in the source tree (catches names on paths no test
exercises), and a dynamic check over the registries of fully wired
fabric and serving runs (catches names built at runtime).
"""

import pathlib
import re

from repro.core.config import (
    FabricTopology,
    ServingConfig,
    TelemetryConfig,
)
from repro.cxl.fabric import CxlFabric
from repro.obs import Telemetry
from repro.obs.registry import validate_metric_name
from repro.serving import IcgmmCacheService

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"

#: Quoted first argument of a counter/gauge/histogram registration.
_REGISTRATION = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*\n?\s*\"([^\"]+)\""
)


def test_source_registrations_pass_the_lint():
    found = set()
    for path in sorted(SRC.rglob("*.py")):
        found.update(_REGISTRATION.findall(path.read_text()))
    assert found, "static sweep must discover registrations"
    for name in sorted(found):
        validate_metric_name(name)


def test_fabric_registry_names_pass_the_lint(obs_workload):
    config, _, pages, writes = obs_workload
    telemetry = Telemetry.from_config(
        TelemetryConfig(enabled=True, seed=0)
    )
    fabric = CxlFabric(
        FabricTopology(n_devices=2), config=config, telemetry=telemetry
    )
    try:
        fabric.bind("lru", 0.0)
        fabric.ingest(pages[:2_000], writes[:2_000])
        fabric.results()
    finally:
        fabric.close()
    families = telemetry.registry.as_dicts()
    assert families
    for family in families:
        validate_metric_name(family["name"])


def test_serving_registry_names_pass_the_lint(obs_workload):
    config, engine, pages, writes = obs_workload
    telemetry = Telemetry.from_config(
        TelemetryConfig(enabled=True, seed=0)
    )
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=ServingConfig(
            chunk_requests=2_000,
            n_shards=4,
            sharding="hash",
            strategy="gmm-caching-eviction",
        ),
        telemetry=telemetry,
    )
    try:
        service.ingest(pages, writes)
    finally:
        service.close()
    families = telemetry.registry.as_dicts()
    assert families
    for family in families:
        validate_metric_name(family["name"])

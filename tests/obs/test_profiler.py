"""Deterministic stage aggregation under the parallel executor.

The satellite contract: ``ParallelExecutor.replay`` folds each
worker-timed ``simulate.task`` section into the profiler in dispatch
order, so the profiler's section *structure* -- names, call counts,
canonical row order -- is identical at every worker count; only the
wall-clock seconds (non-deterministic by design) may differ.
"""

from repro.core.config import (
    FabricTopology,
    ParallelConfig,
    TelemetryConfig,
)
from repro.core.pipeline import StageProfiler
from repro.cxl.fabric import CxlFabric
from repro.obs import Telemetry


class TestStageProfilerUnit:
    def test_add_accumulates_like_stage(self):
        profiler = StageProfiler()
        profiler.add("simulate.task", 0.25)
        profiler.add("simulate.task", 0.75, calls=2)
        assert profiler.seconds["simulate.task"] == 1.0
        assert profiler.calls["simulate.task"] == 3

    def test_rows_put_canonical_stages_first(self):
        profiler = StageProfiler()
        profiler.add("simulate.task", 0.5)
        profiler.add("simulate", 1.0)
        profiler.add("prepare", 0.25)
        names = [row[0] for row in profiler.rows()]
        assert names == ["prepare", "simulate", "simulate.task"]

    def test_shares_sum_to_one(self):
        profiler = StageProfiler()
        profiler.add("prepare", 1.0)
        profiler.add("simulate", 3.0)
        shares = [row[3] for row in profiler.rows()]
        assert abs(sum(shares) - 1.0) < 1e-12


class TestParallelAggregation:
    def _profile(self, config, pages, writes, workers):
        telemetry = Telemetry.from_config(
            TelemetryConfig(enabled=True, seed=0)
        )
        fabric = CxlFabric(
            FabricTopology(n_devices=4),
            config=config,
            parallel=ParallelConfig(
                workers=workers, backend="thread"
            ),
            telemetry=telemetry,
        )
        try:
            fabric.bind("lru", 0.0)
            for start in range(0, pages.shape[0], 2_000):
                fabric.ingest(
                    pages[start : start + 2_000],
                    writes[start : start + 2_000],
                )
            fabric.results()
        finally:
            fabric.close()
        return fabric.pipeline.profiler

    def test_sections_identical_across_worker_counts(
        self, obs_workload
    ):
        config, _, pages, writes = obs_workload
        serial = self._profile(config, pages, writes, workers=1)
        parallel = self._profile(config, pages, writes, workers=4)
        assert serial is not None and parallel is not None
        assert serial.calls == parallel.calls
        assert [r[0] for r in serial.rows()] == [
            r[0] for r in parallel.rows()
        ]

    def test_worker_timed_sections_are_recorded(self, obs_workload):
        config, _, pages, writes = obs_workload
        profiler = self._profile(config, pages, writes, workers=4)
        assert "simulate.task" in profiler.calls
        assert profiler.seconds["simulate.task"] > 0.0

"""Bit-reproducible telemetry: digests survive reruns and workers.

The snapshot digest hashes only families flagged deterministic plus
the logical-clock spans and event timeline, so two runs of the same
seeded workload -- back to back, or at different worker counts --
must produce byte-identical digests.
"""

import pytest

from repro.core.config import (
    FabricTopology,
    ParallelConfig,
    ServingConfig,
    TelemetryConfig,
)
from repro.cxl.fabric import CxlFabric
from repro.obs import Telemetry
from repro.serving import IcgmmCacheService


def _telemetry():
    return Telemetry.from_config(TelemetryConfig(enabled=True, seed=0))


def _fabric_snapshot(config, pages, writes, workers):
    telemetry = _telemetry()
    fabric = CxlFabric(
        FabricTopology(n_devices=4),
        config=config,
        parallel=ParallelConfig(workers=workers, backend="thread"),
        telemetry=telemetry,
    )
    try:
        fabric.bind("lru", 0.0)
        for start in range(0, pages.shape[0], 2_000):
            fabric.ingest(
                pages[start : start + 2_000],
                writes[start : start + 2_000],
            )
        fabric.results()
    finally:
        fabric.close()
    return telemetry.snapshot()


def _serving_snapshot(config, engine, pages, writes, workers):
    telemetry = _telemetry()
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=ServingConfig(
            chunk_requests=2_000,
            n_shards=4,
            sharding="hash",
            strategy="gmm-caching-eviction",
            parallel=ParallelConfig(workers=workers, backend="thread"),
        ),
        telemetry=telemetry,
    )
    try:
        service.ingest(pages, writes)
        service.summary()
    finally:
        service.close()
    return telemetry.snapshot()


class TestFabricDigests:
    def test_repeated_runs_share_a_digest(self, obs_workload):
        config, _, pages, writes = obs_workload
        first = _fabric_snapshot(config, pages, writes, workers=1)
        second = _fabric_snapshot(config, pages, writes, workers=1)
        assert first["digest"] == second["digest"]

    def test_worker_count_does_not_leak_into_digest(
        self, obs_workload
    ):
        config, _, pages, writes = obs_workload
        serial = _fabric_snapshot(config, pages, writes, workers=1)
        parallel = _fabric_snapshot(config, pages, writes, workers=4)
        assert serial["digest"] == parallel["digest"]
        # The wall-clock families still differ between runs but are
        # flagged non-deterministic, so they sit outside the digest.
        nondet = {
            f["name"]
            for f in serial["metrics"]
            if not f["deterministic"]
        }
        assert "executor_workers_count" in nondet


class TestServingDigests:
    def test_repeated_runs_share_a_digest(self, obs_workload):
        config, engine, pages, writes = obs_workload
        first = _serving_snapshot(
            config, engine, pages, writes, workers=1
        )
        second = _serving_snapshot(
            config, engine, pages, writes, workers=1
        )
        assert first["digest"] == second["digest"]

    def test_worker_count_does_not_leak_into_digest(
        self, obs_workload
    ):
        config, engine, pages, writes = obs_workload
        serial = _serving_snapshot(
            config, engine, pages, writes, workers=1
        )
        parallel = _serving_snapshot(
            config, engine, pages, writes, workers=4
        )
        assert serial["digest"] == parallel["digest"]

    def test_span_ids_are_stable_across_runs(self, obs_workload):
        config, engine, pages, writes = obs_workload
        first = _serving_snapshot(
            config, engine, pages, writes, workers=1
        )
        second = _serving_snapshot(
            config, engine, pages, writes, workers=1
        )
        assert [s["id"] for s in first["spans"]] == [
            s["id"] for s in second["spans"]
        ]
        assert first["spans"], "serving run must record chunk spans"


class TestSeedSeparation:
    def test_tracer_seed_rewrites_span_ids_only(self, obs_workload):
        """Different telemetry seeds relabel spans (and therefore the
        digest) without touching the metric values themselves."""
        config, _, pages, writes = obs_workload

        def snap(seed):
            telemetry = Telemetry.from_config(
                TelemetryConfig(enabled=True, seed=seed)
            )
            fabric = CxlFabric(
                FabricTopology(n_devices=2),
                config=config,
                telemetry=telemetry,
            )
            try:
                fabric.bind("lru", 0.0)
                fabric.ingest(pages[:2_000], writes[:2_000])
                fabric.results()
            finally:
                fabric.close()
            return telemetry.snapshot()

        a, b = snap(1), snap(2)
        assert a["digest"] != b["digest"]
        det = lambda snapshot: [
            f for f in snapshot["metrics"] if f["deterministic"]
        ]
        assert det(a) == det(b)

"""Unit tests for the metrics registry primitives."""

import pytest

from repro.obs.registry import (
    LATENCY_EDGES_US,
    RATIO_EDGES,
    MetricsRegistry,
    exponential_edges,
    validate_metric_name,
)


class TestNaming:
    @pytest.mark.parametrize(
        "name",
        [
            "serving_chunks_total",
            "rolling_miss_ratio",
            "stage_wall_seconds",
            "rolling_latency_us",
            "device_time_ns_total",
            "build_info",
        ],
    )
    def test_accepts_convention(self, name):
        validate_metric_name(name)

    @pytest.mark.parametrize(
        "name",
        [
            "ServingChunks",  # not snake_case
            "serving__chunks_total",  # double underscore
            "serving_misses",  # no unit suffix
            "serving_latency_ms",  # unlisted unit
            "_chunks_total",  # leading underscore
            "chunks_total_",  # trailing underscore
        ],
    )
    def test_rejects_violations(self, name):
        with pytest.raises(ValueError):
            validate_metric_name(name)

    def test_registration_enforces_convention(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("BadName")
        with pytest.raises(ValueError):
            registry.gauge("missing_suffix")


class TestEdges:
    def test_exponential_edges_are_pure(self):
        assert exponential_edges(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)
        assert exponential_edges(1.0, 2.0, 4) == exponential_edges(
            1.0, 2.0, 4
        )

    def test_shared_edge_sets_cover_their_domains(self):
        assert RATIO_EDGES[-1] == 1.0
        assert LATENCY_EDGES_US[-1] == 2048.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"start": 0.0, "factor": 2.0, "count": 4},
            {"start": 1.0, "factor": 1.0, "count": 4},
            {"start": 1.0, "factor": 2.0, "count": 0},
        ],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            exponential_edges(**kwargs)


class TestInstruments:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        chunks = registry.counter("chunks_total")
        chunks.inc()
        chunks.inc(3)
        with pytest.raises(ValueError):
            chunks.inc(-1)
        assert registry.as_dicts()[0]["samples"][0]["value"] == 4.0

    def test_labeled_children_are_created_once(self):
        registry = MetricsRegistry()
        family = registry.gauge("shard_miss_ratio", labels=("shard",))
        child = family.labels(shard=0)
        child.set(0.25)
        assert family.labels(shard=0) is child
        assert family.labels(shard=1) is not child

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        family = registry.gauge("shard_miss_ratio", labels=("shard",))
        with pytest.raises(ValueError):
            family.labels(device=0)
        with pytest.raises(ValueError):
            family.inc()  # labeled family has no implicit child

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "latency_us", edges=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        sample = registry.as_dicts()[0]["samples"][0]
        # 0.5 and 1.0 land in the first (<=1.0) bucket, 3.0 in the
        # <=4.0 bucket, 100.0 in the overflow bucket.
        assert sample["counts"] == [2, 0, 1, 1]
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(104.5)

    def test_samples_sorted_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter(
            "rolling_accesses_total", labels=("scope", "key")
        )
        family.labels(scope="shard", key="b").inc()
        family.labels(scope="shard", key="a").inc()
        samples = registry.as_dicts()[0]["samples"]
        assert [s["labels"]["key"] for s in samples] == ["a", "b"]


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("chunks_total", labels=("scope",))
        again = registry.counter("chunks_total", labels=("scope",))
        assert first is again
        assert len(registry) == 1

    def test_conflicting_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("chunks_total")
        with pytest.raises(ValueError):
            registry.gauge("chunks_total")
        with pytest.raises(ValueError):
            registry.counter("chunks_total", labels=("scope",))

    def test_histogram_edge_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("latency_us", edges=(1.0, 2.0))
        registry.histogram("latency_us", edges=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("latency_us", edges=(1.0, 4.0))

    def test_collectors_run_at_export_and_are_idempotent(self):
        registry = MetricsRegistry()
        state = {"chunks": 5}
        gauge = registry.gauge("pending_chunks")
        registry.register_collector(
            lambda: gauge.set(state["chunks"])
        )
        assert registry.as_dicts()[0]["samples"][0]["value"] == 5.0
        state["chunks"] = 7
        assert registry.as_dicts()[0]["samples"][0]["value"] == 7.0
        assert registry.as_dicts()[0]["samples"][0]["value"] == 7.0

    def test_families_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta_total")
        registry.counter("alpha_total")
        names = [f["name"] for f in registry.as_dicts()]
        assert names == sorted(names)

    def test_contains(self):
        registry = MetricsRegistry()
        registry.counter("chunks_total")
        assert "chunks_total" in registry
        assert "other_total" not in registry

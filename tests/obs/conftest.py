"""Shared fixtures for the telemetry suite.

A small phase-shifted stream plus an engine trained on its leading
slice -- the same shape as the chaos suite's workload so refresh and
fault channels have something to do, but sized for speed.
"""

import numpy as np
import pytest

from repro.cache.setassoc import CacheGeometry
from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.core.engine import GmmPolicyEngine
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler


def build_drift_stream(n_phase: int, seed: int = 7):
    """Two-phase stream whose hot set moves at the midpoint."""
    rng = np.random.default_rng(seed)
    hot = 700
    stable = ZipfSampler(
        base_page=0, n_pages=hot, alpha=1.2, write_fraction=0.3
    )
    moved = ZipfSampler(
        base_page=4 * hot, n_pages=hot, alpha=1.2, write_fraction=0.3
    )
    pages_a, writes_a = stable.sample(n_phase, rng)
    pages_b, writes_b = moved.sample(n_phase, rng)
    return (
        np.concatenate([pages_a, pages_b]),
        np.concatenate([writes_a, writes_b]),
    )


@pytest.fixture(scope="package")
def obs_workload():
    """(config, engine, pages, is_write) shared by the obs suite."""
    pages, writes = build_drift_stream(5_000)
    geometry = CacheGeometry(
        capacity_bytes=32 * 8 * 4096,
        block_bytes=4096,
        associativity=8,
    )
    gmm = GmmEngineConfig(
        n_components=5, max_iter=10, max_train_samples=4_000
    )
    config = IcgmmConfig(geometry=geometry, gmm=gmm)
    n_train = 4_000
    timestamps = transform_timestamps(n_train, mode="prose")
    features = np.column_stack(
        [
            pages[:n_train].astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    engine = GmmPolicyEngine.train(
        features, gmm, np.random.default_rng(7)
    )
    return config, engine, pages, writes

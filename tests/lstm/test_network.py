"""Tests for the stacked LSTM network."""

import numpy as np
import pytest

from repro.lstm.network import LstmNetwork


def _network(hidden=4, layers=2, seed=0):
    return LstmNetwork(
        input_size=2,
        hidden_size=hidden,
        n_layers=layers,
        rng=np.random.default_rng(seed),
    )


class TestForward:
    def test_prediction_shape(self, rng):
        network = _network()
        sequences = rng.standard_normal((5, 7, 2))
        predictions = network.predict(sequences)
        assert predictions.shape == (5,)

    def test_rejects_bad_shape(self, rng):
        network = _network()
        with pytest.raises(ValueError, match=r"\(B, T, 2\)"):
            network.predict(rng.standard_normal((5, 7, 3)))

    def test_deterministic(self, rng):
        network = _network()
        sequences = rng.standard_normal((3, 5, 2))
        np.testing.assert_array_equal(
            network.predict(sequences), network.predict(sequences)
        )

    def test_paper_baseline_dimensions(self):
        network = LstmNetwork(
            input_size=2,
            hidden_size=128,
            n_layers=3,
            rng=np.random.default_rng(0),
        )
        # Layer 1: 4*128*(2+128)+512; layers 2-3: 4*128*(128+128)+512.
        expected_cells = (
            4 * 128 * (2 + 128)
            + 512
            + 2 * (4 * 128 * (128 + 128) + 512)
        )
        assert network.parameter_count == expected_cells + 128 + 1

    def test_mac_count_dwarfs_gmm(self):
        # Table 2's root cause: per-decision MACs. The GMM with K=256
        # needs 7K = 1792 multiplies; the LSTM baseline needs ~4 orders
        # of magnitude more.
        network = LstmNetwork(
            input_size=2,
            hidden_size=128,
            n_layers=3,
            rng=np.random.default_rng(0),
        )
        macs = network.multiply_accumulate_ops_per_inference(32)
        assert macs > 10_000 * 1792 / 10  # > 1000x the GMM's cost
        assert macs == 32 * (
            4 * 128 * (2 + 128) + 2 * 4 * 128 * (128 + 128)
        ) + 128


class TestBackward:
    def test_head_gradient_matches_finite_differences(self, rng):
        network = _network(hidden=3, layers=1, seed=3)
        sequences = rng.standard_normal((2, 4, 2))
        targets = np.array([0.5, -0.2])

        def loss():
            predictions = network.predict(sequences)
            return float(np.mean((predictions - targets) ** 2))

        predictions, caches = network.forward(sequences)
        d_predictions = 2.0 * (predictions - targets) / 2
        grads = network.backward(d_predictions, caches)
        epsilon = 1e-6
        numeric = np.zeros_like(network.w_head)
        for idx in range(network.w_head.size):
            original = network.w_head[idx]
            network.w_head[idx] = original + epsilon
            up = loss()
            network.w_head[idx] = original - epsilon
            down = loss()
            network.w_head[idx] = original
            numeric[idx] = (up - down) / (2 * epsilon)
        np.testing.assert_allclose(
            grads["head_w"], numeric, rtol=1e-4, atol=1e-8
        )

    def test_cell_gradient_matches_finite_differences(self, rng):
        # End-to-end BPTT check through two layers and time.
        network = _network(hidden=3, layers=2, seed=4)
        sequences = rng.standard_normal((2, 3, 2))
        targets = np.array([1.0, 0.0])

        def loss():
            predictions = network.predict(sequences)
            return float(np.mean((predictions - targets) ** 2))

        predictions, caches = network.forward(sequences)
        d_predictions = 2.0 * (predictions - targets) / 2
        grads = network.backward(d_predictions, caches)
        epsilon = 1e-6
        cell = network.cells[0]
        analytic = grads["cells"][0]["w_x"]
        numeric = np.zeros_like(cell.w_x)
        flat = cell.w_x.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for idx in range(min(flat.size, 12)):
            original = flat[idx]
            flat[idx] = original + epsilon
            up = loss()
            flat[idx] = original - epsilon
            down = loss()
            flat[idx] = original
            numeric_flat[idx] = (up - down) / (2 * epsilon)
        np.testing.assert_allclose(
            analytic.reshape(-1)[:12],
            numeric_flat[:12],
            rtol=1e-3,
            atol=1e-7,
        )

"""Tests for sequence windowing, Adam and the BPTT trainer."""

import numpy as np
import pytest

from repro.lstm.network import LstmNetwork
from repro.lstm.training import (
    AdamOptimizer,
    LstmTrainer,
    make_sequences,
)


class TestMakeSequences:
    def test_windowing(self):
        features = np.arange(10, dtype=float).reshape(5, 2)
        targets = np.arange(5, dtype=float)
        sequences, sequence_targets = make_sequences(features, targets, 3)
        assert sequences.shape == (3, 3, 2)
        np.testing.assert_array_equal(sequence_targets, [2.0, 3.0, 4.0])
        np.testing.assert_array_equal(sequences[0], features[0:3])
        np.testing.assert_array_equal(sequences[2], features[2:5])

    def test_full_length_window(self):
        features = np.zeros((4, 2))
        targets = np.arange(4, dtype=float)
        sequences, sequence_targets = make_sequences(features, targets, 4)
        assert sequences.shape == (1, 4, 2)
        assert sequence_targets[0] == 3.0

    def test_rejects_bad_length(self):
        features = np.zeros((4, 2))
        targets = np.zeros(4)
        with pytest.raises(ValueError):
            make_sequences(features, targets, 0)
        with pytest.raises(ValueError):
            make_sequences(features, targets, 5)

    def test_rejects_misaligned_targets(self):
        with pytest.raises(ValueError, match="align"):
            make_sequences(np.zeros((4, 2)), np.zeros(3), 2)


class TestAdam:
    def test_moves_toward_minimum(self):
        # Minimise f(x) = x^2 from x=5.
        param = np.array([5.0])
        optimizer = AdamOptimizer(learning_rate=0.1)
        for _ in range(200):
            grad = 2.0 * param
            optimizer.update([param], [grad])
        assert abs(param[0]) < 0.1

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ValueError):
            AdamOptimizer(learning_rate=0.0)


class TestLstmTrainer:
    def test_loss_decreases_on_learnable_task(self, rng):
        # Target = last feature's first coordinate: learnable by the
        # head alone, so even a tiny LSTM must fit it quickly.
        network = LstmNetwork(
            input_size=2,
            hidden_size=8,
            n_layers=1,
            rng=np.random.default_rng(0),
        )
        features = rng.standard_normal((300, 2))
        targets = features[:, 0]
        sequences, sequence_targets = make_sequences(features, targets, 4)
        trainer = LstmTrainer(network, learning_rate=5e-3)
        history = trainer.fit(
            sequences,
            sequence_targets,
            epochs=12,
            batch_size=32,
            rng=np.random.default_rng(1),
        )
        assert history.losses[-1] < history.losses[0] * 0.5

    def test_gradient_clipping_limits_update(self, rng):
        network = LstmNetwork(
            input_size=2,
            hidden_size=4,
            n_layers=1,
            rng=np.random.default_rng(0),
        )
        # Huge targets produce huge gradients; clipping must keep the
        # parameters finite.
        sequences = rng.standard_normal((8, 4, 2))
        targets = 1e6 * np.ones(8)
        trainer = LstmTrainer(network, clip_norm=1.0)
        trainer.train_batch(sequences, targets)
        for cell in network.cells:
            assert np.all(np.isfinite(cell.w_x))

    def test_rejects_bad_clip(self):
        network = LstmNetwork(
            input_size=2, hidden_size=4, n_layers=1,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="clip_norm"):
            LstmTrainer(network, clip_norm=0.0)

    def test_rejects_bad_fit_args(self, rng):
        network = LstmNetwork(
            input_size=2, hidden_size=4, n_layers=1,
            rng=np.random.default_rng(0),
        )
        trainer = LstmTrainer(network)
        sequences = rng.standard_normal((4, 3, 2))
        targets = np.zeros(4)
        with pytest.raises(ValueError, match="epochs"):
            trainer.fit(sequences, targets, 0, 2, rng)
        with pytest.raises(ValueError, match="batch_size"):
            trainer.fit(sequences, targets, 1, 0, rng)

    def test_history_final_loss(self):
        from repro.lstm.training import TrainingHistory

        history = TrainingHistory()
        assert history.final_loss == float("inf")
        history.losses.append(0.5)
        assert history.final_loss == 0.5

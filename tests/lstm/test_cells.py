"""Tests for the LSTM cell, including numerical gradient checks."""

import numpy as np
import pytest

from repro.lstm.cells import LstmCell


def _cell(input_size=3, hidden_size=4, seed=0):
    return LstmCell(input_size, hidden_size, np.random.default_rng(seed))


class TestForward:
    def test_output_shapes(self, rng):
        cell = _cell()
        x = rng.standard_normal((5, 3))
        h = np.zeros((5, 4))
        c = np.zeros((5, 4))
        h_out, c_out, cache = cell.forward(x, h, c)
        assert h_out.shape == (5, 4)
        assert c_out.shape == (5, 4)
        assert "i" in cache

    def test_hidden_bounded_by_tanh(self, rng):
        cell = _cell()
        x = 100.0 * rng.standard_normal((8, 3))
        h = np.zeros((8, 4))
        c = np.zeros((8, 4))
        h_out, _, _ = cell.forward(x, h, c)
        assert np.all(np.abs(h_out) <= 1.0)

    def test_forget_bias_initialised_to_one(self):
        cell = _cell()
        h = cell.hidden_size
        np.testing.assert_array_equal(cell.bias[h : 2 * h], 1.0)

    def test_parameter_count(self):
        cell = _cell(input_size=3, hidden_size=4)
        # 4H(D + H) weights + 4H biases = 16*7 + 16 = 128.
        assert cell.parameter_count == 128

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            LstmCell(0, 4, np.random.default_rng(0))


class TestBackwardNumerically:
    def test_gradients_match_finite_differences(self, rng):
        # Scalar loss L = sum(h_out); compare analytic and numeric
        # gradients for every parameter tensor.
        cell = _cell(input_size=2, hidden_size=3, seed=1)
        x = rng.standard_normal((4, 2))
        h_prev = 0.1 * rng.standard_normal((4, 3))
        c_prev = 0.1 * rng.standard_normal((4, 3))

        def loss():
            h_out, _, _ = cell.forward(x, h_prev, c_prev)
            return float(np.sum(h_out))

        h_out, _, cache = cell.forward(x, h_prev, c_prev)
        grads = cell.zero_grads()
        d_x, d_h_prev, d_c_prev = cell.backward(
            np.ones_like(h_out), np.zeros((4, 3)), cache, grads
        )
        epsilon = 1e-6
        for name, param in cell.parameters().items():
            flat = param.reshape(-1)
            numeric = np.zeros_like(flat)
            for idx in range(min(flat.size, 24)):
                original = flat[idx]
                flat[idx] = original + epsilon
                up = loss()
                flat[idx] = original - epsilon
                down = loss()
                flat[idx] = original
                numeric[idx] = (up - down) / (2 * epsilon)
            analytic = grads[name].reshape(-1)
            np.testing.assert_allclose(
                analytic[: min(flat.size, 24)],
                numeric[: min(flat.size, 24)],
                rtol=1e-4,
                atol=1e-6,
                err_msg=f"gradient mismatch for {name}",
            )

    def test_input_gradient_matches_finite_differences(self, rng):
        cell = _cell(input_size=2, hidden_size=3, seed=2)
        x = rng.standard_normal((2, 2))
        h_prev = np.zeros((2, 3))
        c_prev = np.zeros((2, 3))
        h_out, _, cache = cell.forward(x, h_prev, c_prev)
        grads = cell.zero_grads()
        d_x, _, _ = cell.backward(
            np.ones_like(h_out), np.zeros((2, 3)), cache, grads
        )
        epsilon = 1e-6
        numeric = np.zeros_like(x)
        for i in range(x.shape[0]):
            for j in range(x.shape[1]):
                original = x[i, j]
                x[i, j] = original + epsilon
                up = float(np.sum(cell.forward(x, h_prev, c_prev)[0]))
                x[i, j] = original - epsilon
                down = float(np.sum(cell.forward(x, h_prev, c_prev)[0]))
                x[i, j] = original
                numeric[i, j] = (up - down) / (2 * epsilon)
        np.testing.assert_allclose(d_x, numeric, rtol=1e-4, atol=1e-7)

"""Executor lifecycle: pools must never outlive their owners.

Every path that constructs a :class:`ParallelExecutor` -- the sweep
grid runner, the training fan-out inside ``StagedPipeline.prepare``,
the fabric and serving CLIs -- must tear its pool down
deterministically (context manager or ``close()``/``shutdown()`` in a
``finally``), including on error paths.  These tests assert the
absence of leaked worker threads by counting live threads with the
executor's name prefix.
"""

import threading

import numpy as np
import pytest

from repro.analysis.sweep import run_grid
from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
)
from repro.core.parallel import ParallelExecutor
from repro.core.pipeline import StagedPipeline

#: Thread-name prefix of every ParallelExecutor thread pool.
_PREFIX = "repro-parallel"


def _live_pool_threads() -> int:
    return sum(
        1
        for thread in threading.enumerate()
        if thread.name.startswith(_PREFIX)
    )


def _square(value):
    return value * value


def _boom(value):
    raise RuntimeError(f"boom {value}")


class TestExecutorShutdown:
    def test_context_manager_tears_pool_down(self):
        baseline = _live_pool_threads()
        with ParallelExecutor(workers=3) as executor:
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
            assert _live_pool_threads() > baseline
        assert _live_pool_threads() == baseline

    def test_shutdown_idempotent(self):
        executor = ParallelExecutor(workers=2)
        executor.map(_square, [1, 2])
        executor.shutdown()
        executor.shutdown()
        assert _live_pool_threads() == 0
        # A retired executor can lazily re-pool and close again.
        assert executor.map(_square, [3, 4]) == [9, 16]
        executor.shutdown()
        assert _live_pool_threads() == 0

    def test_crash_then_reuse_leaks_nothing(self):
        """Budget exhaustion must tear the pool down, not wedge it."""
        from repro.core.parallel import WorkerCrashError

        baseline = _live_pool_threads()
        executor = ParallelExecutor(workers=2, max_retries=1)
        executor.fault_hook = lambda round_, task: 5  # always fatal
        try:
            with pytest.raises(WorkerCrashError):
                executor.map(_square, [1, 2, 3])
            # The failed fan-out shut its own pool down.
            assert _live_pool_threads() == baseline
            # Clearing the hook makes the same executor usable again
            # via lazy re-pooling.
            executor.fault_hook = None
            assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]
        finally:
            executor.shutdown()
        assert _live_pool_threads() == baseline

    def test_real_exception_closes_pool_before_raising(self):
        baseline = _live_pool_threads()
        executor = ParallelExecutor(workers=2)
        try:
            with pytest.raises(RuntimeError, match="boom"):
                executor.map(_boom, [1, 2])
            assert _live_pool_threads() == baseline
        finally:
            executor.shutdown()
        assert _live_pool_threads() == baseline


class TestRunGridLifecycle:
    def test_closes_pool_after_success(self):
        baseline = _live_pool_threads()
        results = run_grid(
            _square,
            [(1,), (2,), (3,)],
            parallel=ParallelConfig(workers=3),
        )
        assert results == [1, 4, 9]
        assert _live_pool_threads() == baseline

    def test_closes_pool_after_failure(self):
        baseline = _live_pool_threads()
        with pytest.raises(RuntimeError, match="boom"):
            run_grid(
                _boom,
                [(1,), (2,)],
                parallel=ParallelConfig(workers=2),
            )
        assert _live_pool_threads() == baseline


class TestTrainingFanOutLifecycle:
    def test_prepare_closes_training_pool(self):
        baseline = _live_pool_threads()
        config = IcgmmConfig(
            gmm=GmmEngineConfig(
                n_components=4,
                max_iter=5,
                n_init=3,
                max_train_samples=2000,
                restart_mode="sequential",  # the mode that fans out
            ),
            trace_length=6000,
            parallel=ParallelConfig(workers=2),
        )
        pipeline = StagedPipeline(config)
        prepared = pipeline.prepare("memtier")
        assert len(prepared) > 0
        assert _live_pool_threads() == baseline

    def test_prepare_parallel_matches_inline(self):
        def build(workers):
            config = IcgmmConfig(
                gmm=GmmEngineConfig(
                    n_components=4,
                    max_iter=5,
                    n_init=3,
                    max_train_samples=2000,
                    restart_mode="sequential",
                ),
                trace_length=6000,
                parallel=ParallelConfig(workers=workers),
            )
            return StagedPipeline(config).prepare("memtier")

        inline = build(1)
        fanned = build(3)
        np.testing.assert_array_equal(inline.scores, fanned.scores)
        assert (
            inline.engine.admission_threshold
            == fanned.engine.admission_threshold
        )


class TestCliLifecycle:
    def test_fabric_command_closes_on_error(self, monkeypatch):
        from repro import cli
        from repro.cxl.fabric import CxlFabric

        closed = []
        original_close = CxlFabric.close

        def tracking_close(self):
            closed.append(True)
            original_close(self)

        def exploding_prepare(self, workload, *args, **kwargs):
            raise RuntimeError("prepare blew up")

        monkeypatch.setattr(CxlFabric, "close", tracking_close)
        monkeypatch.setattr(
            StagedPipeline, "prepare", exploding_prepare
        )
        baseline = _live_pool_threads()
        with pytest.raises(RuntimeError, match="prepare blew up"):
            cli.main(
                [
                    "fabric",
                    "memtier",
                    "--devices",
                    "2",
                    "--workers",
                    "2",
                    "--trace-length",
                    "6000",
                ]
            )
        assert closed, "fabric.close() must run on the error path"
        assert _live_pool_threads() == baseline

"""Tests for the executable LSTM policy engine."""

import numpy as np
import pytest

from repro.core.lstm_engine import (
    LstmEngineConfig,
    LstmPolicyEngine,
    frequency_targets,
)


def _tiny_config(**overrides):
    overrides.setdefault("hidden_size", 8)
    overrides.setdefault("n_layers", 1)
    overrides.setdefault("sequence_length", 4)
    overrides.setdefault("epochs", 2)
    overrides.setdefault("max_train_sequences", 500)
    return LstmEngineConfig(**overrides)


def _stream(rng, n=1200):
    # Hot pages 0-9, cold pages 100-999.
    hot = rng.integers(0, 10, size=n)
    cold = rng.integers(100, 1000, size=n)
    take_hot = rng.random(n) < 0.8
    pages = np.where(take_hot, hot, cold)
    features = np.column_stack(
        [pages.astype(float), np.arange(n) % 64]
    )
    return features, pages


class TestFrequencyTargets:
    def test_hot_pages_get_higher_targets(self):
        pages = np.array([1, 1, 1, 2])
        targets = frequency_targets(pages)
        assert targets[0] > targets[3]
        assert targets[0] == pytest.approx(np.log1p(3))

    def test_aligned_per_request(self):
        pages = np.array([5, 7, 5])
        targets = frequency_targets(pages)
        assert targets[0] == targets[2]


class TestConfig:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LstmEngineConfig(hidden_size=0)
        with pytest.raises(ValueError):
            LstmEngineConfig(epochs=0)


class TestTrainAndScore:
    def test_train_produces_engine(self, rng):
        features, pages = _stream(rng)
        engine = LstmPolicyEngine.train(
            features, pages, _tiny_config(), rng
        )
        assert np.isfinite(engine.final_training_loss)

    def test_score_shape_and_head_padding(self, rng):
        features, pages = _stream(rng)
        engine = LstmPolicyEngine.train(
            features, pages, _tiny_config(), rng
        )
        scores = engine.score(features)
        assert scores.shape == (features.shape[0],)
        # Head (no full window) reuses the first full window's score.
        assert np.all(scores[:3] == scores[3])

    def test_hot_pages_score_above_cold_on_average(self, rng):
        features, pages = _stream(rng, n=2000)
        engine = LstmPolicyEngine.train(
            features, pages, _tiny_config(epochs=4), rng
        )
        scores = engine.score(features)
        hot_mean = scores[pages < 10].mean()
        cold_mean = scores[pages >= 100].mean()
        assert hot_mean > cold_mean

    def test_validation(self, rng):
        config = _tiny_config()
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            LstmPolicyEngine.train(
                np.zeros((10, 3)), np.zeros(10, dtype=int), config, rng
            )
        with pytest.raises(ValueError, match="sequence_length"):
            LstmPolicyEngine.train(
                np.zeros((3, 2)), np.zeros(3, dtype=int), config, rng
            )

    def test_score_rejects_short_stream(self, rng):
        features, pages = _stream(rng)
        engine = LstmPolicyEngine.train(
            features, pages, _tiny_config(), rng
        )
        with pytest.raises(ValueError, match="shorter"):
            engine.score(features[:2])

"""Tests for result containers."""

import pytest

from repro.cache.stats import CacheStats
from repro.core.results import (
    BenchmarkResult,
    StrategyOutcome,
    SuiteResult,
)


def _outcome(strategy, misses, hits=1000, time_us=10.0):
    return StrategyOutcome(
        strategy=strategy,
        stats=CacheStats(hits=hits, misses=misses),
        average_time_us=time_us,
    )


def _benchmark():
    return BenchmarkResult(
        workload="memtier",
        outcomes={
            "lru": _outcome("lru", 100, time_us=10.0),
            "gmm-caching": _outcome("gmm-caching", 90, time_us=9.0),
            "gmm-eviction": _outcome("gmm-eviction", 70, time_us=7.5),
            "gmm-caching-eviction": _outcome(
                "gmm-caching-eviction", 80, time_us=8.0
            ),
        },
    )


class TestStrategyOutcome:
    def test_miss_rate_percent(self):
        outcome = _outcome("lru", misses=100, hits=900)
        assert outcome.miss_rate_percent == pytest.approx(10.0)


class TestBenchmarkResult:
    def test_requires_lru(self):
        with pytest.raises(ValueError, match="LRU baseline"):
            BenchmarkResult(
                workload="x",
                outcomes={"gmm-eviction": _outcome("gmm-eviction", 1)},
            )

    def test_best_gmm_lowest_miss(self):
        assert _benchmark().best_gmm.strategy == "gmm-eviction"

    def test_best_gmm_requires_candidates(self):
        result = BenchmarkResult(
            workload="x", outcomes={"lru": _outcome("lru", 10)}
        )
        with pytest.raises(ValueError, match="no GMM strategy"):
            result.best_gmm

    def test_miss_reduction_points(self):
        result = _benchmark()
        lru = 100 / 1100 * 100
        best = 70 / 1070 * 100
        assert result.miss_reduction_points == pytest.approx(lru - best)

    def test_time_reduction_percent(self):
        assert _benchmark().time_reduction_percent == pytest.approx(
            100 * (10.0 - 7.5) / 10.0
        )


class TestSuiteResult:
    def test_access_and_iteration(self):
        suite = SuiteResult(results={"memtier": _benchmark()})
        assert suite["memtier"].workload == "memtier"
        assert [r.workload for r in suite] == ["memtier"]

    def test_fig6_rows(self):
        suite = SuiteResult(results={"memtier": _benchmark()})
        (row,) = suite.fig6_rows()
        assert row["workload"] == "memtier"
        assert row["best_gmm"] == "gmm-eviction"
        assert row["lru"] == pytest.approx(100 / 1100 * 100)
        assert row["reduction_points"] > 0

    def test_table1_rows(self):
        suite = SuiteResult(results={"memtier": _benchmark()})
        (row,) = suite.table1_rows()
        assert row["lru_us"] == 10.0
        assert row["gmm_us"] == 7.5
        assert row["reduction_percent"] == pytest.approx(25.0)

"""Tests for system configuration."""

import pytest

from repro.cache.setassoc import CacheGeometry
from repro.core.config import (
    SIMULATION_SCALE,
    STRATEGIES,
    GmmEngineConfig,
    IcgmmConfig,
)


class TestGmmEngineConfig:
    def test_defaults_valid(self):
        config = GmmEngineConfig()
        assert config.n_components >= 1
        assert 0 <= config.threshold_quantile < 1

    def test_rejects_bad_components(self):
        with pytest.raises(ValueError, match="n_components"):
            GmmEngineConfig(n_components=0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError, match="threshold_quantile"):
            GmmEngineConfig(threshold_quantile=1.0)

    def test_rejects_too_few_train_samples(self):
        with pytest.raises(ValueError, match="max_train_samples"):
            GmmEngineConfig(n_components=64, max_train_samples=32)


class TestIcgmmConfig:
    def test_default_is_scaled_profile(self):
        config = IcgmmConfig()
        assert config.workload_scale == SIMULATION_SCALE
        # 64 MB / 32 = 2 MB cache.
        assert config.geometry.capacity_bytes == 2 * 1024 * 1024
        assert config.geometry.associativity == 8
        assert config.timestamp_mode == "prose"

    def test_paper_hardware_profile(self):
        config = IcgmmConfig.paper_hardware()
        assert config.workload_scale == 1.0
        assert config.geometry.capacity_bytes == 64 * 1024 * 1024

    def test_paper_hardware_accepts_overrides(self):
        config = IcgmmConfig.paper_hardware(seed=7)
        assert config.seed == 7
        assert config.workload_scale == 1.0

    def test_scaled_ratios_preserved(self):
        # Footprint-to-cache ratio invariance: cache blocks scale by
        # the same factor as the workload regions.
        scaled = IcgmmConfig()
        paper = IcgmmConfig.paper_hardware()
        ratio = (
            paper.geometry.n_blocks / scaled.geometry.n_blocks
        )
        assert ratio == pytest.approx(1.0 / SIMULATION_SCALE)

    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="workload_scale"):
            IcgmmConfig(workload_scale=0.0)
        with pytest.raises(ValueError, match="train_fraction"):
            IcgmmConfig(train_fraction=0.0)
        with pytest.raises(ValueError, match="warmup_fraction"):
            IcgmmConfig(warmup_fraction=1.0)
        with pytest.raises(ValueError, match="trace_length"):
            IcgmmConfig(trace_length=5)

    def test_strategy_tuple(self):
        assert STRATEGIES == (
            "lru",
            "gmm-caching",
            "gmm-eviction",
            "gmm-caching-eviction",
        )

    def test_geometry_is_customisable(self):
        geometry = CacheGeometry(
            capacity_bytes=1024 * 4096, block_bytes=4096, associativity=4
        )
        config = IcgmmConfig(geometry=geometry)
        assert config.geometry.n_blocks == 1024

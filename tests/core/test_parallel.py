"""Unit tests of the multicore execution engine.

Covers the determinism contract (results in task order, first error
in task order), both backends, the shared-memory cache planes of the
process backend, and the :class:`~repro.core.config.ParallelConfig`
wiring.
"""

import numpy as np
import pytest

from repro.cache.policies import LruPolicy
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
)
from repro.cache.simulate_fast import simulate_fast
from repro.core.config import ParallelConfig
from repro.core.parallel import (
    ParallelExecutor,
    ReplayTask,
    SharedCache,
    resolve_workers,
)

GEOMETRY = CacheGeometry(
    capacity_bytes=32 * 4096 * 4, block_bytes=4096, associativity=4
)


def _trace(n=20_000, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, 5_000, n),
        rng.random(n) < 0.3,
        rng.standard_normal(n),
    )


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


def _add(a, b):
    return a + b


class TestConfig:
    def test_defaults_inline(self):
        config = ParallelConfig()
        assert config.workers == 1
        assert config.backend == "thread"

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(workers=-1)
        with pytest.raises(ValueError):
            ParallelConfig(backend="greenlet")

    def test_resolve_workers(self):
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_from_config(self):
        executor = ParallelExecutor.from_config(None)
        assert executor.workers == 1
        executor = ParallelExecutor.from_config(
            ParallelConfig(workers=3, backend="process")
        )
        assert executor.workers == 3
        assert executor.backend == "process"
        assert executor.uses_shared_caches


class TestMap:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_results_in_item_order(self, workers):
        with ParallelExecutor(workers, "thread") as executor:
            assert executor.map(_square, range(10)) == [
                x * x for x in range(10)
            ]

    def test_star_unpacks(self):
        with ParallelExecutor(4, "thread") as executor:
            assert executor.map(
                _add, [(1, 2), (3, 4)], star=True
            ) == [3, 7]

    def test_first_error_in_item_order_propagates(self):
        with ParallelExecutor(4, "thread") as executor:
            with pytest.raises(ValueError, match="boom on 3"):
                executor.map(_boom, [0, 1, 2, 3, 4])

    def test_process_backend_map(self):
        with ParallelExecutor(2, "process") as executor:
            assert executor.map(_square, [2, 5]) == [4, 25]

    def test_process_backend_error_propagates(self):
        with ParallelExecutor(2, "process") as executor:
            with pytest.raises(ValueError, match="boom on 3"):
                executor.map(_boom, [3, 1])


class TestSubmit:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_returns_future_with_result(self, workers):
        with ParallelExecutor(workers, "thread") as executor:
            future = executor.submit(_square, 7)
            assert future.result(timeout=10) == 49

    def test_counts_toward_dispatch_total(self):
        with ParallelExecutor(2, "thread") as executor:
            before = executor.tasks_dispatched
            executor.submit(_square, 2).result(timeout=10)
            executor.submit(_square, 3).result(timeout=10)
            assert executor.tasks_dispatched == before + 2

    def test_exception_surfaces_through_future(self):
        # Unlike map(), submit() has no retry plumbing: the caller
        # harvests the raw exception from the future.
        with ParallelExecutor(2, "thread") as executor:
            future = executor.submit(_boom, 3)
            with pytest.raises(ValueError, match="boom on 3"):
                future.result(timeout=10)


class TestSharedCache:
    def test_behaves_like_fresh_cache(self):
        shared = SharedCache(GEOMETRY)
        plain = SetAssociativeCache(GEOMETRY)
        np.testing.assert_array_equal(shared.cache.tags, plain.tags)
        np.testing.assert_array_equal(shared.cache.meta, plain.meta)
        pages, is_write, scores = _trace()
        a = simulate_fast(
            shared.cache, LruPolicy(), pages, is_write, scores=scores
        )
        b = simulate_fast(
            plain, LruPolicy(), pages, is_write, scores=scores
        )
        assert a == b
        np.testing.assert_array_equal(shared.cache.tags, plain.tags)
        shared.close()

    def test_make_cache_allocation(self):
        thread_exec = ParallelExecutor(4, "thread")
        cache, handle = thread_exec.make_cache(GEOMETRY)
        assert handle is None  # threads share memory natively
        proc_exec = ParallelExecutor(2, "process")
        cache, handle = proc_exec.make_cache(GEOMETRY)
        assert handle is not None
        assert cache is handle.cache
        handle.close()
        thread_exec.shutdown()
        proc_exec.shutdown()

    def test_process_replay_requires_shared(self):
        pages, is_write, scores = _trace(200)
        with ParallelExecutor(2, "process") as executor:
            tasks = [
                ReplayTask(
                    cache=SetAssociativeCache(GEOMETRY),
                    policy=LruPolicy(),
                    pages=pages,
                    is_write=is_write,
                )
                for _ in range(2)
            ]
            with pytest.raises(ValueError, match="SharedCache"):
                executor.replay(tasks)


class TestReplay:
    @pytest.mark.parametrize(
        "workers,backend", [(1, "thread"), (4, "thread"), (2, "process")]
    )
    def test_bit_identical_to_direct_call(self, workers, backend):
        pages, is_write, scores = _trace()
        reference = SetAssociativeCache(GEOMETRY)
        ref_stats = simulate_fast(
            reference, LruPolicy(), pages, is_write, scores=scores
        )
        with ParallelExecutor(workers, backend) as executor:
            caches, handles, tasks = [], [], []
            for _ in range(3):
                cache, handle = executor.make_cache(GEOMETRY)
                caches.append(cache)
                handles.append(handle)
                tasks.append(
                    ReplayTask(
                        cache=cache,
                        policy=LruPolicy(),
                        pages=pages,
                        is_write=is_write,
                        scores=scores,
                        record_outcome=True,
                    )
                )
                tasks[-1].shared = handle
            results = executor.replay(tasks)
            for cache, result in zip(caches, results):
                assert result.stats == ref_stats
                assert result.outcome is not None
                np.testing.assert_array_equal(
                    cache.tags, reference.tags
                )
                np.testing.assert_array_equal(
                    cache.stamp, reference.stamp
                )
            for handle in handles:
                if handle is not None:
                    handle.close()

    def test_crash_inside_process_worker_propagates(self):
        """A task failing inside the spawned worker's replay body
        (not at dispatch) re-raises in the parent."""
        pages, is_write, _ = _trace(500)
        with ParallelExecutor(2, "process") as executor:
            tasks = []
            handles = []
            for i in range(2):
                cache, handle = executor.make_cache(GEOMETRY)
                handles.append(handle)
                tasks.append(
                    ReplayTask(
                        cache=cache,
                        policy=LruPolicy(),
                        pages=pages,
                        is_write=is_write,
                        # Invalid on the second task only: the worker's
                        # stream validation raises mid-replay.
                        warmup_fraction=-1.0 if i == 1 else 0.0,
                        shared=handle,
                    )
                )
            with pytest.raises(
                ValueError, match="warmup_fraction"
            ):
                executor.replay(tasks)
            for handle in handles:
                handle.close()


class TestRunGrid:
    def test_grid_order_and_parallel_match(self):
        from repro.analysis.sweep import run_grid

        points = [(i, i + 1) for i in range(6)]
        sequential = run_grid(_add, points)
        threaded = run_grid(
            _add, points, parallel=ParallelConfig(workers=4)
        )
        spawned = run_grid(
            _add,
            points,
            parallel=ParallelConfig(workers=2, backend="process"),
        )
        assert sequential == threaded == spawned
        assert sequential == [a + b for a, b in points]

"""Tests for the shared staged pipeline core.

The pipeline is the single implementation of the paper's
prepare/score/simulate/price loop; these tests pin its stage
contracts and the facade equivalences the refactor relies on: the
offline system is a thin delegate, both simulator dispatch targets
are bit-identical, and chunked feature stamping matches a
whole-stream pass.
"""

import numpy as np
import pytest

from repro.cache.setassoc import SetAssociativeCache
from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.core.pipeline import StagedPipeline, StrategyPlan
from repro.core.system import IcgmmSystem
from repro.traces.preprocess import transform_timestamps


@pytest.fixture(scope="module")
def pipeline():
    config = IcgmmConfig(
        trace_length=20_000,
        gmm=GmmEngineConfig(n_components=8, max_train_samples=4_000),
    )
    return StagedPipeline(config)


@pytest.fixture(scope="module")
def prepared(pipeline):
    return pipeline.prepare("memtier")


class TestPrepareStage:
    def test_prepared_shapes_align(self, prepared):
        n = len(prepared)
        assert prepared.page_indices.shape == (n,)
        assert prepared.is_write.shape == (n,)
        assert prepared.scores.shape == (n,)
        assert prepared.page_frequency_scores.shape == (n,)

    def test_system_prepare_is_the_pipeline(self, pipeline, prepared):
        system = IcgmmSystem(pipeline.config)
        via_system = system.prepare("memtier")
        assert np.array_equal(
            via_system.page_indices, prepared.page_indices
        )
        assert np.array_equal(via_system.scores, prepared.scores)

    def test_system_delegates_config(self, pipeline):
        system = IcgmmSystem(pipeline.config)
        assert system.config is system.pipeline.config
        assert system.latency_model is system.pipeline.latency_model


class TestScoreStage:
    def test_strategy_score_views(self, pipeline, prepared):
        assert pipeline.strategy_scores(prepared, "lru") is None
        assert (
            pipeline.strategy_scores(prepared, "gmm-caching")
            is prepared.scores
        )
        assert (
            pipeline.strategy_scores(prepared, "gmm-eviction")
            is prepared.page_frequency_scores
        )
        assert (
            pipeline.strategy_scores(prepared, "gmm-caching-eviction")
            is prepared.scores
        )

    def test_plan_builds_policy_and_scores(self, pipeline, prepared):
        plan = pipeline.plan_strategy(prepared, "gmm-caching-eviction")
        assert isinstance(plan, StrategyPlan)
        assert plan.strategy == "gmm-caching-eviction"
        assert plan.scores is prepared.scores
        # The combined policy carries the marginal page-score map.
        page = int(prepared.page_indices[0])
        expected = prepared.page_score_map()[page]
        assert plan.policy.fill_meta(page, 0.0, 0) == expected

    def test_chunk_features_match_whole_stream(self, pipeline):
        config = pipeline.config
        pages = np.arange(500, dtype=np.int64) % 37
        whole = pipeline.chunk_features(pages, 0)
        parts = np.vstack(
            [
                pipeline.chunk_features(pages[start : start + 128], start)
                for start in range(0, 500, 128)
            ]
        )
        assert np.array_equal(whole, parts)
        reference = transform_timestamps(
            500,
            config.len_window,
            config.len_access_shot,
            config.timestamp_mode,
        )
        assert np.array_equal(whole[:, 1], reference.astype(np.float64))


class TestSimulateStage:
    def test_dispatch_paths_bit_identical(self, prepared):
        fast = StagedPipeline(IcgmmConfig(simulator="fast"))
        reference = StagedPipeline(IcgmmConfig(simulator="reference"))
        plan = fast.plan_strategy(prepared, "gmm-caching")
        cache_a = SetAssociativeCache(fast.config.geometry)
        cache_b = SetAssociativeCache(reference.config.geometry)
        stats_a = fast.simulate(
            cache_a,
            plan.policy,
            prepared.page_indices,
            prepared.is_write,
            scores=plan.scores,
        )
        plan_b = reference.plan_strategy(prepared, "gmm-caching")
        stats_b = reference.simulate(
            cache_b,
            plan_b.policy,
            prepared.page_indices,
            prepared.is_write,
            scores=plan_b.scores,
        )
        assert stats_a == stats_b
        assert np.array_equal(cache_a.tags, cache_b.tags)
        assert np.array_equal(cache_a.meta, cache_b.meta)

    def test_resumable_offsets_match_single_shot(self, pipeline, prepared):
        plan = pipeline.plan_strategy(prepared, "lru")
        single_cache = SetAssociativeCache(pipeline.config.geometry)
        single = pipeline.simulate(
            single_cache,
            pipeline.plan_strategy(prepared, "lru").policy,
            prepared.page_indices,
            prepared.is_write,
        )
        chunked_cache = SetAssociativeCache(pipeline.config.geometry)
        total = None
        n = len(prepared)
        for start in range(0, n, 4096):
            stop = min(start + 4096, n)
            part = pipeline.simulate(
                chunked_cache,
                plan.policy,
                prepared.page_indices[start:stop],
                prepared.is_write[start:stop],
                index_offset=start,
            )
            total = part if total is None else total.merge(part)
        assert total == single
        assert np.array_equal(single_cache.tags, chunked_cache.tags)


class TestPriceStage:
    def test_price_matches_latency_model(self, pipeline, prepared):
        outcome = pipeline.run_strategy(prepared, "lru")
        assert outcome.strategy == "lru"
        assert outcome.average_time_us == pytest.approx(
            pipeline.latency_model.average_access_time_us(outcome.stats)
        )

    def test_run_strategy_equals_system(self, pipeline, prepared):
        system = IcgmmSystem(pipeline.config)
        via_pipeline = pipeline.run_strategy(prepared, "gmm-caching")
        via_system = system.run_strategy(prepared, "gmm-caching")
        assert via_pipeline.stats == via_system.stats
        assert via_pipeline.average_time_us == via_system.average_time_us

"""Tests for strategy selection."""

import pytest

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.core.policy import (
    CombinedIcgmmPolicy,
    build_policy,
    strategy_score_view,
    strategy_uses_scores,
)


class TestBuildPolicy:
    def test_lru(self):
        assert isinstance(build_policy("lru"), LruPolicy)

    def test_caching_only(self):
        policy = build_policy("gmm-caching", admission_threshold=0.3)
        assert isinstance(policy, GmmCachePolicy)
        assert policy.admission and not policy.eviction
        assert policy.threshold == 0.3

    def test_eviction_only(self):
        policy = build_policy("gmm-eviction")
        assert not policy.admission and policy.eviction

    def test_combined_requires_page_scores(self):
        with pytest.raises(ValueError, match="page_scores"):
            build_policy("gmm-caching-eviction", 0.1)

    def test_combined(self):
        policy = build_policy(
            "gmm-caching-eviction", 0.1, page_scores={5: 0.9}
        )
        assert isinstance(policy, CombinedIcgmmPolicy)
        assert policy.admission and policy.eviction

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            build_policy("belady")


class TestScoreViews:
    def test_lru_needs_no_scores(self):
        assert not strategy_uses_scores("lru")
        assert strategy_score_view("lru") is None

    def test_caching_uses_request_view(self):
        assert strategy_score_view("gmm-caching") == "request"

    def test_eviction_uses_page_view(self):
        assert strategy_score_view("gmm-eviction") == "page"

    def test_combined_uses_request_view(self):
        assert strategy_score_view("gmm-caching-eviction") == "request"


class TestCombinedPolicy:
    def test_fill_meta_prefers_page_score(self):
        policy = CombinedIcgmmPolicy(
            threshold=0.0, page_scores={7: 0.42}
        )
        assert policy.fill_meta(7, 0.9, 0) == 0.42

    def test_fill_meta_falls_back_to_request_score(self):
        policy = CombinedIcgmmPolicy(threshold=0.0, page_scores={})
        assert policy.fill_meta(7, 0.9, 0) == 0.9

    def test_admission_uses_request_score(self):
        policy = CombinedIcgmmPolicy(
            threshold=0.5, page_scores={7: 0.99}
        )
        # The request score (0.1), not the page score (0.99), drives
        # admission.
        assert not policy.admit(7, 0.1, False, 0)
        assert policy.admit(7, 0.6, False, 0)

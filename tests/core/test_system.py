"""Integration tests: the end-to-end ICGMM pipeline.

These run the real pipeline on shortened traces with a small GMM so
the whole module stays fast; the full-scale numbers live in the
benchmark harness.
"""

import numpy as np
import pytest

from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.core.experiment import run_suite
from repro.core.system import IcgmmSystem


def _fast_config(**overrides):
    overrides.setdefault("trace_length", 60_000)
    overrides.setdefault(
        "gmm",
        GmmEngineConfig(
            n_components=8, max_iter=15, max_train_samples=8_000
        ),
    )
    return IcgmmConfig(**overrides)


@pytest.fixture(scope="module")
def prepared_memtier():
    system = IcgmmSystem(_fast_config())
    return system, system.prepare("memtier")


class TestPrepare:
    def test_prepared_shapes_align(self, prepared_memtier):
        _, prepared = prepared_memtier
        n = len(prepared)
        assert prepared.page_indices.shape == (n,)
        assert prepared.is_write.shape == (n,)
        assert prepared.scores.shape == (n,)
        assert prepared.page_frequency_scores.shape == (n,)

    def test_trim_applied(self, prepared_memtier):
        # 60k trace -> 20%/10% trim leaves 42k requests.
        _, prepared = prepared_memtier
        assert len(prepared) == 42_000

    def test_page_score_map_consistent(self, prepared_memtier):
        _, prepared = prepared_memtier
        mapping = prepared.page_score_map()
        for i in range(0, len(prepared), 5000):
            page = int(prepared.page_indices[i])
            assert mapping[page] == pytest.approx(
                float(prepared.page_frequency_scores[i])
            )

    def test_accepts_external_trace(self):
        system = IcgmmSystem(_fast_config())
        rng = np.random.default_rng(0)
        trace = system.generate_trace("heap", rng)
        prepared = system.prepare("heap", trace=trace)
        assert len(prepared) > 0


class TestRunStrategy:
    def test_all_strategies_produce_outcomes(self, prepared_memtier):
        system, prepared = prepared_memtier
        for strategy in (
            "lru",
            "gmm-caching",
            "gmm-eviction",
            "gmm-caching-eviction",
        ):
            outcome = system.run_strategy(prepared, strategy)
            assert outcome.strategy == strategy
            assert outcome.stats.accesses > 0
            assert outcome.average_time_us > 0

    def test_only_admission_strategies_bypass(self, prepared_memtier):
        system, prepared = prepared_memtier
        lru = system.run_strategy(prepared, "lru")
        eviction = system.run_strategy(prepared, "gmm-eviction")
        caching = system.run_strategy(prepared, "gmm-caching")
        assert lru.stats.bypasses == 0
        assert eviction.stats.bypasses == 0
        assert caching.stats.bypasses >= 0


class TestRunBenchmark:
    def test_full_benchmark(self):
        system = IcgmmSystem(_fast_config())
        result = system.run_benchmark("stream")
        assert set(result.outcomes) == {
            "lru",
            "gmm-caching",
            "gmm-eviction",
            "gmm-caching-eviction",
        }
        # The headline claim, on the most LRU-hostile workload: the
        # best GMM strategy beats the LRU baseline.
        assert result.miss_reduction_points > 0
        assert result.time_reduction_percent > 0

    def test_benchmark_deterministic(self):
        a = IcgmmSystem(_fast_config()).run_benchmark("heap")
        b = IcgmmSystem(_fast_config()).run_benchmark("heap")
        assert (
            a.lru.stats.as_dict() == b.lru.stats.as_dict()
        )
        assert (
            a.best_gmm.average_time_us == b.best_gmm.average_time_us
        )

    def test_strategies_subset(self):
        system = IcgmmSystem(_fast_config())
        result = system.run_benchmark(
            "memtier", strategies=("lru", "gmm-eviction")
        )
        assert set(result.outcomes) == {"lru", "gmm-eviction"}


class TestRunSuite:
    def test_suite_over_two_workloads(self):
        suite = run_suite(
            workloads=("memtier", "stream"),
            config=_fast_config(),
        )
        assert set(suite.results) == {"memtier", "stream"}
        assert len(suite.fig6_rows()) == 2
        assert len(suite.table1_rows()) == 2

    def test_suite_rejects_config_and_system(self):
        with pytest.raises(ValueError, match="not both"):
            run_suite(
                workloads=("memtier",),
                config=_fast_config(),
                system=IcgmmSystem(_fast_config()),
            )

"""Tests for the GMM policy engine (training, scoring, thresholds)."""

import numpy as np
import pytest

from repro.core.config import GmmEngineConfig
from repro.core.engine import FeatureScaler, GmmPolicyEngine


def _clustered_features(rng, n=3000):
    """Two hot page clusters plus a cold uniform background."""
    hot_a = np.column_stack(
        [rng.normal(100, 5, n), rng.uniform(0, 300, n)]
    )
    hot_b = np.column_stack(
        [rng.normal(500, 10, n), rng.uniform(0, 300, n)]
    )
    cold = np.column_stack(
        [rng.uniform(0, 2000, n // 10), rng.uniform(0, 300, n // 10)]
    )
    return np.concatenate([hot_a, hot_b, cold])


class TestFeatureScaler:
    def test_standardises(self, rng):
        features = rng.normal([10, 100], [2, 30], size=(5000, 2))
        scaler = FeatureScaler.fit(features)
        scaled = scaler.transform(features)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_no_blowup(self):
        features = np.column_stack(
            [np.ones(100), np.arange(100, dtype=float)]
        )
        scaler = FeatureScaler.fit(features)
        scaled = scaler.transform(features)
        assert np.all(np.isfinite(scaled))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match=r"\(N, D\)"):
            FeatureScaler.fit(np.arange(10.0))


class TestTraining:
    def test_train_produces_engine(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=8), rng
        )
        assert engine.model.n_components == 8
        assert np.isfinite(engine.admission_threshold)

    def test_hot_scores_above_cold(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=8), rng
        )
        hot = engine.score(np.array([[100.0, 150.0]]))[0]
        cold = engine.score(np.array([[1500.0, 150.0]]))[0]
        assert hot > 10 * cold

    def test_threshold_quantile_fraction_bypassed(self, rng):
        features = _clustered_features(rng)
        config = GmmEngineConfig(
            n_components=8, threshold_quantile=0.25
        )
        engine = GmmPolicyEngine.train(features, config, rng)
        scores = engine.score(features)
        below = np.mean(scores < engine.admission_threshold)
        assert below == pytest.approx(0.25, abs=0.05)

    def test_subsampling_respected(self, rng):
        features = _clustered_features(rng)
        config = GmmEngineConfig(
            n_components=4, max_train_samples=500
        )
        engine = GmmPolicyEngine.train(features, config, rng)
        # Training still produces a usable engine on the full stream.
        assert engine.score(features).shape == (features.shape[0],)

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError, match="not enough"):
            GmmPolicyEngine.train(
                np.zeros((4, 2)),
                GmmEngineConfig(n_components=8),
                rng,
            )

    def test_rejects_bad_shape(self, rng):
        with pytest.raises(ValueError, match=r"\(N, D\)"):
            GmmPolicyEngine.train(
                np.zeros(10), GmmEngineConfig(n_components=2), rng
            )

    def test_deterministic_given_seed(self, rng_factory):
        features = _clustered_features(np.random.default_rng(0))
        a = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=4), rng_factory(9)
        )
        b = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=4), rng_factory(9)
        )
        np.testing.assert_array_equal(
            a.score(features[:100]), b.score(features[:100])
        )
        assert a.admission_threshold == b.admission_threshold

    def test_quantized_mode(self, rng):
        features = _clustered_features(rng)
        config = GmmEngineConfig(n_components=4, use_quantized=True)
        engine = GmmPolicyEngine.train(features, config, rng)
        assert engine.quantized is not None
        scores = engine.score(features[:50])
        assert np.all(np.isfinite(scores))

    def test_converged_reporting(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=4, max_iter=200), rng
        )
        assert engine.converged()


class TestPageScores:
    def test_marginal_is_time_invariant_per_page(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=8), rng
        )
        pages = np.array([100, 100, 500, 100, 500])
        marginals = engine.page_scores(pages)
        # Same page -> identical marginal, regardless of position.
        assert marginals[0] == marginals[1] == marginals[3]
        assert marginals[2] == marginals[4]

    def test_marginal_ranks_hot_above_cold(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=8), rng
        )
        marginals = engine.page_scores(np.array([100, 1500]))
        assert marginals[0] > marginals[1]

    def test_marginal_shape(self, rng):
        features = _clustered_features(rng)
        engine = GmmPolicyEngine.train(
            features, GmmEngineConfig(n_components=4), rng
        )
        pages = rng.integers(0, 2000, size=200)
        assert engine.page_scores(pages).shape == (200,)

"""Tests for the EM training fast path and its execution modes.

The contract the training bench relies on: the fast path's batched,
sequential, and executor-driven restart modes produce *identical*
models at equal seeds; warm starts skip seeding and still converge;
the vectorized k-means and the quadratic-form scorer agree with their
references to far better than any decision threshold.
"""

import numpy as np
import pytest

from repro.core.parallel import ParallelExecutor
from repro.gmm.em import (
    EMTrainer,
    fast_log_score_samples,
)
from repro.gmm.kmeans import kmeans, kmeans_fast
from repro.gmm.model import GaussianMixture


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    points = np.concatenate(
        [
            rng.normal(loc=(i % 3, i // 3), scale=0.35, size=(1500, 2))
            for i in range(6)
        ]
    )
    return (points - points.mean(axis=0)) / points.std(axis=0)


def _results_identical(a, b) -> bool:
    return (
        np.array_equal(a.model.weights, b.model.weights)
        and np.array_equal(a.model.means, b.model.means)
        and np.array_equal(a.model.covariances, b.model.covariances)
        and a.n_iter == b.n_iter
        and a.converged == b.converged
        and a.log_likelihood == b.log_likelihood
        and a.history == b.history
    )


class TestRestartModeIdentity:
    @pytest.mark.parametrize("k,n_init", [(1, 3), (4, 4), (12, 3)])
    def test_batched_equals_sequential(self, blobs, k, n_init):
        batched = EMTrainer(
            k, max_iter=30, tol=1e-3, n_init=n_init,
            restart_mode="batched",
        ).fit(blobs, np.random.default_rng(7))
        sequential = EMTrainer(
            k, max_iter=30, tol=1e-3, n_init=n_init,
            restart_mode="sequential",
        ).fit(blobs, np.random.default_rng(7))
        assert _results_identical(batched, sequential)

    @pytest.mark.parametrize("backend", ["thread"])
    def test_executor_restarts_identical(self, blobs, backend):
        batched = EMTrainer(6, max_iter=25, tol=1e-3, n_init=4).fit(
            blobs, np.random.default_rng(3)
        )
        sequential = EMTrainer(
            6, max_iter=25, tol=1e-3, n_init=4,
            restart_mode="sequential",
        )
        with ParallelExecutor(workers=3, backend=backend) as executor:
            fanned = sequential.fit(
                blobs, np.random.default_rng(3), executor=executor
            )
        assert _results_identical(batched, fanned)

    def test_deterministic_given_seed(self, blobs):
        trainer = EMTrainer(5, n_init=2)
        a = trainer.fit(blobs, np.random.default_rng(42))
        b = trainer.fit(blobs, np.random.default_rng(42))
        assert _results_identical(a, b)

    def test_seeding_modes_both_work(self, blobs):
        for seeding in ("fast", "reference"):
            result = EMTrainer(
                4, max_iter=30, seeding=seeding
            ).fit(blobs, np.random.default_rng(1))
            assert np.isfinite(result.log_likelihood)

    def test_validation(self):
        with pytest.raises(ValueError, match="seeding"):
            EMTrainer(2, seeding="magic")
        with pytest.raises(ValueError, match="restart_mode"):
            EMTrainer(2, restart_mode="magic")
        with pytest.raises(ValueError, match="rng"):
            EMTrainer(2).fit(np.zeros((10, 2)))

    def test_config_constants_match_trainer(self):
        """core.config keeps literal copies of the trainer's accepted
        mode sets (no import edge between the layers); they must not
        drift apart."""
        from repro.core import config as core_config
        from repro.gmm import em

        assert core_config.EM_SEEDINGS == em.SEEDINGS
        assert core_config.EM_RESTART_MODES == em.RESTART_MODES


class TestFastPathQuality:
    def test_matches_reference_likelihood(self, blobs):
        """Different seeding, same data: the fast fit must land in
        the same likelihood basin as the reference fit."""
        fast = EMTrainer(6, max_iter=60, tol=1e-4).fit(
            blobs, np.random.default_rng(5)
        )
        reference = EMTrainer(6, max_iter=60, tol=1e-4).fit_reference(
            blobs, np.random.default_rng(5)
        )
        assert fast.log_likelihood == pytest.approx(
            reference.log_likelihood, abs=0.05
        )

    def test_history_monotone(self, blobs):
        result = EMTrainer(5, max_iter=40, tol=1e-12).fit(
            blobs, np.random.default_rng(2)
        )
        history = np.array(result.history)
        assert np.all(np.diff(history) >= -1e-8)

    def test_extreme_raw_scale_guard(self):
        """Raw-scale data far from the origin trips the quadratic
        expansion's cancellation guard; the exact fallback must keep
        the fit finite and positive-definite."""
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [
                rng.normal(1e8, 1e-4, size=(400, 2)),
                rng.normal(0.0, 1.0, size=(400, 2)),
            ]
        )
        result = EMTrainer(2, max_iter=20).fit(
            points, np.random.default_rng(1)
        )
        for cov in result.model.covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)
        assert np.isfinite(result.log_likelihood)


class TestWarmStart:
    def test_skips_seeding_and_improves(self, blobs):
        base = EMTrainer(4, max_iter=40).fit(
            blobs, np.random.default_rng(0)
        )
        rng = np.random.default_rng(9)
        shifted = blobs + rng.normal(0.4, 0.05, size=2)
        warm = EMTrainer(4, max_iter=10, tol=1e-3).fit(
            shifted, warm_start=base.model
        )
        frozen_ll = base.model.mean_log_likelihood(shifted)
        assert warm.log_likelihood > frozen_ll
        assert warm.model.n_components == 4

    def test_accepts_parameter_tuple(self, blobs):
        base = EMTrainer(3, max_iter=30).fit(
            blobs, np.random.default_rng(0)
        )
        model = base.model
        warm = EMTrainer(3, max_iter=5).fit(
            blobs,
            warm_start=(
                model.weights, model.means, model.covariances
            ),
        )
        assert isinstance(warm.model, GaussianMixture)


class TestFastKMeans:
    def test_every_cluster_alive(self, blobs):
        result = kmeans_fast(blobs, 16, np.random.default_rng(4))
        assert len(np.unique(result.labels)) == 16
        assert result.centers.shape == (16, 2)
        assert result.inertia >= 0.0

    def test_inertia_comparable_to_reference(self, blobs):
        fast = kmeans_fast(blobs, 6, np.random.default_rng(1))
        reference = kmeans(blobs, 6, np.random.default_rng(1))
        assert fast.inertia <= reference.inertia * 1.25

    def test_deterministic(self, blobs):
        a = kmeans_fast(blobs, 5, np.random.default_rng(8))
        b = kmeans_fast(blobs, 5, np.random.default_rng(8))
        np.testing.assert_array_equal(a.centers, b.centers)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_duplicate_points(self):
        points = np.repeat(
            np.array([[1.0, 2.0], [5.0, 6.0]]), 40, axis=0
        )
        result = kmeans_fast(points, 2, np.random.default_rng(0))
        assert len(np.unique(result.labels)) == 2

    def test_rejects_too_few_points(self):
        with pytest.raises(ValueError, match="at least"):
            kmeans_fast(np.zeros((2, 2)), 5, np.random.default_rng(0))


class TestFastScorer:
    def test_agrees_with_exact_scorer(self, blobs):
        model = EMTrainer(5, max_iter=30).fit(
            blobs, np.random.default_rng(0)
        ).model
        exact = model.log_score_samples(blobs)
        fast = fast_log_score_samples(model, blobs)
        np.testing.assert_allclose(fast, exact, rtol=1e-9, atol=1e-9)

    def test_guard_keeps_raw_scale_exact(self):
        rng = np.random.default_rng(2)
        points = rng.normal(1e7, 1.0, size=(500, 2))
        weights = np.array([0.5, 0.5])
        means = points[:2] + 0.5
        covariances = np.tile(np.eye(2) * 1e-4, (2, 1, 1))
        model = GaussianMixture(weights, means, covariances)
        exact = model.log_score_samples(points)
        fast = fast_log_score_samples(model, points)
        np.testing.assert_allclose(fast, exact, rtol=1e-8, atol=1e-6)

"""Tests for the fixed-point GMM emulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm.model import GaussianMixture
from repro.gmm.quantized import FixedPointFormat, QuantizedGmm, _ExpTable


def _mixture():
    weights = np.array([0.5, 0.3, 0.2])
    means = np.array([[0.0, 0.0], [3.0, 1.0], [-2.0, 2.0]])
    covariances = np.array([np.eye(2), 0.5 * np.eye(2), 2.0 * np.eye(2)])
    return GaussianMixture(weights, means, covariances)


class TestFixedPointFormat:
    def test_scale(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        assert fmt.scale == pytest.approx(1.0 / 256.0)

    def test_quantize_rounds_to_grid(self):
        fmt = FixedPointFormat(total_bits=16, frac_bits=8)
        got = fmt.quantize(np.array([0.00196]))  # ~0.5 LSB above 1 LSB/2
        assert got[0] * 256 == pytest.approx(round(0.00196 * 256))

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(total_bits=8, frac_bits=4)
        assert fmt.quantize(np.array([1000.0]))[0] == fmt.max_value
        assert fmt.quantize(np.array([-1000.0]))[0] == fmt.min_value

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=1, frac_bits=0)
        with pytest.raises(ValueError):
            FixedPointFormat(total_bits=8, frac_bits=8)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-100, max_value=100))
    def test_property_quantize_idempotent(self, value):
        fmt = FixedPointFormat(total_bits=32, frac_bits=16)
        once = fmt.quantize(np.array([value]))
        twice = fmt.quantize(once)
        np.testing.assert_array_equal(once, twice)

    @settings(max_examples=50, deadline=None)
    @given(value=st.floats(min_value=-1000, max_value=1000))
    def test_property_error_bounded_by_half_lsb(self, value):
        fmt = FixedPointFormat(total_bits=32, frac_bits=12)
        got = float(fmt.quantize(np.array([value]))[0])
        if fmt.min_value < value < fmt.max_value:
            assert abs(got - value) <= fmt.scale / 2 + 1e-12


class TestExpTable:
    def test_close_to_exp_in_range(self):
        table = _ExpTable(input_floor=-40.0, address_bits=12)
        xs = np.linspace(-39.0, 0.0, 1000)
        np.testing.assert_allclose(table(xs), np.exp(xs), atol=1e-4)

    def test_flushes_below_floor_to_zero(self):
        table = _ExpTable(input_floor=-10.0)
        assert table(np.array([-11.0]))[0] == 0.0

    def test_at_zero(self):
        table = _ExpTable()
        assert table(np.array([0.0]))[0] == pytest.approx(1.0, rel=1e-6)

    def test_rejects_positive_floor(self):
        with pytest.raises(ValueError, match="negative"):
            _ExpTable(input_floor=1.0)


class TestQuantizedGmm:
    def test_scores_close_to_float_reference(self):
        model = _mixture()
        quantized = QuantizedGmm(model)
        rng = np.random.default_rng(0)
        points = rng.uniform(-5, 5, size=(500, 2))
        error = quantized.max_abs_error(model, points)
        # Scores are O(0.1); 32-bit Q12.20 keeps error tiny.
        assert error < 1e-3

    def test_preserves_score_ordering_for_policy(self):
        # What the cache policy needs: hot pages (high float score)
        # still rank above cold ones after quantization.
        model = _mixture()
        quantized = QuantizedGmm(model)
        hot = np.array([[0.0, 0.0]])
        cold = np.array([[8.0, 8.0]])
        assert (
            quantized.score_samples(hot)[0]
            > quantized.score_samples(cold)[0]
        )

    def test_coarse_format_degrades_gracefully(self):
        model = _mixture()
        fine = QuantizedGmm(model, FixedPointFormat(32, 24))
        coarse = QuantizedGmm(model, FixedPointFormat(16, 8))
        rng = np.random.default_rng(1)
        points = rng.uniform(-4, 4, size=(200, 2))
        assert fine.max_abs_error(model, points) <= coarse.max_abs_error(
            model, points
        ) + 1e-12

    def test_rejects_non_2d_model(self):
        model_3d = GaussianMixture(
            np.array([1.0]), np.zeros((1, 3)), np.eye(3)[None]
        )
        with pytest.raises(ValueError, match="2-D"):
            QuantizedGmm(model_3d)

    def test_rejects_bad_point_shape(self):
        quantized = QuantizedGmm(_mixture())
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            quantized.score_samples(np.zeros((4, 3)))

    def test_weight_buffer_bits(self):
        quantized = QuantizedGmm(_mixture(), FixedPointFormat(32, 20))
        assert quantized.weight_buffer_bits == 3 * 6 * 32

    def test_mac_ops_scale_with_components(self):
        quantized = QuantizedGmm(_mixture())
        assert quantized.multiply_accumulate_ops_per_point() == 3 * 7

    def test_single_point_1d_input(self):
        quantized = QuantizedGmm(_mixture())
        assert quantized.score_samples(np.array([0.0, 0.0])).shape == (1,)


class TestVectorizedScoring:
    """The batched path must match the per-component reference loop
    bit for bit (ROADMAP fast-path gap, closed)."""

    def test_matches_reference_on_random_points(self):
        quantized = QuantizedGmm(_mixture())
        rng = np.random.default_rng(0)
        points = rng.uniform(-6, 6, size=(4000, 2))
        np.testing.assert_array_equal(
            quantized.score_samples(points),
            quantized.score_samples_reference(points),
        )

    def test_matches_reference_across_formats(self):
        rng = np.random.default_rng(1)
        points = rng.uniform(-4, 4, size=(500, 2))
        for fmt in (
            FixedPointFormat(32, 20),
            FixedPointFormat(16, 8),
            FixedPointFormat(12, 6),
            FixedPointFormat(8, 4),
        ):
            quantized = QuantizedGmm(_mixture(), fmt)
            np.testing.assert_array_equal(
                quantized.score_samples(points),
                quantized.score_samples_reference(points),
            )

    def test_matches_reference_under_saturation(self):
        # Concentrated identical components drive every term to ~1,
        # overflowing a narrow accumulator: the saturating sequential
        # adds differ from a plain sum, and the vectorized path must
        # reproduce them through its row fallback.
        k = 6
        model = GaussianMixture(
            np.full(k, 1.0 / k),
            np.zeros((k, 2)),
            np.tile(np.eye(2) * 1e-6, (k, 1, 1)),
        )
        fmt = FixedPointFormat(total_bits=10, frac_bits=8)
        quantized = QuantizedGmm(model, fmt)
        points = np.vstack(
            [np.zeros((8, 2)), np.full((8, 2), 9.0)]
        )
        got = quantized.score_samples(points)
        np.testing.assert_array_equal(
            got, quantized.score_samples_reference(points)
        )
        assert got[0] == fmt.max_value  # saturation really happened

    def test_blocked_evaluation_is_seamless(self):
        quantized = QuantizedGmm(_mixture())
        quantized._BLOCK_ELEMENTS = 64  # force many tiny blocks
        rng = np.random.default_rng(2)
        points = rng.uniform(-5, 5, size=(333, 2))
        np.testing.assert_array_equal(
            quantized.score_samples(points),
            quantized.score_samples_reference(points),
        )

    def test_wide_format_uses_reference_guard(self):
        # total_bits > 52: partial sums may not be exact in float64,
        # so the vectorized path must delegate wholesale.
        quantized = QuantizedGmm(
            _mixture(), FixedPointFormat(total_bits=60, frac_bits=20)
        )
        points = np.array([[0.0, 0.0], [1.0, -1.0]])
        np.testing.assert_array_equal(
            quantized.score_samples(points),
            quantized.score_samples_reference(points),
        )

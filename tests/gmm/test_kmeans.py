"""Tests for the k-means initialiser."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm.kmeans import kmeans, kmeans_plus_plus_init


def _three_blobs(rng, n_per=50, spread=0.2):
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
    points = np.concatenate(
        [c + spread * rng.standard_normal((n_per, 2)) for c in centers]
    )
    rng.shuffle(points)
    return points, centers


class TestKMeansPlusPlusInit:
    def test_returns_requested_count(self, rng):
        points, _ = _three_blobs(rng)
        seeds = kmeans_plus_plus_init(points, 3, rng)
        assert seeds.shape == (3, 2)

    def test_seeds_are_data_points(self, rng):
        points, _ = _three_blobs(rng)
        seeds = kmeans_plus_plus_init(points, 4, rng)
        for seed in seeds:
            assert np.any(np.all(np.isclose(points, seed), axis=1))

    def test_duplicate_points_fallback(self, rng):
        points = np.zeros((10, 2))
        seeds = kmeans_plus_plus_init(points, 3, rng)
        assert seeds.shape == (3, 2)
        np.testing.assert_allclose(seeds, 0.0)

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError, match="at least"):
            kmeans_plus_plus_init(np.zeros((2, 2)), 5, rng)

    def test_rejects_zero_clusters(self, rng):
        with pytest.raises(ValueError, match=">= 1"):
            kmeans_plus_plus_init(np.zeros((5, 2)), 0, rng)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        points, true_centers = _three_blobs(rng)
        result = kmeans(points, 3, rng)
        # Each true center should be close to one found center.
        for center in true_centers:
            distances = np.linalg.norm(result.centers - center, axis=1)
            assert np.min(distances) < 1.0

    def test_labels_match_nearest_center(self, rng):
        points, _ = _three_blobs(rng)
        result = kmeans(points, 3, rng)
        distances = np.linalg.norm(
            points[:, None, :] - result.centers[None, :, :], axis=2
        )
        np.testing.assert_array_equal(
            result.labels, np.argmin(distances, axis=1)
        )

    def test_inertia_decreases_with_more_clusters(self, rng):
        points, _ = _three_blobs(rng)
        few = kmeans(points, 2, np.random.default_rng(7))
        many = kmeans(points, 6, np.random.default_rng(7))
        assert many.inertia <= few.inertia

    def test_deterministic_given_seed(self, rng_factory):
        points, _ = _three_blobs(np.random.default_rng(3))
        a = kmeans(points, 3, rng_factory(11))
        b = kmeans(points, 3, rng_factory(11))
        np.testing.assert_array_equal(a.centers, b.centers)
        assert a.inertia == b.inertia

    def test_all_clusters_populated_even_with_duplicates(self, rng):
        # 5 distinct values, ask for 5 clusters: every cluster should
        # end up with exactly one value even though points repeat.
        base = np.array([[float(i) * 5, 0.0] for i in range(5)])
        points = np.repeat(base, 20, axis=0)
        result = kmeans(points, 5, rng)
        assert len(np.unique(result.labels)) == 5
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_inertia_nonnegative(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal((30, 2))
        result = kmeans(points, 4, rng)
        assert result.inertia >= 0.0
        assert result.centers.shape == (4, 2)
        assert len(result.labels) == 30

"""Tests for GMM persistence."""

import numpy as np
import pytest

from repro.gmm.model import GaussianMixture
from repro.gmm.serialization import (
    gmm_from_dict,
    gmm_to_dict,
    load_gmm,
    save_gmm,
)


def _mixture():
    return GaussianMixture(
        np.array([0.7, 0.3]),
        np.array([[1.0, 2.0], [3.0, 4.0]]),
        np.array([np.eye(2), 2.0 * np.eye(2)]),
    )


class TestDictRoundTrip:
    def test_round_trip_preserves_parameters(self):
        model = _mixture()
        rebuilt = gmm_from_dict(gmm_to_dict(model))
        np.testing.assert_array_equal(rebuilt.weights, model.weights)
        np.testing.assert_array_equal(rebuilt.means, model.means)
        np.testing.assert_array_equal(
            rebuilt.covariances, model.covariances
        )

    def test_round_trip_preserves_scores(self, rng):
        model = _mixture()
        rebuilt = gmm_from_dict(gmm_to_dict(model))
        points = rng.uniform(-5, 5, size=(50, 2))
        np.testing.assert_array_equal(
            rebuilt.score_samples(points), model.score_samples(points)
        )

    def test_rejects_missing_keys(self):
        blob = gmm_to_dict(_mixture())
        del blob["means"]
        with pytest.raises(ValueError, match="missing"):
            gmm_from_dict(blob)

    def test_rejects_wrong_version(self):
        blob = gmm_to_dict(_mixture())
        blob["format_version"] = 999
        with pytest.raises(ValueError, match="version"):
            gmm_from_dict(blob)

    def test_rejects_absent_version(self):
        with pytest.raises(ValueError, match="version"):
            gmm_from_dict({"weights": np.array([1.0])})


class TestFileRoundTrip:
    def test_npz_round_trip(self, tmp_path, rng):
        model = _mixture()
        path = tmp_path / "model.npz"
        save_gmm(model, path)
        loaded = load_gmm(path)
        points = rng.uniform(-3, 3, size=(20, 2))
        np.testing.assert_array_equal(
            loaded.score_samples(points), model.score_samples(points)
        )

    def test_accepts_string_path(self, tmp_path):
        path = str(tmp_path / "model.npz")
        save_gmm(_mixture(), path)
        loaded = load_gmm(path)
        assert loaded.n_components == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_gmm(tmp_path / "nope.npz")

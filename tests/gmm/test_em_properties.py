"""Property tests: affine equivariance and robustness of EM.

A Gaussian mixture is closed under affine maps, and the EM estimator
inherits that: fitting translated/scaled data must produce the
translated/scaled model (same responsibilities, shifted moments).
These invariances catch a large class of normalisation bugs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm.em import EMTrainer


def _data(seed, n_per=150):
    rng = np.random.default_rng(seed)
    a = rng.multivariate_normal([0.0, 0.0], np.eye(2), size=n_per)
    b = rng.multivariate_normal([7.0, 3.0], 0.5 * np.eye(2), size=n_per)
    data = np.concatenate([a, b])
    rng.shuffle(data)
    return data


def _fit(points, seed=0, k=2):
    return EMTrainer(k, max_iter=120, tol=1e-8).fit(
        points, np.random.default_rng(seed)
    ).model


def _match_components(means_a, means_b):
    """Pair components of two 2-component models by proximity."""
    direct = np.linalg.norm(means_a - means_b)
    swapped = np.linalg.norm(means_a - means_b[::-1])
    return (0, 1) if direct <= swapped else (1, 0)


class TestTranslationEquivariance:
    @settings(max_examples=8, deadline=None)
    @given(
        dx=st.floats(min_value=-50, max_value=50),
        dy=st.floats(min_value=-50, max_value=50),
    )
    def test_means_translate(self, dx, dy):
        data = _data(3)
        base = _fit(data)
        shifted = _fit(data + np.array([dx, dy]))
        order = _match_components(
            base.means + np.array([dx, dy]), shifted.means
        )
        np.testing.assert_allclose(
            base.means + np.array([dx, dy]),
            shifted.means[list(order)],
            atol=1e-3,
        )
        # Covariances and weights are translation-invariant.
        np.testing.assert_allclose(
            base.covariances,
            shifted.covariances[list(order)],
            atol=1e-3,
        )


class TestScaleEquivariance:
    @settings(max_examples=8, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=20.0))
    def test_moments_scale(self, scale):
        data = _data(4)
        base = _fit(data)
        scaled = _fit(data * scale)
        order = _match_components(base.means * scale, scaled.means)
        np.testing.assert_allclose(
            base.means * scale,
            scaled.means[list(order)],
            rtol=1e-3,
            atol=1e-3,
        )
        np.testing.assert_allclose(
            base.covariances * scale**2,
            scaled.covariances[list(order)],
            rtol=5e-3,
            atol=1e-3,
        )

    @settings(max_examples=8, deadline=None)
    @given(scale=st.floats(min_value=0.5, max_value=5.0))
    def test_density_jacobian(self, scale):
        # p_scaled(s x) = p(x) / s^2 in 2-D.
        data = _data(5)
        base = _fit(data)
        scaled = _fit(data * scale)
        probe = np.array([[1.0, 1.0], [5.0, 2.0]])
        np.testing.assert_allclose(
            scaled.score_samples(probe * scale),
            base.score_samples(probe) / scale**2,
            rtol=0.05,
        )


class TestRobustness:
    def test_single_outlier_does_not_break_fit(self):
        data = np.concatenate(
            [_data(6), np.array([[1e4, 1e4]])]
        )
        model = _fit(data, k=2)
        assert np.all(np.isfinite(model.means))
        assert model.weights.sum() == pytest.approx(1.0)

    def test_duplicated_dataset_same_model(self):
        # EM's fixed points depend on the empirical distribution, not
        # the sample count: duplicating every point changes nothing.
        data = _data(7)
        base = _fit(data)
        doubled = _fit(np.concatenate([data, data]))
        order = _match_components(base.means, doubled.means)
        np.testing.assert_allclose(
            base.means, doubled.means[list(order)], atol=1e-4
        )

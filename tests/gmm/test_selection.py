"""Tests for BIC/AIC mixture-size selection."""

import numpy as np
import pytest

from repro.gmm.em import EMTrainer
from repro.gmm.selection import (
    SelectionResult,
    aic,
    bic,
    select_n_components,
)


def _three_blob_data(rng, n_per=250):
    centers = np.array([[0.0, 0.0], [8.0, 0.0], [0.0, 8.0]])
    data = np.concatenate(
        [c + 0.5 * rng.standard_normal((n_per, 2)) for c in centers]
    )
    rng.shuffle(data)
    return data


class TestCriteria:
    def test_bic_penalises_parameters(self, rng):
        data = _three_blob_data(rng)
        small = EMTrainer(1).fit(data, rng).model
        big = EMTrainer(20, max_iter=30).fit(
            data, np.random.default_rng(0)
        ).model
        # The 20-component model fits better in likelihood but its
        # parameter penalty must show up in the criterion.
        penalty_small = small.parameter_count * np.log(len(data))
        penalty_big = big.parameter_count * np.log(len(data))
        assert penalty_big > penalty_small
        assert np.isfinite(bic(big, data))

    def test_aic_lighter_penalty_than_bic(self, rng):
        data = _three_blob_data(rng)
        model = EMTrainer(3).fit(data, rng).model
        # Same likelihood term; BIC's log(N) > AIC's 2 for N > 7.
        assert bic(model, data) > aic(model, data)

    def test_empty_points_rejected(self, rng):
        model = EMTrainer(1).fit(
            rng.standard_normal((10, 2)), rng
        ).model
        with pytest.raises(ValueError, match="empty"):
            bic(model, np.empty((0, 2)))
        with pytest.raises(ValueError, match="empty"):
            aic(model, np.empty((0, 2)))


class TestSelection:
    def test_recovers_true_component_count(self, rng):
        data = _three_blob_data(rng)
        result = select_n_components(
            data, candidates=(1, 2, 3, 6), rng=rng
        )
        assert isinstance(result, SelectionResult)
        assert result.best_k == 3
        assert set(result.scores) == {1, 2, 3, 6}
        assert result.models[3].n_components == 3

    def test_aic_criterion_runs(self, rng):
        data = _three_blob_data(rng, n_per=150)
        result = select_n_components(
            data, candidates=(1, 3), rng=rng, criterion="aic"
        )
        assert result.best_k == 3

    def test_validation(self, rng):
        data = _three_blob_data(rng, n_per=50)
        with pytest.raises(ValueError, match="candidates"):
            select_n_components(data, candidates=(), rng=rng)
        with pytest.raises(ValueError, match="criterion"):
            select_n_components(
                data, candidates=(2,), rng=rng, criterion="elbow"
            )

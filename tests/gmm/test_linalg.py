"""Unit and property tests for repro.gmm.linalg."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm import linalg


def _random_spd_batch(rng, k=4, d=2):
    base = rng.standard_normal((k, d, d))
    return base @ np.swapaxes(base, 1, 2) + d * np.eye(d)


class TestCholeskyBatch:
    def test_reconstructs_input(self, rng):
        covs = _random_spd_batch(rng)
        factors = linalg.cholesky_batch(covs)
        rebuilt = factors @ np.swapaxes(factors, 1, 2)
        np.testing.assert_allclose(rebuilt, covs, rtol=1e-10)

    def test_lower_triangular(self, rng):
        covs = _random_spd_batch(rng, k=3, d=3)
        factors = linalg.cholesky_batch(covs)
        for factor in factors:
            np.testing.assert_allclose(factor, np.tril(factor))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match="K, D, D"):
            linalg.cholesky_batch(np.eye(2))

    def test_rejects_non_pd(self):
        not_pd = np.array([[[1.0, 2.0], [2.0, 1.0]]])  # det < 0
        with pytest.raises(linalg.NotPositiveDefiniteError):
            linalg.cholesky_batch(not_pd)


class TestRegularize:
    def test_adds_to_diagonal_only(self):
        covs = np.zeros((2, 2, 2))
        out = linalg.regularize_covariances(covs, 0.5)
        np.testing.assert_allclose(out[0], 0.5 * np.eye(2))
        np.testing.assert_allclose(out[1], 0.5 * np.eye(2))

    def test_does_not_mutate_input(self):
        covs = np.eye(2)[None, :, :].copy()
        linalg.regularize_covariances(covs, 1.0)
        np.testing.assert_allclose(covs[0], np.eye(2))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            linalg.regularize_covariances(np.eye(2)[None], -1.0)


class TestEnsurePositiveDefinite:
    def test_repairs_singular_matrix(self):
        singular = np.array([[[1.0, 1.0], [1.0, 1.0]]])
        repaired = linalg.ensure_positive_definite(singular, 1e-6)
        linalg.cholesky_batch(repaired)  # should not raise

    def test_symmetrises(self):
        asym = np.array([[[2.0, 0.1], [0.0, 2.0]]])
        repaired = linalg.ensure_positive_definite(asym)
        np.testing.assert_allclose(repaired[0], repaired[0].T)

    def test_leaves_good_matrices_nearly_unchanged(self, rng):
        covs = _random_spd_batch(rng)
        repaired = linalg.ensure_positive_definite(covs, 1e-9)
        np.testing.assert_allclose(repaired, covs, atol=1e-8)


class TestLogDet:
    def test_matches_slogdet(self, rng):
        covs = _random_spd_batch(rng, k=5)
        factors = linalg.cholesky_batch(covs)
        expected = np.array([np.linalg.slogdet(c)[1] for c in covs])
        np.testing.assert_allclose(
            linalg.log_det_from_cholesky(factors), expected, rtol=1e-10
        )


class TestMahalanobis:
    def test_identity_covariance_is_euclidean(self, rng):
        points = rng.standard_normal((10, 2))
        means = rng.standard_normal((3, 2))
        factors = linalg.cholesky_batch(np.tile(np.eye(2), (3, 1, 1)))
        got = linalg.mahalanobis_squared_batch(points, means, factors)
        expected = np.array(
            [[np.sum((p - m) ** 2) for m in means] for p in points]
        )
        np.testing.assert_allclose(got, expected, rtol=1e-10)

    def test_zero_at_mean(self, rng):
        covs = _random_spd_batch(rng, k=2)
        means = rng.standard_normal((2, 2))
        factors = linalg.cholesky_batch(covs)
        got = linalg.mahalanobis_squared_batch(means, means, factors)
        assert got[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert got[1, 1] == pytest.approx(0.0, abs=1e-12)


class TestLogGaussianDensity:
    def test_matches_direct_formula(self, rng):
        covs = _random_spd_batch(rng, k=3)
        means = rng.standard_normal((3, 2))
        points = rng.standard_normal((20, 2))
        got = linalg.log_gaussian_density(points, means, covs)
        for j in range(3):
            inv = np.linalg.inv(covs[j])
            det = np.linalg.det(covs[j])
            for i, x in enumerate(points):
                diff = x - means[j]
                expected = -0.5 * (
                    2 * np.log(2 * np.pi)
                    + np.log(det)
                    + diff @ inv @ diff
                )
                assert got[i, j] == pytest.approx(expected, rel=1e-9)

    def test_standard_normal_peak(self):
        got = linalg.log_gaussian_density(
            np.zeros((1, 2)), np.zeros((1, 2)), np.eye(2)[None]
        )
        assert got[0, 0] == pytest.approx(-np.log(2 * np.pi))


class TestLogSumExp:
    def test_matches_naive_on_moderate_values(self, rng):
        values = rng.uniform(-10, 10, size=(8, 5))
        naive = np.log(np.sum(np.exp(values), axis=1))
        np.testing.assert_allclose(
            linalg.logsumexp(values, axis=1), naive, rtol=1e-12
        )

    def test_handles_large_magnitudes(self):
        values = np.array([[1000.0, 1000.0]])
        got = linalg.logsumexp(values, axis=1)
        assert got[0] == pytest.approx(1000.0 + np.log(2.0))

    def test_all_minus_inf_row(self):
        values = np.array([[-np.inf, -np.inf]])
        assert linalg.logsumexp(values, axis=1)[0] == -np.inf

    def test_mixed_inf_row(self):
        values = np.array([[-np.inf, 0.0]])
        assert linalg.logsumexp(values, axis=1)[0] == pytest.approx(0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-500, max_value=500),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_shift_invariance(self, row):
        # logsumexp(x + c) == logsumexp(x) + c for any constant c.
        values = np.array([row])
        shifted = linalg.logsumexp(values + 123.0, axis=1)
        base = linalg.logsumexp(values, axis=1)
        np.testing.assert_allclose(shifted, base + 123.0, rtol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=-50, max_value=50),
            min_size=1,
            max_size=20,
        )
    )
    def test_property_bounds(self, row):
        # max(x) <= logsumexp(x) <= max(x) + log(n).
        values = np.array([row])
        result = float(linalg.logsumexp(values, axis=1)[0])
        assert result >= np.max(row) - 1e-9
        assert result <= np.max(row) + np.log(len(row)) + 1e-9

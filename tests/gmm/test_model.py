"""Tests for the GaussianMixture inference model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm.model import GaussianMixture


def _simple_mixture():
    weights = np.array([0.6, 0.4])
    means = np.array([[0.0, 0.0], [5.0, 5.0]])
    covariances = np.array([np.eye(2), 2.0 * np.eye(2)])
    return GaussianMixture(weights, means, covariances)


class TestConstruction:
    def test_valid_mixture(self):
        model = _simple_mixture()
        assert model.n_components == 2
        assert model.n_features == 2

    def test_rejects_unnormalised_weights(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GaussianMixture(
                np.array([0.5, 0.6]),
                np.zeros((2, 2)),
                np.tile(np.eye(2), (2, 1, 1)),
            )

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError, match="non-negative"):
            GaussianMixture(
                np.array([1.5, -0.5]),
                np.zeros((2, 2)),
                np.tile(np.eye(2), (2, 1, 1)),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="means"):
            GaussianMixture(
                np.array([1.0]),
                np.zeros((2, 2)),
                np.tile(np.eye(2), (2, 1, 1)),
            )

    def test_rejects_bad_covariance_shape(self):
        with pytest.raises(ValueError, match="covariances"):
            GaussianMixture(
                np.array([1.0]), np.zeros((1, 2)), np.eye(2)
            )

    def test_parameters_are_copied(self):
        weights = np.array([1.0])
        model = GaussianMixture(
            weights, np.zeros((1, 2)), np.eye(2)[None]
        )
        weights[0] = 99.0
        assert model.weights[0] == 1.0

    def test_parameter_count(self):
        # K=2, D=2: 1 weight + 4 means + 6 cov entries = 11.
        assert _simple_mixture().parameter_count == 11


class TestScoring:
    def test_density_integrates_to_one_on_grid(self):
        # Riemann sum of the 2-D density over a wide grid ~ 1.
        model = _simple_mixture()
        grid = np.linspace(-10, 15, 400)
        xx, yy = np.meshgrid(grid, grid)
        points = np.column_stack([xx.ravel(), yy.ravel()])
        density = model.score_samples(points)
        cell = (grid[1] - grid[0]) ** 2
        assert np.sum(density) * cell == pytest.approx(1.0, rel=1e-3)

    def test_score_higher_at_mode_than_tail(self):
        model = _simple_mixture()
        at_mode = model.score_samples(np.array([[0.0, 0.0]]))[0]
        in_tail = model.score_samples(np.array([[20.0, 20.0]]))[0]
        assert at_mode > in_tail

    def test_single_component_matches_closed_form(self):
        model = GaussianMixture(
            np.array([1.0]), np.zeros((1, 2)), np.eye(2)[None]
        )
        got = model.score_samples(np.array([[0.0, 0.0]]))[0]
        assert got == pytest.approx(1.0 / (2.0 * np.pi))

    def test_log_score_consistency(self):
        model = _simple_mixture()
        points = np.array([[1.0, 1.0], [4.0, 6.0]])
        np.testing.assert_allclose(
            np.log(model.score_samples(points)),
            model.log_score_samples(points),
            rtol=1e-12,
        )

    def test_accepts_single_point_1d(self):
        model = _simple_mixture()
        assert model.score_samples(np.array([0.0, 0.0])).shape == (1,)

    def test_rejects_wrong_dimension(self):
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            _simple_mixture().score_samples(np.zeros((3, 5)))

    def test_mixture_is_weighted_sum_of_components(self):
        model = _simple_mixture()
        points = np.array([[2.0, 2.0], [0.0, 5.0]])
        component = np.exp(model.log_component_densities(points))
        expected = component @ model.weights
        np.testing.assert_allclose(
            model.score_samples(points), expected, rtol=1e-12
        )


class TestResponsibilities:
    def test_rows_sum_to_one(self):
        model = _simple_mixture()
        points = np.array([[0.0, 0.0], [5.0, 5.0], [2.5, 2.5]])
        resp = np.exp(model.log_responsibilities(points))
        np.testing.assert_allclose(resp.sum(axis=1), 1.0, rtol=1e-12)

    def test_predict_picks_nearest_component(self):
        model = _simple_mixture()
        labels = model.predict(np.array([[0.0, 0.0], [5.0, 5.0]]))
        assert labels[0] == 0
        assert labels[1] == 1

    @settings(max_examples=25, deadline=None)
    @given(
        x=st.floats(min_value=-50, max_value=50),
        y=st.floats(min_value=-50, max_value=50),
    )
    def test_property_responsibilities_normalised(self, x, y):
        model = _simple_mixture()
        resp = np.exp(model.log_responsibilities(np.array([[x, y]])))
        assert resp.sum() == pytest.approx(1.0, rel=1e-9)
        assert np.all(resp >= 0)


class TestSampling:
    def test_sample_shape(self, rng):
        samples = _simple_mixture().sample(100, rng)
        assert samples.shape == (100, 2)

    def test_sample_zero(self, rng):
        assert _simple_mixture().sample(0, rng).shape == (0, 2)

    def test_sample_negative_rejected(self, rng):
        with pytest.raises(ValueError, match=">= 0"):
            _simple_mixture().sample(-1, rng)

    def test_sample_moments_close(self, rng):
        model = _simple_mixture()
        samples = model.sample(50_000, rng)
        expected_mean = model.weights @ model.means
        np.testing.assert_allclose(
            samples.mean(axis=0), expected_mean, atol=0.1
        )

    def test_sample_deterministic_given_seed(self, rng_factory):
        model = _simple_mixture()
        a = model.sample(10, rng_factory(5))
        b = model.sample(10, rng_factory(5))
        np.testing.assert_array_equal(a, b)

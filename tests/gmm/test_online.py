"""Tests for the incremental (stepwise EM) GMM."""

import numpy as np
import pytest

from repro.gmm.em import EMTrainer
from repro.gmm.model import GaussianMixture
from repro.gmm.online import OnlineGmm


def _blob(rng, center, n=400, std=0.5):
    return center + std * rng.standard_normal((n, 2))


def _initial_model(rng):
    data = np.concatenate(
        [_blob(rng, [0.0, 0.0]), _blob(rng, [6.0, 6.0])]
    )
    return EMTrainer(2, max_iter=100).fit(data, rng).model


class TestConstruction:
    def test_from_model(self, rng):
        model = _initial_model(rng)
        online = OnlineGmm.from_model(model)
        np.testing.assert_allclose(
            online.model.means, model.means, atol=1e-12
        )
        assert online.updates_applied == 0

    def test_validation(self, rng):
        model = _initial_model(rng)
        with pytest.raises(ValueError, match="step_exponent"):
            OnlineGmm.from_model(model, step_exponent=0.4)
        with pytest.raises(ValueError, match="t0"):
            OnlineGmm.from_model(model, t0=0.0)

    def test_update_validation(self, rng):
        online = OnlineGmm.from_model(_initial_model(rng))
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            online.update(np.zeros((5, 3)))
        with pytest.raises(ValueError, match="empty"):
            online.update(np.zeros((0, 2)))


class TestStationaryStream:
    def test_stays_near_batch_solution(self, rng):
        model = _initial_model(rng)
        online = OnlineGmm.from_model(model)
        holdout = np.concatenate(
            [_blob(rng, [0.0, 0.0], 300), _blob(rng, [6.0, 6.0], 300)]
        )
        before = float(
            np.mean(model.log_score_samples(holdout))
        )
        for _ in range(30):
            batch = np.concatenate(
                [_blob(rng, [0.0, 0.0], 50), _blob(rng, [6.0, 6.0], 50)]
            )
            online.update(batch)
        after = float(
            np.mean(online.model.log_score_samples(holdout))
        )
        # Stationary data: updates must not degrade the fit.
        assert after > before - 0.1
        assert online.updates_applied == 30

    def test_model_remains_valid(self, rng):
        online = OnlineGmm.from_model(_initial_model(rng))
        for _ in range(10):
            online.update(rng.standard_normal((40, 2)) * 3.0)
        model = online.model
        assert isinstance(model, GaussianMixture)
        assert model.weights.sum() == pytest.approx(1.0)
        for cov in model.covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)


class TestDrift:
    def test_tracks_moving_cluster(self, rng):
        # One cluster migrates from (6,6) to (12,12); the online model
        # must follow while a frozen model decays.
        frozen = _initial_model(rng)
        online = OnlineGmm.from_model(frozen, step_exponent=0.6)
        drifted = None
        for step in range(40):
            center = 6.0 + 6.0 * min(1.0, step / 20.0)
            drifted = np.concatenate(
                [
                    _blob(rng, [0.0, 0.0], 50),
                    _blob(rng, [center, center], 50),
                ]
            )
            online.update(drifted)
        final_data = np.concatenate(
            [_blob(rng, [0.0, 0.0], 300), _blob(rng, [12.0, 12.0], 300)]
        )
        online_ll = float(
            np.mean(online.model.log_score_samples(final_data))
        )
        frozen_ll = float(
            np.mean(frozen.log_score_samples(final_data))
        )
        assert online_ll > frozen_ll + 1.0

    def test_learning_rate_decays(self, rng):
        online = OnlineGmm.from_model(_initial_model(rng))
        first = online._learning_rate()
        for _ in range(20):
            online.update(rng.standard_normal((20, 2)))
        assert online._learning_rate() < first

    def test_score_samples_interface(self, rng):
        online = OnlineGmm.from_model(_initial_model(rng))
        points = rng.standard_normal((50, 2))
        np.testing.assert_array_equal(
            online.score_samples(points),
            online.model.score_samples(points),
        )

"""Tests for the EM trainer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gmm.em import EMTrainer, fit_gmm
from repro.gmm.model import GaussianMixture


def _two_blob_data(rng, n_per=300):
    a = rng.multivariate_normal([0.0, 0.0], np.eye(2), size=n_per)
    b = rng.multivariate_normal([8.0, 8.0], 0.5 * np.eye(2), size=n_per)
    data = np.concatenate([a, b])
    rng.shuffle(data)
    return data


class TestValidation:
    def test_rejects_bad_n_components(self):
        with pytest.raises(ValueError, match="n_components"):
            EMTrainer(0)

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError, match="max_iter"):
            EMTrainer(2, max_iter=0)

    def test_rejects_bad_tol(self):
        with pytest.raises(ValueError, match="tol"):
            EMTrainer(2, tol=0.0)

    def test_rejects_unknown_init(self):
        with pytest.raises(ValueError, match="init"):
            EMTrainer(2, init="magic")

    def test_rejects_bad_n_init(self):
        with pytest.raises(ValueError, match="n_init"):
            EMTrainer(2, n_init=0)

    def test_rejects_1d_points(self, rng):
        with pytest.raises(ValueError, match=r"\(N, D\)"):
            EMTrainer(2).fit(np.zeros(10), rng)

    def test_rejects_too_few_points(self, rng):
        with pytest.raises(ValueError, match="at least"):
            EMTrainer(5).fit(np.zeros((3, 2)), rng)


class TestFit:
    def test_recovers_two_blobs(self, rng):
        data = _two_blob_data(rng)
        result = EMTrainer(2, max_iter=200).fit(data, rng)
        means = result.model.means
        # One mean near each blob center, order-free.
        d0 = np.linalg.norm(means - np.array([0.0, 0.0]), axis=1)
        d8 = np.linalg.norm(means - np.array([8.0, 8.0]), axis=1)
        assert np.min(d0) < 0.5
        assert np.min(d8) < 0.5

    def test_weights_roughly_balanced(self, rng):
        data = _two_blob_data(rng)
        result = EMTrainer(2, max_iter=200).fit(data, rng)
        np.testing.assert_allclose(
            np.sort(result.model.weights), [0.5, 0.5], atol=0.1
        )

    def test_log_likelihood_monotone(self, rng):
        data = _two_blob_data(rng)
        result = EMTrainer(3, max_iter=50, tol=1e-12).fit(data, rng)
        history = np.array(result.history)
        # EM guarantee: likelihood never decreases (small float slack).
        assert np.all(np.diff(history) >= -1e-8)

    def test_converged_flag_set_on_easy_problem(self, rng):
        data = _two_blob_data(rng)
        result = EMTrainer(2, max_iter=500, tol=1e-6).fit(data, rng)
        assert result.converged
        assert result.n_iter <= 500

    def test_random_init_also_works(self, rng):
        data = _two_blob_data(rng)
        result = EMTrainer(2, init="random", max_iter=300).fit(data, rng)
        assert result.log_likelihood > -5.0

    def test_n_init_picks_best(self, rng):
        data = _two_blob_data(rng)
        single = EMTrainer(2, n_init=1).fit(
            data, np.random.default_rng(0)
        )
        multi = EMTrainer(2, n_init=4).fit(
            data, np.random.default_rng(0)
        )
        assert multi.log_likelihood >= single.log_likelihood - 1e-9

    def test_deterministic_given_seed(self, rng_factory):
        data = _two_blob_data(np.random.default_rng(1))
        a = EMTrainer(2).fit(data, rng_factory(42))
        b = EMTrainer(2).fit(data, rng_factory(42))
        np.testing.assert_array_equal(a.model.means, b.model.means)
        assert a.n_iter == b.n_iter

    def test_single_component_matches_sample_moments(self, rng):
        data = rng.standard_normal((500, 2)) * 2.0 + 3.0
        result = EMTrainer(1, max_iter=10).fit(data, rng)
        np.testing.assert_allclose(
            result.model.means[0], data.mean(axis=0), atol=1e-6
        )
        np.testing.assert_allclose(
            result.model.covariances[0],
            np.cov(data.T, bias=True),
            atol=1e-4,
        )

    def test_duplicate_points_do_not_crash(self, rng):
        # Degenerate data: covariance collapses; reg_covar must save it.
        data = np.repeat(np.array([[1.0, 2.0], [5.0, 6.0]]), 50, axis=0)
        result = EMTrainer(2, reg_covar=1e-4).fit(data, rng)
        assert isinstance(result.model, GaussianMixture)
        assert np.all(np.isfinite(result.model.covariances))

    def test_fit_gmm_wrapper(self, rng):
        data = _two_blob_data(rng)
        model = fit_gmm(data, 2, rng, max_iter=50)
        assert isinstance(model, GaussianMixture)
        assert model.n_components == 2

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_final_model_valid(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.standard_normal((120, 2)) * np.array([3.0, 1.0])
        result = EMTrainer(3, max_iter=30).fit(data, rng)
        model = result.model
        assert model.weights.sum() == pytest.approx(1.0, rel=1e-9)
        assert np.all(model.weights >= 0)
        assert np.all(np.isfinite(model.means))
        # Covariances remain positive-definite.
        for cov in model.covariances:
            eigenvalues = np.linalg.eigvalsh(cov)
            assert np.all(eigenvalues > 0)


class TestMoreComponentsFitBetter:
    def test_likelihood_improves_with_k(self, rng):
        data = _two_blob_data(rng)
        one = EMTrainer(1).fit(data, np.random.default_rng(0))
        two = EMTrainer(2).fit(data, np.random.default_rng(0))
        assert two.log_likelihood > one.log_likelihood


class TestZeroMassComponent:
    def test_m_step_dead_component_stays_positive_definite(self):
        """A component with zero responsibility mass must degrade to
        the regularized zero covariance (as the pre-vectorization
        per-component loop did), not a -mean*mean^T artifact --
        even on data far from the origin."""
        rng = np.random.default_rng(0)
        points = rng.normal(1000.0, 1.0, size=(50, 2))
        responsibilities = np.zeros((50, 3))
        responsibilities[:25, 0] = 1.0
        responsibilities[25:, 1] = 1.0  # component 2 gets no mass
        trainer = EMTrainer(3, reg_covar=1e-6)
        weights, means, covariances = trainer._m_step(
            points, responsibilities
        )
        np.testing.assert_allclose(
            covariances[2], 1e-6 * np.eye(2), atol=1e-12
        )
        for cov in covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_fit_on_extreme_raw_scale_data(self):
        """Tight far-from-origin clusters (variance ~1e-8 at offset
        ~1e8) must not crash EM: the shifted-moment covariance would
        lose the variance to cancellation without the guard."""
        rng = np.random.default_rng(0)
        points = np.concatenate(
            [
                rng.normal(1e8, 1e-4, size=(500, 2)),
                rng.normal(0.0, 1.0, size=(500, 2)),
            ]
        )
        result = EMTrainer(2, max_iter=20).fit(points, rng)
        for cov in result.model.covariances:
            assert np.all(np.linalg.eigvalsh(cov) > 0)

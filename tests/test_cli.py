"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_trace_csv, load_trace_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate-trace", "quake", "-o", "x.csv"]
            )


class TestGenerateTrace:
    def test_writes_npz(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        code = main(
            [
                "generate-trace",
                "heap",
                "-n",
                "2000",
                "-o",
                str(path),
                "--scale",
                "0.03125",
            ]
        )
        assert code == 0
        trace = load_trace_npz(path)
        assert len(trace) == 2000
        assert "wrote 2000 requests" in capsys.readouterr().out

    def test_writes_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert main(
            ["generate-trace", "stream", "-n", "500", "-o", str(path)]
        ) == 0
        assert len(load_trace_csv(path)) == 500

    def test_rejects_unknown_extension(self, tmp_path, capsys):
        path = tmp_path / "trace.parquet"
        code = main(
            ["generate-trace", "heap", "-n", "10", "-o", str(path)]
        )
        assert code == 2
        assert "must end in" in capsys.readouterr().err

    def test_seed_reproducible(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        for path in (a, b):
            main(
                [
                    "generate-trace",
                    "dlrm",
                    "-n",
                    "1000",
                    "-o",
                    str(path),
                    "--seed",
                    "7",
                ]
            )
        np.testing.assert_array_equal(
            load_trace_npz(a).addresses, load_trace_npz(b).addresses
        )


class TestRun:
    def test_run_prints_strategy_table(self, capsys):
        code = main(
            [
                "run",
                "stream",
                "--trace-length",
                "40000",
                "--components",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lru" in out
        assert "gmm-caching-eviction" in out
        assert "best:" in out


class TestSuite:
    def test_suite_two_workloads(self, capsys):
        code = main(
            [
                "suite",
                "--workloads",
                "stream",
                "heap",
                "--trace-length",
                "40000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction_points" in out
        assert "reduction_percent" in out


class TestServe:
    def test_serve_replays_and_reports(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "stream",
                "--length",
                "30000",
                "--chunk",
                "2048",
                "--components",
                "6",
                "--no-refresh",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard:0" in out
        assert "tenant:0" in out
        assert "tenant:1" in out
        assert "miss rate" in out
        assert "0 engine swap(s)" in out

    def test_serve_with_drift_refreshes(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "60000",
                "--chunk",
                "4096",
                "--components",
                "6",
                "--drift",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine swapped" in out
        assert "generation" in out

    def test_serve_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--length",
                    "5000",
                    "--strategy",
                    "banana",
                ]
            )

    def test_serve_rejects_indivisible_shards(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "20000",
                "--components",
                "6",
                "--shards",
                "7",
                "--no-refresh",
            ]
        )
        assert code == 2
        assert "divide" in capsys.readouterr().err


class TestHardwareReport:
    def test_report_contains_table2(self, capsys):
        assert main(["hardware-report"]) == 0
        out = capsys.readouterr().out
        assert "LSTM" in out
        assert "339" in out
        assert "15,4" in out  # the ~15,433x speedup

"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.traces.io import load_trace_csv, load_trace_npz


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate-trace", "quake", "-o", "x.csv"]
            )


class TestGenerateTrace:
    def test_writes_npz(self, tmp_path, capsys):
        path = tmp_path / "trace.npz"
        code = main(
            [
                "generate-trace",
                "heap",
                "-n",
                "2000",
                "-o",
                str(path),
                "--scale",
                "0.03125",
            ]
        )
        assert code == 0
        trace = load_trace_npz(path)
        assert len(trace) == 2000
        assert "wrote 2000 requests" in capsys.readouterr().out

    def test_writes_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        assert main(
            ["generate-trace", "stream", "-n", "500", "-o", str(path)]
        ) == 0
        assert len(load_trace_csv(path)) == 500

    def test_rejects_unknown_extension(self, tmp_path, capsys):
        path = tmp_path / "trace.parquet"
        code = main(
            ["generate-trace", "heap", "-n", "10", "-o", str(path)]
        )
        assert code == 2
        assert "must end in" in capsys.readouterr().err

    def test_seed_reproducible(self, tmp_path):
        a = tmp_path / "a.npz"
        b = tmp_path / "b.npz"
        for path in (a, b):
            main(
                [
                    "generate-trace",
                    "dlrm",
                    "-n",
                    "1000",
                    "-o",
                    str(path),
                    "--seed",
                    "7",
                ]
            )
        np.testing.assert_array_equal(
            load_trace_npz(a).addresses, load_trace_npz(b).addresses
        )


class TestRun:
    def test_run_prints_strategy_table(self, capsys):
        code = main(
            [
                "run",
                "stream",
                "--trace-length",
                "40000",
                "--components",
                "8",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lru" in out
        assert "gmm-caching-eviction" in out
        assert "best:" in out


class TestSuite:
    def test_suite_two_workloads(self, capsys):
        code = main(
            [
                "suite",
                "--workloads",
                "stream",
                "heap",
                "--trace-length",
                "40000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reduction_points" in out
        assert "reduction_percent" in out


class TestServe:
    def test_serve_replays_and_reports(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "stream",
                "--length",
                "30000",
                "--chunk",
                "2048",
                "--components",
                "6",
                "--no-refresh",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shard:0" in out
        assert "tenant:0" in out
        assert "tenant:1" in out
        assert "miss rate" in out
        assert "0 engine swap(s)" in out

    def test_serve_with_drift_refreshes(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "60000",
                "--chunk",
                "4096",
                "--components",
                "6",
                "--drift",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine swapped" in out
        assert "generation" in out

    def test_serve_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "serve",
                    "--length",
                    "5000",
                    "--strategy",
                    "banana",
                ]
            )

    def test_serve_rejects_indivisible_shards(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "20000",
                "--components",
                "6",
                "--shards",
                "7",
                "--no-refresh",
            ]
        )
        assert code == 2
        assert "divide" in capsys.readouterr().err


class TestHardwareReport:
    def test_report_contains_table2(self, capsys):
        assert main(["hardware-report"]) == 0
        out = capsys.readouterr().out
        assert "LSTM" in out
        assert "339" in out
        assert "15,4" in out  # the ~15,433x speedup


class TestTelemetryCapture:
    """--telemetry-out / --json plumbing plus the metrics and top
    subcommands that re-render a captured snapshot."""

    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "serve.json"
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "16384",
                "--chunk",
                "2048",
                "--components",
                "6",
                "--no-refresh",
                "--telemetry-out",
                str(path),
            ]
        )
        assert code == 0
        return path

    def test_snapshot_file_is_canonical_json(self, snapshot_path):
        payload = json.loads(snapshot_path.read_text())
        assert payload["schema"] == "repro.telemetry/v1"
        assert len(payload["digest"]) == 64
        assert payload["extra"]["command"] == "serve"
        names = {f["name"] for f in payload["metrics"]}
        assert "serving_chunks_total" in names

    def test_serve_json_owns_stdout(self, capsys):
        code = main(
            [
                "serve",
                "--workloads",
                "memtier",
                "--length",
                "8192",
                "--chunk",
                "2048",
                "--components",
                "6",
                "--no-refresh",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        payload = json.loads(out)  # pure JSON, no tables mixed in
        assert payload["extra"]["command"] == "serve"
        assert "summary" in payload["extra"]

    def test_fabric_writes_prometheus_and_trace(self, tmp_path, capsys):
        prom = tmp_path / "fabric.prom"
        trace = tmp_path / "fabric.trace.json"
        for target in (prom, trace):
            code = main(
                [
                    "fabric",
                    "stream",
                    "--trace-length",
                    "20000",
                    "--devices",
                    "2",
                    "--telemetry-out",
                    str(target),
                ]
            )
            assert code == 0
        capsys.readouterr()
        text = prom.read_text()
        assert "# HELP fabric_chunks_total" in text
        assert "# TYPE fabric_chunks_total counter" in text
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e["ph"] == "X" for e in events)

    def test_metrics_renders_prometheus(self, snapshot_path, capsys):
        assert main(["metrics", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serving_chunks_total counter" in out

    def test_metrics_renders_trace(self, snapshot_path, capsys):
        assert (
            main(
                ["metrics", str(snapshot_path), "--format", "trace"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert "traceEvents" in payload

    def test_metrics_json_round_trips_digest(
        self, snapshot_path, capsys
    ):
        assert (
            main(["metrics", str(snapshot_path), "--format", "json"])
            == 0
        )
        rendered = json.loads(capsys.readouterr().out)
        original = json.loads(snapshot_path.read_text())
        assert rendered["digest"] == original["digest"]

    def test_metrics_rejects_non_snapshot(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"schema": "other/v9"}')
        assert main(["metrics", str(bogus)]) == 2
        assert "snapshot" in capsys.readouterr().err

    def test_top_renders_dashboard(self, snapshot_path, capsys):
        assert main(["top", str(snapshot_path)]) == 0
        out = capsys.readouterr().out
        assert "serving_chunks_total" in out
        assert "spans" in out

    def test_chaos_json_carries_scorecard(self, capsys):
        code = main(
            [
                "chaos",
                "--scenarios",
                "device_failure",
                "--length",
                "8192",
                "--chunk",
                "2048",
                "--devices",
                "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        rows = payload["extra"]["scenarios"]
        assert rows and rows[0]["scenario"] == "device_failure"
        assert "timeline_digest" in rows[0]

    def test_run_accepts_telemetry_out(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        code = main(
            [
                "run",
                "stream",
                "--trace-length",
                "40000",
                "--telemetry-out",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["extra"]["command"] == "run"
        names = {f["name"] for f in payload["metrics"]}
        assert "pipeline_stage_calls_total" in names

"""Property test: the two simulators agree on cache behaviour.

The fast statistical simulator (:func:`repro.cache.setassoc.simulate`)
and the cycle-level dataflow (:mod:`repro.desim`) share the policy
objects but implement the request loop independently.  On any request
stream they must produce identical hit/miss/eviction counters -- a
strong cross-check on both implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import (
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    SlruPolicy,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.desim.dataflow import IcgmmDataflow


def _cache():
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=4 * 4 * 4096, block_bytes=4096, associativity=4
        )
    )


def _compare(pages, writes, scores, make_policy):
    fast_stats = simulate(
        _cache(), make_policy(), pages, writes, scores=scores
    )
    slow = IcgmmDataflow(cache=_cache(), policy=make_policy())
    slow_result = slow.run(pages, writes, scores)
    for field in (
        "hits",
        "misses",
        "bypasses",
        "bypassed_writes",
        "fills",
        "evictions",
        "dirty_evictions",
        "write_hits",
        "write_misses",
    ):
        assert getattr(fast_stats, field) == getattr(
            slow_result.stats, field
        ), field


POLICY_FACTORIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "lfu": LfuPolicy,
    "slru": SlruPolicy,
    "gmm": lambda: GmmCachePolicy(threshold=0.5),
}


@pytest.mark.parametrize("policy_name", sorted(POLICY_FACTORIES))
@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_simulators_agree(policy_name, seed):
    rng = np.random.default_rng(seed)
    n = 300
    pages = rng.integers(0, 40, size=n)
    writes = rng.random(n) < 0.3
    scores = rng.random(n)
    _compare(pages, writes, scores, POLICY_FACTORIES[policy_name])

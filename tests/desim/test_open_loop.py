"""Tests for the open-loop (queueing) dataflow mode."""

import numpy as np
import pytest

from repro.cache.policies import LruPolicy
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.desim.dataflow import IcgmmDataflow
from repro.desim.kernels import open_loop_source


def _dataflow(ways=2, sets=2):
    cache = SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )
    return IcgmmDataflow(cache=cache, policy=LruPolicy())


class TestOpenLoop:
    def test_slow_arrivals_match_closed_loop_service(self):
        # Interval far above the worst service time: no queueing, so
        # latencies equal the closed-loop service times.
        pages = np.array([0, 0, 1, 1])
        writes = np.zeros(4, dtype=bool)
        closed = _dataflow().run(pages, writes)
        open_slow = _dataflow().run(
            pages, writes, open_loop_interval_ns=10_000_000
        )
        np.testing.assert_array_equal(
            closed.latencies_ns, open_slow.latencies_ns
        )

    def test_fast_arrivals_accumulate_queueing_delay(self):
        # All misses at 75 us service, arrivals every 1 us: the queue
        # grows and later requests see far more than service time.
        pages = np.arange(12)
        writes = np.zeros(12, dtype=bool)
        result = _dataflow(ways=4, sets=4).run(
            pages, writes, open_loop_interval_ns=1_000
        )
        assert result.latencies_ns[0] == pytest.approx(75_010, abs=20)
        # The last request waited behind many 75 us services.
        assert result.latencies_ns[-1] > 5 * 75_000

    def test_open_loop_throughput_bounded_by_service(self):
        # Total completion time ~ n_misses x SSD read regardless of
        # the arrival rate.
        pages = np.arange(10)
        writes = np.zeros(10, dtype=bool)
        result = _dataflow(ways=4, sets=4).run(
            pages, writes, open_loop_interval_ns=100
        )
        assert result.total_time_ns >= 10 * 75_000

    def test_same_cache_behaviour_as_closed_loop(self, rng):
        pages = rng.integers(0, 10, size=200)
        writes = rng.random(200) < 0.3
        closed = _dataflow().run(pages, writes)
        opened = _dataflow().run(
            pages, writes, open_loop_interval_ns=500
        )
        assert closed.stats.hits == opened.stats.hits
        assert closed.stats.misses == opened.stats.misses
        assert (
            closed.stats.dirty_evictions
            == opened.stats.dirty_evictions
        )

    def test_rejects_negative_interval(self):
        source = open_loop_source(None, [], None, -1, [])
        with pytest.raises(ValueError, match="interval_ns"):
            next(source)

    def test_zero_interval_back_to_back(self):
        pages = np.array([0, 0, 0])
        writes = np.zeros(3, dtype=bool)
        result = _dataflow().run(
            pages, writes, open_loop_interval_ns=0
        )
        assert result.stats.hits == 2

"""Tests for the ICGMM dataflow simulation (overlap claim etc.)."""

import numpy as np
import pytest

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.desim.dataflow import IcgmmDataflow
from repro.desim.kernels import DataflowTiming
from repro.hardware.ssd import SsdLatencyEmulator, get_ssd_spec


def _cache(ways=2, sets=2):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


def _run(pages, writes=None, scores=None, policy=None, timing=None,
         ways=2, sets=2):
    pages = np.asarray(pages)
    if writes is None:
        writes = np.zeros(len(pages), dtype=bool)
    dataflow = IcgmmDataflow(
        cache=_cache(ways, sets),
        policy=policy if policy is not None else LruPolicy(),
        ssd=SsdLatencyEmulator(get_ssd_spec("tlc")),
        timing=timing,
    )
    return dataflow.run(pages, np.asarray(writes), scores)


class TestLatencies:
    def test_hit_takes_one_microsecond(self):
        result = _run([0, 0])
        # Second access hits: 1 us.
        assert result.latencies_ns[1] == 1_000

    def test_clean_miss_takes_ssd_read(self):
        result = _run([0])
        # 10 ns tag compare + 75 us SSD read.
        assert result.latencies_ns[0] == 10 + 75_000

    def test_dirty_eviction_adds_write_back(self):
        # Set 0 (2 ways): write 0, fill 2, fill 4 evicting dirty 0.
        result = _run([0, 2, 4], writes=[True, False, False])
        assert result.latencies_ns[2] == 10 + 75_000 + 900_000

    def test_bypassed_write_pays_flash_program(self):
        policy = GmmCachePolicy(threshold=0.5)
        result = _run(
            [0],
            writes=[True],
            scores=np.array([0.0]),
            policy=policy,
        )
        assert result.latencies_ns[0] == 10 + 75_000 + 900_000

    def test_average_latency_us(self):
        result = _run([0, 0])
        expected = ((10 + 75_000) + 1_000) / 2 / 1_000
        assert result.average_latency_us == pytest.approx(expected)

    def test_percentile(self):
        result = _run([0, 0, 0, 0])
        assert result.percentile_us(50) == pytest.approx(1.0)


class TestOverlapClaim:
    def test_gmm_latency_hidden_by_dataflow(self):
        # Sec. 5.3: the 3 us GMM inference overlaps the 75 us read, so
        # the dataflow miss path equals the SSD latency...
        overlapped = _run([0], timing=DataflowTiming(overlap=True))
        assert overlapped.latencies_ns[0] == 10 + 75_000

    def test_sequential_control_pays_gmm_latency(self):
        # ...whereas naive sequential control pays 3 us extra per miss.
        sequential = _run([0], timing=DataflowTiming(overlap=False))
        assert sequential.latencies_ns[0] == 10 + 3_000 + 75_000

    def test_overlap_saving_scales_with_misses(self):
        pages = list(range(20))  # all misses
        fast = _run(pages, timing=DataflowTiming(overlap=True))
        slow = _run(pages, timing=DataflowTiming(overlap=False))
        saving = slow.total_time_ns - fast.total_time_ns
        assert saving == 20 * 3_000


class TestAgreementWithFastSimulator:
    def test_same_hit_miss_counts_as_simulate(self, rng):
        # The dataflow and the fast simulator share policy logic; their
        # hit/miss/eviction counters must agree exactly.
        pages = rng.integers(0, 30, size=500)
        writes = rng.random(500) < 0.3
        scores = rng.random(500)

        fast_cache = _cache(ways=4, sets=4)
        fast_policy = GmmCachePolicy(threshold=0.4)
        fast_stats = simulate(
            fast_cache, fast_policy, pages, writes, scores=scores
        )

        slow_policy = GmmCachePolicy(threshold=0.4)
        dataflow = IcgmmDataflow(
            cache=_cache(ways=4, sets=4), policy=slow_policy
        )
        result = dataflow.run(pages, writes, scores)

        assert result.stats.hits == fast_stats.hits
        assert result.stats.misses == fast_stats.misses
        assert result.stats.bypasses == fast_stats.bypasses
        assert result.stats.evictions == fast_stats.evictions
        assert result.stats.dirty_evictions == fast_stats.dirty_evictions


class TestValidation:
    def test_shape_mismatch(self):
        dataflow = IcgmmDataflow(cache=_cache(), policy=LruPolicy())
        with pytest.raises(ValueError, match="same shape"):
            dataflow.run(np.array([1, 2]), np.array([False]))

    def test_score_shape_mismatch(self):
        dataflow = IcgmmDataflow(cache=_cache(), policy=LruPolicy())
        with pytest.raises(ValueError, match="scores"):
            dataflow.run(
                np.array([1]), np.array([False]), np.array([0.1, 0.2])
            )

    def test_empty_run(self):
        dataflow = IcgmmDataflow(cache=_cache(), policy=LruPolicy())
        result = dataflow.run(
            np.array([], dtype=int), np.array([], dtype=bool)
        )
        assert result.average_latency_us == 0.0
        assert result.percentile_us(99) == 0.0

    def test_timing_validation(self):
        with pytest.raises(ValueError, match="hit_latency"):
            DataflowTiming(tag_compare_ns=2_000, hit_latency_ns=1_000)
        with pytest.raises(ValueError, match="gmm_latency"):
            DataflowTiming(gmm_latency_ns=-1)

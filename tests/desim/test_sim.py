"""Tests for the discrete-event kernel and FIFOs."""

import pytest

from repro.desim.sim import Delay, Fifo, Simulator


class TestScheduler:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(30, lambda: order.append("c"))
        sim.schedule(10, lambda: order.append("a"))
        sim.schedule(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 30

    def test_equal_times_fifo_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5, lambda: order.append(1))
        sim.schedule(5, lambda: order.append(2))
        sim.schedule(5, lambda: order.append(3))
        sim.run()
        assert order == [1, 2, 3]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        sim.run(until_ns=50)
        assert fired == ["early"]
        assert sim.now == 50
        sim.run()
        assert fired == ["early", "late"]

    def test_rejects_negative_delay(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)
        with pytest.raises(ValueError):
            Delay(-5)


class TestProcesses:
    def test_delay_advances_time(self):
        sim = Simulator()
        times = []

        def body():
            yield Delay(100)
            times.append(sim.now)
            yield Delay(50)
            times.append(sim.now)

        sim.process(body())
        sim.run()
        assert times == [100, 150]

    def test_unknown_command_raises(self):
        sim = Simulator()

        def body():
            yield "banana"

        sim.process(body())
        with pytest.raises(TypeError, match="unknown command"):
            sim.run()

    def test_process_finishes(self):
        sim = Simulator()

        def body():
            yield Delay(1)

        proc = sim.process(body())
        sim.run()
        assert proc.finished


class TestFifo:
    def test_put_then_get(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=2)
        received = []

        def producer():
            yield fifo.put("x")
            yield fifo.put("y")

        def consumer():
            a = yield fifo.get()
            b = yield fifo.get()
            received.extend([a, b])

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == ["x", "y"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=1)
        arrival = []

        def consumer():
            item = yield fifo.get()
            arrival.append((item, sim.now))

        def producer():
            yield Delay(500)
            yield fifo.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert arrival == [("late", 500)]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=1)
        done_times = []

        def producer():
            yield fifo.put(1)  # fills capacity
            yield fifo.put(2)  # must wait for the consumer
            done_times.append(sim.now)

        def consumer():
            yield Delay(1000)
            yield fifo.get()
            yield fifo.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert done_times[0] >= 1000

    def test_fifo_ordering_preserved(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=8)
        received = []

        def producer():
            for i in range(5):
                yield fifo.put(i)

        def consumer():
            for _ in range(5):
                item = yield fifo.get()
                received.append(item)

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert received == [0, 1, 2, 3, 4]

    def test_rejects_zero_capacity(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Fifo(sim, capacity=0)

    def test_len_reflects_buffered_items(self):
        sim = Simulator()
        fifo = Fifo(sim, capacity=4)

        def producer():
            yield fifo.put("a")
            yield fifo.put("b")

        sim.process(producer())
        sim.run()
        assert len(fifo) == 2
        assert not fifo.is_full

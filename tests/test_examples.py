"""Smoke tests: every example script must run to completion.

The heavyweight examples are shrunk via argv/config monkey-patching
where possible; the goal is catching API drift, not re-verifying the
numbers (the benches do that).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_six_examples(self):
        scripts = sorted(EXAMPLES_DIR.glob("*.py"))
        assert len(scripts) >= 6
        names = {script.stem for script in scripts}
        assert "quickstart" in names


class TestRunnableExamples:
    def test_fpga_resource_report(self, capsys):
        _load("fpga_resource_report").main()
        out = capsys.readouterr().out
        assert "15,4" in out  # the speedup figure

    def test_dataflow_overlap(self, capsys):
        _load("dataflow_overlap").main()
        out = capsys.readouterr().out
        assert "3.00 us per miss" in out

    def test_trace_explorer(self, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["trace_explorer.py", "heap", "30000"]
        )
        _load("trace_explorer").main()
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "heap" in out

    def test_trace_explorer_rejects_unknown(self, monkeypatch):
        monkeypatch.setattr(
            sys, "argv", ["trace_explorer.py", "quake"]
        )
        module = _load("trace_explorer")
        with pytest.raises(SystemExit):
            module.main()

    def test_online_adaptation(self, capsys):
        _load("online_adaptation").main()
        out = capsys.readouterr().out
        assert "recovers" in out

    def test_streaming_service(self, capsys):
        _load("streaming_service").main()
        out = capsys.readouterr().out
        assert "engine swap at chunk" in out
        assert "recovers" in out
        assert "frozen offline" in out

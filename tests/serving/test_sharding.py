"""Tests for the sharded cache planes."""

import numpy as np
import pytest

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.cache.simulate_fast import simulate_fast
from repro.serving.sharding import ShardedCachePlanes


def _geometry(n_sets=64, ways=4):
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


class TestConstruction:
    def test_capacity_splits_evenly(self):
        planes = ShardedCachePlanes(_geometry(64, 4), n_shards=4)
        assert len(planes.caches) == 4
        assert planes.shard_geometry.n_sets == 16
        assert (
            planes.shard_geometry.capacity_bytes * 4
            == planes.geometry.capacity_bytes
        )

    def test_rejects_indivisible_shards(self):
        with pytest.raises(ValueError, match="divide"):
            ShardedCachePlanes(_geometry(30, 4), n_shards=4)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            ShardedCachePlanes(_geometry(), n_shards=2, mode="modulo")

    def test_single_shard_is_identity(self):
        planes = ShardedCachePlanes(_geometry(), n_shards=1)
        pages = np.array([5, 77, 123456])
        shard_ids, local = planes.route(pages)
        assert (shard_ids == 0).all()
        np.testing.assert_array_equal(local, pages)


class TestHashRouting:
    def test_local_mapping_is_bijective_per_shard(self):
        """(shard, local page) <-> page, and local set == global set
        restricted to the shard (the exactness precondition)."""
        geometry = _geometry(64, 4)
        planes = ShardedCachePlanes(geometry, n_shards=4)
        pages = np.arange(0, 4096)
        shard_ids, local = planes.route(pages)
        # Reconstruct: page = local * n_shards + shard.
        np.testing.assert_array_equal(
            local * 4 + shard_ids, pages
        )
        # Same (shard, local set) <=> same global set.
        global_sets = pages % geometry.n_sets
        local_sets = local % planes.shard_geometry.n_sets
        np.testing.assert_array_equal(
            global_sets, local_sets * 4 + shard_ids
        )

    def test_partition_preserves_order(self):
        planes = ShardedCachePlanes(_geometry(), n_shards=4)
        pages = np.array([4, 8, 0, 12, 5, 1, 9, 16])
        shard_ids, _ = planes.route(pages)
        positions = planes.partition(shard_ids)
        np.testing.assert_array_equal(positions[0], [0, 1, 2, 3, 7])
        np.testing.assert_array_equal(positions[1], [4, 5, 6])
        # Within a shard the positions are ascending (stream order).
        for pos in positions:
            assert (np.diff(pos) > 0).all() if pos.size > 1 else True

    @pytest.mark.parametrize("make_policy", [
        lambda: LruPolicy(),
        lambda: GmmCachePolicy(threshold=0.2),
    ])
    def test_hash_sharding_is_exact(self, make_policy):
        """Union of shard planes == the unsharded cache, counter for
        counter, under chunked resumable replay."""
        rng = np.random.default_rng(3)
        n = 20000
        pages = rng.integers(0, 900, n)
        writes = rng.random(n) < 0.3
        scores = rng.standard_normal(n)
        geometry = _geometry(64, 4)

        single_cache = SetAssociativeCache(geometry)
        expected = simulate_fast(
            single_cache, make_policy(), pages, writes, scores=scores
        )

        planes = ShardedCachePlanes(geometry, n_shards=4)
        policies = [make_policy() for _ in range(4)]
        cursors = [0] * 4
        merged = None
        for start in range(0, n, 4096):
            stop = min(start + 4096, n)
            c_pages = pages[start:stop]
            shard_ids, local = planes.route(c_pages)
            for shard, positions in enumerate(
                planes.partition(shard_ids)
            ):
                if positions.size == 0:
                    continue
                part = simulate_fast(
                    planes.caches[shard],
                    policies[shard],
                    local[positions],
                    writes[start:stop][positions],
                    scores=scores[start:stop][positions],
                    index_offset=cursors[shard],
                )
                cursors[shard] += int(positions.size)
                merged = part if merged is None else merged.merge(part)
        assert merged == expected
        # The resident pages agree (local tags map back to global).
        resident = set()
        for shard, cache in enumerate(planes.caches):
            resident |= {
                tag * 4 + shard for tag in cache.resident_pages()
            }
        assert resident == single_cache.resident_pages()
        assert planes.occupancy() == single_cache.occupancy()


class TestTenantRouting:
    def test_routes_by_partition(self):
        planes = ShardedCachePlanes(
            _geometry(), n_shards=2, mode="tenant",
            partition_pages=1000,
        )
        pages = np.array([5, 1005, 2005, 3005])
        shard_ids, local = planes.route(pages)
        np.testing.assert_array_equal(shard_ids, [0, 1, 0, 1])
        np.testing.assert_array_equal(local, pages)

"""Tests for the rolling serving metrics."""

import pytest

from repro.cache.stats import CacheStats
from repro.serving.metrics import RollingMetrics


def _stats(hits, misses, **kwargs):
    return CacheStats(hits=hits, misses=misses, **kwargs)


class TestRollingMetrics:
    def test_window_rolls(self):
        metrics = RollingMetrics(window_chunks=2)
        metrics.record("shard:0", _stats(10, 0))
        metrics.record("shard:0", _stats(0, 10))
        assert metrics.miss_rate("shard:0") == pytest.approx(0.5)
        # Third chunk evicts the first: window is now all misses.
        metrics.record("shard:0", _stats(0, 10))
        assert metrics.miss_rate("shard:0") == pytest.approx(1.0)

    def test_totals_keep_everything(self):
        metrics = RollingMetrics(window_chunks=1)
        metrics.record("k", _stats(10, 0))
        metrics.record("k", _stats(0, 10))
        assert metrics.total("k").accesses == 20
        assert metrics.total("k").miss_rate == pytest.approx(0.5)

    def test_latency_tracks_miss_mix(self):
        metrics = RollingMetrics(window_chunks=4)
        metrics.record("fast", _stats(100, 0))
        metrics.record("slow", _stats(0, 100, fills=100))
        assert metrics.latency_us("fast") == pytest.approx(1.0)
        assert metrics.latency_us("slow") > 50.0

    def test_snapshot_shares(self):
        metrics = RollingMetrics()
        metrics.record("a", _stats(30, 0))
        metrics.record("b", _stats(10, 0))
        snapshot = metrics.snapshot()
        assert snapshot["a"]["traffic_share"] == pytest.approx(0.75)
        assert snapshot["b"]["traffic_share"] == pytest.approx(0.25)

    def test_unknown_key_is_empty(self):
        metrics = RollingMetrics()
        assert metrics.total("nope").accesses == 0
        assert metrics.miss_rate("nope") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingMetrics(window_chunks=0)

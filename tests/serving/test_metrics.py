"""Tests for the rolling serving metrics."""

import numpy as np
import pytest

from repro.cache.stats import CacheStats
from repro.serving.metrics import RollingMetrics


def _stats(hits, misses, **kwargs):
    return CacheStats(hits=hits, misses=misses, **kwargs)


class TestRollingMetrics:
    def test_window_rolls(self):
        metrics = RollingMetrics(window_chunks=2)
        metrics.record("shard:0", _stats(10, 0))
        metrics.record("shard:0", _stats(0, 10))
        assert metrics.miss_rate("shard:0") == pytest.approx(0.5)
        # Third chunk evicts the first: window is now all misses.
        metrics.record("shard:0", _stats(0, 10))
        assert metrics.miss_rate("shard:0") == pytest.approx(1.0)

    def test_totals_keep_everything(self):
        metrics = RollingMetrics(window_chunks=1)
        metrics.record("k", _stats(10, 0))
        metrics.record("k", _stats(0, 10))
        assert metrics.total("k").accesses == 20
        assert metrics.total("k").miss_rate == pytest.approx(0.5)

    def test_latency_tracks_miss_mix(self):
        metrics = RollingMetrics(window_chunks=4)
        metrics.record("fast", _stats(100, 0))
        metrics.record("slow", _stats(0, 100, fills=100))
        assert metrics.latency_us("fast") == pytest.approx(1.0)
        assert metrics.latency_us("slow") > 50.0

    def test_snapshot_shares(self):
        metrics = RollingMetrics()
        metrics.record("a", _stats(30, 0))
        metrics.record("b", _stats(10, 0))
        snapshot = metrics.snapshot()
        assert snapshot["a"]["traffic_share"] == pytest.approx(0.75)
        assert snapshot["b"]["traffic_share"] == pytest.approx(0.25)

    def test_unknown_key_is_empty(self):
        metrics = RollingMetrics()
        assert metrics.total("nope").accesses == 0
        assert metrics.miss_rate("nope") == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingMetrics(window_chunks=0)

    def test_fresh_key_snapshot_is_all_zeros(self):
        """A key seen only through empty deltas must read 0.0, not NaN."""
        metrics = RollingMetrics()
        metrics.record("cold", _stats(0, 0))
        assert metrics.miss_rate("cold") == 0.0
        assert metrics.latency_us("cold") == 0.0
        snapshot = metrics.snapshot()
        assert snapshot["cold"]["miss_rate"] == 0.0
        assert snapshot["cold"]["latency_us"] == 0.0
        assert snapshot["cold"]["traffic_share"] == 0.0


class TestDegradedLens:
    def test_degraded_deltas_aggregate_separately(self):
        metrics = RollingMetrics()
        metrics.record("shard:0", _stats(80, 20))
        metrics.record("shard:0", _stats(0, 10), degraded=True)
        # Degraded traffic still lands in the ordinary views...
        assert metrics.total("shard:0").accesses == 110
        # ...and additionally under the degraded lens.
        assert metrics.degraded_total("shard:0").accesses == 10
        assert metrics.degraded_miss_rate("shard:0") == pytest.approx(
            1.0
        )
        snapshot = metrics.snapshot()
        assert snapshot["shard:0"]["degraded_accesses"] == 10.0

    def test_clean_key_has_no_degraded_fields(self):
        metrics = RollingMetrics()
        metrics.record("shard:0", _stats(10, 0))
        assert metrics.degraded_total("shard:0").accesses == 0
        assert metrics.degraded_miss_rate("shard:0") == 0.0
        # The snapshot format stays pre-chaos byte-identical.
        assert "degraded_accesses" not in metrics.snapshot()["shard:0"]


class TestFailureEvents:
    def test_events_filter_by_key(self):
        metrics = RollingMetrics()
        metrics.record_event("device:0", "device-down", 3, duration=2)
        metrics.record_event("shard:1", "stall-degraded", 4)
        assert len(metrics.events()) == 2
        only = metrics.events("device:0")
        assert [e.kind for e in only] == ["device-down"]
        assert only[0].as_dict() == {
            "key": "device:0",
            "kind": "device-down",
            "chunk_index": 3,
            "duration": 2,
        }

    def test_recovery_latencies_pair_per_key(self):
        metrics = RollingMetrics()
        metrics.record_event("device:0", "device-down", 2)
        metrics.record_event("device:1", "device-down", 3)
        metrics.record_event("device:0", "device-restored", 6)
        # device:1's outage is still open: it contributes nothing.
        assert metrics.recovery_latencies(
            "device-down", "device-restored"
        ) == [4]


class TestMergeSnapshots:
    def test_rates_are_access_weighted(self):
        a = RollingMetrics()
        a.record("tenant:0", _stats(90, 10))
        b = RollingMetrics()
        b.record("tenant:0", _stats(0, 100))
        merged = RollingMetrics.merge_snapshots(
            a.snapshot(), b.snapshot()
        )
        # 10 + 100 misses over 200 accesses -- not the mean of the
        # two miss rates (0.1 and 1.0 would average to 0.55).
        assert merged["tenant:0"]["miss_rate"] == pytest.approx(0.55)
        assert merged["tenant:0"]["accesses"] == 200.0
        assert merged["tenant:0"]["traffic_share"] == 1.0

    def test_traffic_share_spans_all_inputs(self):
        a = RollingMetrics()
        a.record("tenant:0", _stats(30, 0))
        b = RollingMetrics()
        b.record("tenant:1", _stats(10, 0))
        merged = RollingMetrics.merge_snapshots(
            a.snapshot(), b.snapshot()
        )
        assert merged["tenant:0"]["traffic_share"] == pytest.approx(
            0.75
        )
        assert merged["tenant:1"]["traffic_share"] == pytest.approx(
            0.25
        )

    def test_keys_keep_first_seen_order(self):
        a = RollingMetrics()
        a.record("tenant:b", _stats(1, 0))
        b = RollingMetrics()
        b.record("tenant:a", _stats(1, 0))
        b.record("tenant:b", _stats(1, 0))
        merged = RollingMetrics.merge_snapshots(
            a.snapshot(), b.snapshot()
        )
        assert list(merged) == ["tenant:b", "tenant:a"]

    def test_degraded_lens_survives_only_where_present(self):
        a = RollingMetrics()
        a.record("tenant:0", _stats(80, 20))
        a.record("tenant:0", _stats(0, 10), degraded=True)
        a.record("tenant:1", _stats(50, 0))
        b = RollingMetrics()
        b.record("tenant:0", _stats(10, 0))
        merged = RollingMetrics.merge_snapshots(
            a.snapshot(), b.snapshot()
        )
        assert merged["tenant:0"]["degraded_accesses"] == 10.0
        assert merged["tenant:0"][
            "degraded_miss_rate"
        ] == pytest.approx(1.0)
        # tenant:1 never served degraded traffic: plain row shape.
        assert "degraded_accesses" not in merged["tenant:1"]

    def test_empty_and_zero_access_inputs(self):
        zero = RollingMetrics()
        zero.record("cold", _stats(0, 0))
        merged = RollingMetrics.merge_snapshots({}, zero.snapshot())
        assert merged["cold"]["miss_rate"] == 0.0
        assert merged["cold"]["traffic_share"] == 0.0
        assert RollingMetrics.merge_snapshots() == {}

    def test_single_snapshot_round_trips(self):
        metrics = RollingMetrics()
        metrics.record("tenant:0", _stats(75, 25))
        metrics.record("tenant:1", _stats(40, 10))
        snapshot = metrics.snapshot()
        merged = RollingMetrics.merge_snapshots(snapshot)
        for key, row in snapshot.items():
            for field, value in row.items():
                assert merged[key][field] == pytest.approx(value)


class TestRecoveryLatencyEdgeCases:
    def test_overlapping_downs_pair_with_first(self):
        """A second down before the restore must not reset the clock:
        the pair measures the full outage, from its first down."""
        metrics = RollingMetrics()
        metrics.record_event("device:0", "device-down", 2)
        metrics.record_event("device:0", "device-down", 4)
        metrics.record_event("device:0", "device-restored", 7)
        assert metrics.recovery_latencies(
            "device-down", "device-restored"
        ) == [5]

    def test_recovery_without_failure_contributes_nothing(self):
        metrics = RollingMetrics()
        metrics.record_event("device:0", "device-restored", 3)
        assert (
            metrics.recovery_latencies(
                "device-down", "device-restored"
            )
            == []
        )

    def test_sequential_outages_pair_independently(self):
        metrics = RollingMetrics()
        metrics.record_event("device:0", "device-down", 1)
        metrics.record_event("device:0", "device-restored", 3)
        metrics.record_event("device:0", "device-down", 5)
        metrics.record_event("device:0", "device-restored", 6)
        assert metrics.recovery_latencies(
            "device-down", "device-restored"
        ) == [2, 1]

    def test_merged_timelines_pair_in_causal_order(self):
        """Two replicas each saw half of an outage; the merged view
        pairs the down with the restore across instances."""
        a = RollingMetrics()
        a.record_event("device:0", "device-down", 2)
        b = RollingMetrics()
        b.record_event("device:0", "device-restored", 5)
        merged = RollingMetrics.merge_event_timelines(
            a.events(), b.events()
        )
        assert [e.chunk_index for e in merged] == [2, 5]
        replay = RollingMetrics()
        replay._events = merged
        assert replay.recovery_latencies(
            "device-down", "device-restored"
        ) == [3]

    def test_same_tick_merge_is_input_order_independent(self):
        a = RollingMetrics()
        a.record_event("device:1", "device-down", 4)
        b = RollingMetrics()
        b.record_event("device:0", "device-down", 4)
        one = RollingMetrics.merge_event_timelines(
            a.events(), b.events()
        )
        two = RollingMetrics.merge_event_timelines(
            b.events(), a.events()
        )
        assert one == two
        assert [e.key for e in one] == ["device:0", "device:1"]


class TestEwmaSignals:
    def test_record_timed_maintains_ewmas(self):
        metrics = RollingMetrics(ewma_alpha=0.5)
        assert metrics.ewma_latency_ns("d") is None
        assert metrics.ewma_miss_rate("d") is None
        metrics.record_timed("d", _stats(90, 10), 100_000)
        # First observation seeds the estimate directly.
        assert metrics.ewma_latency_ns("d") == pytest.approx(1_000.0)
        assert metrics.ewma_miss_rate("d") == pytest.approx(0.1)
        metrics.record_timed("d", _stats(50, 50), 300_000)
        assert metrics.ewma_latency_ns("d") == pytest.approx(2_000.0)
        assert metrics.ewma_miss_rate("d") == pytest.approx(0.3)

    def test_zero_access_chunk_leaves_ewmas_untouched(self):
        metrics = RollingMetrics(ewma_alpha=0.5)
        metrics.record_timed("d", _stats(100, 0), 100_000)
        before = metrics.ewma_latency_ns("d")
        metrics.record_timed("d", _stats(0, 0), 0)
        assert metrics.ewma_latency_ns("d") == before

    def test_reset_ewma_rebases_the_estimate(self):
        metrics = RollingMetrics(ewma_alpha=0.5)
        metrics.record_timed("d", _stats(0, 100), 1_000_000)
        metrics.reset_ewma("d")
        assert metrics.ewma_latency_ns("d") is None
        # The next observation seeds fresh, with no sick history.
        metrics.record_timed("d", _stats(100, 0), 100_000)
        assert metrics.ewma_latency_ns("d") == pytest.approx(1_000.0)
        assert metrics.ewma_miss_rate("d") == pytest.approx(0.0)


class TestLatencyQuantiles:
    """Histogram p50/p99 vs exact numpy inverted-CDF percentiles."""

    def test_matches_numpy_inverted_cdf_on_edge_values(self):
        # Values drawn *from the bucket edges* make the histogram
        # estimate exact, so we can demand equality with numpy's
        # inverted_cdf method rather than a resolution bound.
        metrics = RollingMetrics()
        edges = metrics.latency_edges_us[:20]
        rng = np.random.default_rng(1234)
        values = [float(edges[i]) for i in rng.integers(0, len(edges), 200)]
        for value in values:
            metrics.observe_latency("req", value)
        for q in (0.01, 0.25, 0.5, 0.9, 0.99, 1.0):
            expected = float(
                np.percentile(values, q * 100.0, method="inverted_cdf")
            )
            assert metrics.latency_quantile("req", q) == expected, q

    def test_count_weighted_observation_equivalence(self):
        # One observe with count=n must equal n separate observes.
        batched = RollingMetrics()
        looped = RollingMetrics()
        batched.observe_latency("k", 4.0, count=5)
        batched.observe_latency("k", 64.0, count=3)
        for _ in range(5):
            looped.observe_latency("k", 4.0)
        for _ in range(3):
            looped.observe_latency("k", 64.0)
        assert batched.latency_histogram("k") == looped.latency_histogram("k")
        for q in (0.5, 0.9, 0.99):
            assert batched.latency_quantile("k", q) == looped.latency_quantile(
                "k", q
            )

    def test_overflow_bucket_resolves_to_max_observed(self):
        metrics = RollingMetrics()
        top = metrics.latency_edges_us[-1]
        metrics.observe_latency("k", top * 4.0)
        metrics.observe_latency("k", top * 2.0)
        # Both observations sit past the last edge; any quantile must
        # report the maximum actually observed, not an edge.
        assert metrics.latency_quantile("k", 0.5) == top * 4.0
        assert metrics.latency_quantile("k", 0.99) == top * 4.0

    def test_empty_key_and_helpers(self):
        metrics = RollingMetrics()
        assert metrics.latency_quantile("nope", 0.5) is None
        assert metrics.latency_histogram("nope") is None
        assert metrics.latency_p50("nope") is None
        assert metrics.latency_p99("nope") is None
        metrics.observe_latency("k", 10.0)
        assert metrics.latency_p50("k") == metrics.latency_quantile("k", 0.50)
        assert metrics.latency_p99("k") == metrics.latency_quantile("k", 0.99)

    def test_quantile_argument_validation(self):
        metrics = RollingMetrics()
        metrics.observe_latency("k", 1.0)
        with pytest.raises(ValueError):
            metrics.latency_quantile("k", 0.0)
        with pytest.raises(ValueError):
            metrics.latency_quantile("k", 1.5)
        with pytest.raises(ValueError):
            metrics.observe_latency("k", 1.0, count=0)

    def test_custom_edges(self):
        edges = (1.0, 2.0, 4.0, 8.0)
        metrics = RollingMetrics(latency_edges_us=edges)
        assert metrics.latency_edges_us == edges
        for value in (1.0, 2.0, 2.0, 8.0):
            metrics.observe_latency("k", value)
        histogram = metrics.latency_histogram("k")
        assert histogram is not None
        got_edges, counts, sum_us, total = histogram
        assert got_edges == edges
        assert counts == [1, 2, 0, 1, 0]
        assert sum_us == pytest.approx(13.0)
        assert total == 4
        assert metrics.latency_quantile("k", 0.5) == 2.0
        assert metrics.latency_quantile("k", 1.0) == 8.0

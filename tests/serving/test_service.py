"""Tests for the streaming cache service.

The headline property is the exactness contract: with ``hash``
sharding and refresh disabled, the chunked, sharded, resumable
serving loop produces *bit-identical* counters to a single-shot
:meth:`IcgmmSystem.run_strategy` over the same stream, for every
Fig. 6 strategy.
"""

import numpy as np
import pytest

from repro.cache.stats import CacheStats
from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ServingConfig,
)
from repro.core.system import IcgmmSystem
from repro.serving import IcgmmCacheService


@pytest.fixture(scope="module")
def prepared_system():
    """One trained workload shared by the equivalence matrix."""
    config = IcgmmConfig(
        trace_length=40_000,
        gmm=GmmEngineConfig(
            n_components=8, max_iter=15, max_train_samples=8_000
        ),
    )
    system = IcgmmSystem(config)
    prepared = system.prepare("memtier")
    return config, system, prepared


class TestSingleShotEquivalence:
    @pytest.mark.parametrize(
        "strategy",
        ["lru", "gmm-caching", "gmm-eviction", "gmm-caching-eviction"],
    )
    def test_sharded_chunked_loop_matches_system(
        self, prepared_system, strategy
    ):
        config, system, prepared = prepared_system
        expected = system.run_strategy(prepared, strategy).stats
        serving = ServingConfig(
            chunk_requests=3_000,
            n_shards=4,
            sharding="hash",
            strategy=strategy,
            refresh_enabled=False,
        )
        service = IcgmmCacheService(
            prepared.engine,
            config=config,
            serving=serving,
            measure_from=int(len(prepared) * config.warmup_fraction),
        )
        service.ingest(prepared.page_indices, prepared.is_write)
        assert service.totals == expected

    def test_shard_and_chunk_geometry_is_irrelevant(
        self, prepared_system
    ):
        config, system, prepared = prepared_system
        expected = system.run_strategy(
            prepared, "gmm-caching-eviction"
        ).stats
        for n_shards, chunk in ((1, 10**9), (8, 1_024)):
            serving = ServingConfig(
                chunk_requests=chunk,
                n_shards=n_shards,
                sharding="hash",
                strategy="gmm-caching-eviction",
                refresh_enabled=False,
            )
            service = IcgmmCacheService(
                prepared.engine,
                config=config,
                serving=serving,
                measure_from=int(
                    len(prepared) * config.warmup_fraction
                ),
            )
            service.ingest(prepared.page_indices, prepared.is_write)
            assert service.totals == expected


class TestAccounting:
    @pytest.fixture(scope="class")
    def served(self, prepared_system):
        config, _, prepared = prepared_system
        serving = ServingConfig(
            chunk_requests=4_096,
            n_shards=4,
            sharding="hash",
            strategy="gmm-caching-eviction",
            refresh_enabled=False,
            partition_pages=512,
        )
        service = IcgmmCacheService(
            prepared.engine, config=config, serving=serving
        )
        reports = service.ingest(
            prepared.page_indices, prepared.is_write
        )
        return service, reports

    def test_chunk_reports_sum_to_totals(self, served):
        service, reports = served
        merged = CacheStats()
        for report in reports:
            merged = merged.merge(report.stats)
        assert merged == service.totals

    def test_shard_totals_sum_to_totals(self, served):
        service, _ = served
        merged = CacheStats()
        for key in service.shard_metrics.keys():
            merged = merged.merge(service.shard_metrics.total(key))
        assert merged == service.totals

    def test_tenant_totals_sum_to_totals(self, served):
        service, _ = served
        merged = CacheStats()
        for key in service.tenant_metrics.keys():
            merged = merged.merge(service.tenant_metrics.total(key))
        assert merged == service.totals

    def test_summary_shape(self, served):
        service, _ = served
        summary = service.summary()
        assert summary["accesses"] == service.totals.accesses
        assert summary["generation"] == 0
        assert summary["swaps"] == []
        assert set(summary["shards"]) == {
            f"shard:{i}" for i in range(4)
        }
        for row in summary["shards"].values():
            assert {"miss_rate", "latency_us", "traffic_share"} <= set(
                row
            )
        shares = [
            row["traffic_share"]
            for row in summary["shards"].values()
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_measure_from_excludes_leading_stream(
        self, prepared_system
    ):
        config, _, prepared = prepared_system
        serving = ServingConfig(
            chunk_requests=4_096,
            n_shards=2,
            strategy="lru",
            refresh_enabled=False,
        )
        cut = len(prepared) // 2
        service = IcgmmCacheService(
            prepared.engine,
            config=config,
            serving=serving,
            measure_from=cut,
        )
        service.ingest(prepared.page_indices, prepared.is_write)
        assert service.totals.accesses == len(prepared) - cut


class TestTenantMode:
    def test_tenant_planes_isolate(self, prepared_system):
        config, _, prepared = prepared_system
        serving = ServingConfig(
            chunk_requests=4_096,
            n_shards=2,
            sharding="tenant",
            partition_pages=1 << 9,
            strategy="lru",
            refresh_enabled=False,
        )
        service = IcgmmCacheService(
            prepared.engine, config=config, serving=serving
        )
        service.ingest(prepared.page_indices, prepared.is_write)
        assert service.totals.accesses == len(prepared)
        assert len(service.tenant_metrics.keys()) >= 1


class TestThresholdQuantileWiring:
    def test_inherits_engine_training_quantile(self, prepared_system):
        """An engine trained at a non-default quantile must not bias
        the drift detector's expected below-threshold fraction
        (which would fire spurious refreshes on a stationary
        stream)."""
        _, _, prepared = prepared_system
        config = IcgmmConfig(
            gmm=GmmEngineConfig(threshold_quantile=0.3)
        )
        service = IcgmmCacheService(
            prepared.engine, config=config, serving=ServingConfig()
        )
        assert service.threshold_quantile == 0.3
        assert service.detector.quantile == 0.3
        assert service.refresher.threshold_quantile == 0.3

    def test_explicit_serving_quantile_wins(self, prepared_system):
        _, _, prepared = prepared_system
        config = IcgmmConfig(
            gmm=GmmEngineConfig(threshold_quantile=0.3)
        )
        service = IcgmmCacheService(
            prepared.engine,
            config=config,
            serving=ServingConfig(threshold_quantile=0.1),
        )
        assert service.threshold_quantile == 0.1
        assert service.detector.quantile == 0.1


class TestResumableReplay:
    def test_mid_chunk_exception_leaves_state_resumable(
        self, prepared_system
    ):
        """A chunk that dies inside the replay call must leave no
        trace: every cursor/counter mutation sits *after* the fallible
        fan-out, so re-ingesting from the failed access produces the
        uninterrupted bit stream."""
        config, _, prepared = prepared_system
        serving = ServingConfig(
            chunk_requests=3_000,
            n_shards=4,
            sharding="hash",
            strategy="gmm-caching-eviction",
            refresh_enabled=False,
        )

        def build():
            return IcgmmCacheService(
                prepared.engine, config=config, serving=serving
            )

        reference = build()
        reference.ingest(prepared.page_indices, prepared.is_write)

        service = build()
        original_replay = service._executor.replay
        crash_at = {"chunk": 2, "armed": True}

        def flaky_replay(tasks, simulator=None, profiler=None):
            if (
                crash_at["armed"]
                and service._chunk_index == crash_at["chunk"]
            ):
                crash_at["armed"] = False
                raise RuntimeError("transient replay failure")
            return original_replay(
                tasks, simulator=simulator, profiler=profiler
            )

        service._executor.replay = flaky_replay
        with pytest.raises(RuntimeError, match="transient"):
            service.ingest(prepared.page_indices, prepared.is_write)
        # The failed chunk committed nothing.
        failed_from = crash_at["chunk"] * serving.chunk_requests
        assert service.access_cursor == failed_from
        assert service.totals.accesses == failed_from
        assert service.generation == 0
        # Resume from the exact failed access: bit-identical to the
        # uninterrupted run.
        service.ingest(
            prepared.page_indices[failed_from:],
            prepared.is_write[failed_from:],
        )
        assert service.access_cursor == reference.access_cursor
        assert service.totals == reference.totals


class TestValidation:
    def test_rejects_bad_inputs(self, prepared_system):
        config, _, prepared = prepared_system
        service = IcgmmCacheService(
            prepared.engine,
            config=config,
            serving=ServingConfig(refresh_enabled=False),
        )
        with pytest.raises(ValueError, match="1-D"):
            service.ingest(
                np.zeros((2, 2), dtype=np.int64),
                np.zeros((2, 2), dtype=bool),
            )
        with pytest.raises(ValueError, match="measure_from"):
            IcgmmCacheService(
                prepared.engine, config=config, measure_from=-1
            )

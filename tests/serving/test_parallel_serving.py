"""Parallel serving-loop determinism tests.

The multicore contract of :class:`repro.serving.IcgmmCacheService`:
any worker count, either backend, produces byte-identical totals,
rolling metrics (pricing included), drift-detector decisions, and
engine-swap history to the sequential loop -- drift adaptation and
all.
"""

import numpy as np
import pytest

from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.serving import IcgmmCacheService

N = 60_000
TRAIN = 5_000

PARALLEL_VARIANTS = [
    ParallelConfig(workers=4, backend="thread"),
    ParallelConfig(workers=2, backend="process"),
]


@pytest.fixture(scope="module")
def config():
    return IcgmmConfig(
        gmm=GmmEngineConfig(n_components=4, max_train_samples=2_000)
    )


@pytest.fixture(scope="module")
def stream():
    rng = np.random.default_rng(23)
    # Hot-region shift at the midpoint so the drift detector and the
    # refresh/swap machinery actually fire.
    head = rng.integers(0, 20_000, N // 2)
    tail = rng.integers(15_000, 40_000, N - N // 2)
    pages = np.concatenate([head, tail])
    is_write = rng.random(N) < 0.3
    return pages, is_write


@pytest.fixture(scope="module")
def engine(config, stream):
    pages, _ = stream
    features = np.column_stack(
        [
            pages[:TRAIN].astype(np.float64),
            np.zeros(TRAIN, dtype=np.float64),
        ]
    )
    return GmmPolicyEngine.train(
        features, config.gmm, np.random.default_rng(1)
    )


def _serve(config, engine, stream, parallel, strategy, refresh):
    pages, is_write = stream
    serving = ServingConfig(
        chunk_requests=4_096,
        n_shards=4,
        strategy=strategy,
        refresh_enabled=refresh,
        parallel=parallel,
    )
    with IcgmmCacheService(
        engine, config=config, serving=serving, measure_from=TRAIN
    ) as service:
        reports = service.ingest(pages, is_write)
        drift_log = [
            (
                report.chunk_index,
                report.swapped,
                report.generation,
                None
                if report.drift is None
                else (
                    repr(report.drift.ks),
                    repr(report.drift.below_threshold_fraction),
                    report.drift.signal,
                    report.drift.drifted,
                ),
            )
            for report in reports
        ]
        return service.totals, service.summary(), drift_log


@pytest.mark.parametrize(
    "parallel", PARALLEL_VARIANTS, ids=["thread4", "process2"]
)
@pytest.mark.parametrize(
    "strategy", ["lru", "gmm-eviction", "gmm-caching-eviction"]
)
def test_parallel_serving_is_bit_identical(
    config, engine, stream, parallel, strategy
):
    sequential = _serve(
        config,
        engine,
        stream,
        ParallelConfig(workers=1),
        strategy,
        refresh=False,
    )
    result = _serve(
        config, engine, stream, parallel, strategy, refresh=False
    )
    assert result[0] == sequential[0]  # totals
    assert result[1] == sequential[1]  # metrics + pricing snapshot
    assert result[2] == sequential[2]  # per-chunk reports


@pytest.mark.parametrize(
    "parallel", PARALLEL_VARIANTS, ids=["thread4", "process2"]
)
def test_drift_and_swap_decisions_match_sequential(
    config, engine, stream, parallel
):
    sequential = _serve(
        config,
        engine,
        stream,
        ParallelConfig(workers=1),
        "gmm-caching-eviction",
        refresh=True,
    )
    assert sequential[1]["swaps"], "scenario must trigger a swap"
    result = _serve(
        config,
        engine,
        stream,
        parallel,
        "gmm-caching-eviction",
        refresh=True,
    )
    assert result[0] == sequential[0]
    assert result[1] == sequential[1]
    assert result[2] == sequential[2]


def test_worker_crash_propagates(config, engine, stream, monkeypatch):
    import repro.core.parallel as parallel_mod

    def explode(task, simulator):
        raise RuntimeError("shard replay exploded")

    monkeypatch.setattr(parallel_mod, "_run_replay", explode)
    pages, is_write = stream
    serving = ServingConfig(
        n_shards=4,
        refresh_enabled=False,
        parallel=ParallelConfig(workers=4, backend="thread"),
    )
    with IcgmmCacheService(
        engine, config=config, serving=serving
    ) as service:
        with pytest.raises(RuntimeError, match="exploded"):
            service.ingest(pages[:8_192], is_write[:8_192])

"""Serving-on-fabric smoke test.

Drives a :class:`~repro.cxl.fabric.CxlFabric` the way the streaming
service drives its shard planes: the live stream arrives in chunks,
each chunk is stamped and scored under the deployed engine through
the shared pipeline's Score stage
(:meth:`~repro.core.pipeline.StagedPipeline.chunk_features`), and the
fleet replays it with resumable per-device cursors.  The rolling
totals must match a one-shot replay bit for bit -- chunking is an
implementation detail, exactly as for the sharded serving planes.
"""

import numpy as np
import pytest

from repro.core.config import (
    FabricTopology,
    GmmEngineConfig,
    IcgmmConfig,
)
from repro.core.system import IcgmmSystem
from repro.cxl.fabric import CxlFabric

CHUNK = 3_000


@pytest.fixture(scope="module")
def setup():
    config = IcgmmConfig(
        trace_length=21_000,
        gmm=GmmEngineConfig(n_components=8, max_train_samples=4_000),
    )
    prepared = IcgmmSystem(config).prepare("memtier")
    return config, prepared


def test_streamed_engine_scoring_matches_one_shot(setup):
    """Chunked stamp->score->replay over the fleet equals the
    one-shot offline replay of the same stream."""
    config, prepared = setup
    topology = FabricTopology(n_devices=4, placement="interleave")
    strategy = "gmm-caching-eviction"

    reference = CxlFabric(topology, config=config)
    expected = reference.run_prepared(
        prepared, strategy, warmup_fraction=0.0
    )

    service = CxlFabric(topology, config=config)
    service.bind(
        strategy,
        prepared.engine.admission_threshold,
        page_score_map=prepared.page_score_map(),
    )
    engine = prepared.engine
    pages = prepared.page_indices
    n = pages.shape[0]
    streamed_accesses = 0
    for start in range(0, n, CHUNK):
        stop = min(start + CHUNK, n)
        chunk_pages = pages[start:stop]
        # The serving stamping path: features from the stream cursor,
        # scored under the currently-deployed engine.
        features = service.pipeline.chunk_features(chunk_pages, start)
        scores = engine.score(features)
        chunk_stats = service.ingest(
            chunk_pages,
            prepared.is_write[start:stop],
            scores=scores,
            page_marginals=prepared.page_frequency_scores[start:stop],
        )
        streamed_accesses += chunk_stats.accesses
    result = service.results()

    assert streamed_accesses == n
    for device in range(topology.n_devices):
        assert (
            result.devices[device].stats
            == expected.devices[device].stats
        )
    assert result.total_time_ns == expected.total_time_ns


def test_chunked_scores_equal_prepared_scores(setup):
    """The chunked stamp+score path reproduces the Prepare stage's
    whole-stream request scores exactly (same engine, same
    Algorithm 1 stamping) -- streaming scoring is not an
    approximation."""
    config, prepared = setup
    fabric = CxlFabric(
        FabricTopology(n_devices=2), config=config
    )
    pages = prepared.page_indices
    chunked = np.concatenate(
        [
            prepared.engine.score(
                fabric.pipeline.chunk_features(
                    pages[start : start + CHUNK], start
                )
            )
            for start in range(0, pages.shape[0], CHUNK)
        ]
    )
    assert np.array_equal(chunked, prepared.scores)


def test_fleet_summary_shape(setup):
    """The fleet result dict is consumable by dashboards/CLI."""
    config, prepared = setup
    fabric = CxlFabric(
        FabricTopology(
            n_devices=2, link_overhead_ns=(100, 300)
        ),
        config=config,
    )
    result = fabric.run_prepared(prepared, "lru")
    summary = result.as_dict()
    assert summary["accesses"] == result.accesses
    assert len(summary["devices"]) == 2
    assert (
        summary["devices"][0]["link_request_ns"]
        < summary["devices"][1]["link_request_ns"]
    )
    assert summary["average_latency_us"] > 0

"""Parity and unit tests for the pipelined serving front-end.

The deterministic pipeline's contract is *byte-identity* with the
plain synchronous loop: same per-chunk stats, same drift decisions,
same swap history, same telemetry snapshot digest -- at any worker
count, with or without chaos, with or without an observe-only fleet
monitor attached.  The throughput pipeline trades the digest for
overlap but must never lose or reorder a request.
"""

import numpy as np
import pytest

from repro.core.config import (
    ChaosConfig,
    FleetHealthConfig,
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.system import IcgmmSystem
from repro.obs import Telemetry
from repro.serving import (
    FleetHealthMonitor,
    IcgmmCacheService,
    ServingFrontend,
)
from repro.serving.frontend import (
    ChunkProducer,
    IngestQueue,
    _chunk_stream,
)

CHUNK = 2_000


@pytest.fixture(scope="module")
def prepared_system():
    config = IcgmmConfig(
        trace_length=40_000,
        gmm=GmmEngineConfig(
            n_components=8, max_iter=15, max_train_samples=8_000
        ),
    )
    system = IcgmmSystem(config)
    prepared = system.prepare("memtier")
    return config, system, prepared


def _service(
    config,
    prepared,
    workers=1,
    chaos=None,
    telemetry=None,
    **serving_kwargs,
):
    serving = ServingConfig(
        chunk_requests=CHUNK,
        n_shards=4,
        parallel=ParallelConfig(workers=workers, backend="thread"),
        **serving_kwargs,
    )
    return IcgmmCacheService(
        prepared.engine,
        config=config,
        serving=serving,
        measure_from=int(len(prepared) * config.warmup_fraction),
        chaos=chaos,
        telemetry=telemetry,
    )


#: Window cuts deliberately misaligned with CHUNK: the carry buffer
#: must still reproduce the global chunking.
def _windows(prepared):
    pages, is_write = prepared.page_indices, prepared.is_write
    cuts = [0, 777, 5_777, 9_110, 20_001, len(pages)]
    for a, b in zip(cuts, cuts[1:]):
        yield pages[a:b], is_write[a:b]


def _key(report):
    return (
        report.chunk_index,
        report.stats.hits,
        report.stats.misses,
        report.stats.accesses,
        report.swapped,
        report.generation,
        report.drift.drifted if report.drift is not None else None,
    )


def _run_sync(config, prepared, workers=1, chaos=None, telemetry=None):
    service = _service(
        config, prepared, workers=workers, chaos=chaos,
        telemetry=telemetry,
    )
    try:
        reports = service.ingest(
            prepared.page_indices, prepared.is_write
        )
        summary = service.summary()
        digest = (
            telemetry.snapshot().get("digest")
            if telemetry is not None
            else None
        )
    finally:
        service.close()
    return reports, summary, digest


def _run_frontend(
    config,
    prepared,
    workers=1,
    chaos=None,
    telemetry=None,
    monitor_config=None,
    **serving_kwargs,
):
    serving_kwargs.setdefault("pipeline", "deterministic")
    serving_kwargs.setdefault("ingest_queue_chunks", 3)
    service = _service(
        config, prepared, workers=workers, chaos=chaos,
        telemetry=telemetry, **serving_kwargs,
    )
    monitor = FleetHealthMonitor.from_config(
        monitor_config, n_devices=service.serving.n_shards
    )
    try:
        frontend = ServingFrontend(service, monitor=monitor)
        front = frontend.run(_windows(prepared))
        summary = service.summary()
        digest = (
            telemetry.snapshot().get("digest")
            if telemetry is not None
            else None
        )
    finally:
        service.close()
    return front, summary, digest


class TestChunkStream:
    def test_rechunks_to_global_boundaries(self):
        rng = np.random.default_rng(0)
        pages = rng.integers(0, 1 << 20, 10_500)
        is_write = rng.random(10_500) < 0.5
        cuts = [0, 13, 999, 3_500, 3_501, 10_500]
        windows = [
            (pages[a:b], is_write[a:b])
            for a, b in zip(cuts, cuts[1:])
        ]
        chunks = list(_chunk_stream(iter(windows), 1_000))
        sizes = [len(p) for p, _ in chunks]
        assert sizes == [1_000] * 10 + [500]
        assert np.array_equal(
            np.concatenate([p for p, _ in chunks]), pages
        )
        assert np.array_equal(
            np.concatenate([w for _, w in chunks]), is_write
        )

    def test_empty_windows_are_skipped(self):
        empty = np.empty(0, dtype=np.int64)
        windows = [
            (empty, empty.astype(bool)),
            (np.arange(5), np.zeros(5, dtype=bool)),
        ]
        chunks = list(_chunk_stream(iter(windows), 10))
        assert len(chunks) == 1
        assert len(chunks[0][0]) == 5

    def test_validation(self):
        with pytest.raises(ValueError, match="chunk_requests"):
            list(_chunk_stream(iter([]), 0))
        bad = [(np.arange(4), np.zeros(3, dtype=bool))]
        with pytest.raises(ValueError, match="equal length"):
            list(_chunk_stream(iter(bad), 10))


class TestIngestQueue:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            IngestQueue(0)

    def test_try_put_refusal_counts_one_stall(self):
        queue = IngestQueue(2)
        assert queue.try_put("a") and queue.try_put("b")
        assert not queue.try_put("c")
        assert not queue.try_put("c")
        assert queue.blocked_puts == 2
        assert queue.max_depth == 2
        assert queue.try_get() == "a"
        assert queue.try_put("c")
        assert [queue.try_get(), queue.try_get()] == ["b", "c"]
        assert queue.try_get() is None
        counters = queue.counters()
        assert counters["puts"] == 3 and counters["gets"] == 3

    def test_get_returns_sentinel_after_close(self):
        from repro.serving.frontend import _CLOSED

        queue = IngestQueue(1)
        queue.try_put("a")
        queue.close()
        assert queue.get() == "a"
        assert queue.get() is _CLOSED
        with pytest.raises(RuntimeError, match="closed"):
            queue.try_put("b")

    def test_abort_unblocks_blocked_put(self):
        import threading

        queue = IngestQueue(1)
        queue.try_put("a")
        results = []

        def producer():
            results.append(queue.put("b"))

        thread = threading.Thread(target=producer)
        thread.start()
        queue.abort()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results == [False]
        assert queue.blocked_puts == 1


class TestChunkProducer:
    @staticmethod
    def _chunks(n):
        for i in range(n):
            yield np.full(3, i, dtype=np.int64), np.zeros(3, dtype=bool)

    def test_produces_and_closes(self):
        queue = IngestQueue(8)
        producer = ChunkProducer(self._chunks(5), queue)
        producer.start()
        got = []
        while True:
            item = queue.get()
            if not isinstance(item, tuple):
                break
            got.append(int(item[0][0]))
        producer.stop()
        assert got == [0, 1, 2, 3, 4]
        assert producer.collect()["chunks"] == 5
        assert producer.collect()["requests"] == 15

    def test_error_is_captured_and_queue_closed(self):
        def bad():
            yield np.arange(3), np.zeros(3, dtype=bool)
            raise RuntimeError("trace reader died")

        queue = IngestQueue(8)
        producer = ChunkProducer(bad(), queue)
        producer.start()
        assert isinstance(queue.get(), tuple)
        from repro.serving.frontend import _CLOSED

        assert queue.get() is _CLOSED
        producer.stop()
        assert "trace reader died" in producer.collect()["error"]


class TestDeterministicParity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_byte_parity_with_sync_loop(
        self, prepared_system, workers
    ):
        config, _, prepared = prepared_system
        sync_reports, sync_summary, _ = _run_sync(
            config, prepared, workers=workers
        )
        front, summary, _ = _run_frontend(
            config, prepared, workers=workers
        )
        assert [_key(r) for r in front.reports] == [
            _key(r) for r in sync_reports
        ]
        assert summary["accesses"] == sync_summary["accesses"]
        assert summary["miss_rate"] == sync_summary["miss_rate"]
        assert summary["generation"] == sync_summary["generation"]
        assert summary["swaps"] == sync_summary["swaps"]
        # Zero-loss bookkeeping.
        assert front.consumed_requests == len(prepared)
        assert front.produced_requests == len(prepared)
        assert front.consumed_chunks == front.produced_chunks

    @pytest.mark.parametrize("workers", [1, 4])
    def test_telemetry_digest_matches_sync(
        self, prepared_system, workers
    ):
        config, _, prepared = prepared_system
        _, _, sync_digest = _run_sync(
            config, prepared, workers=1, telemetry=Telemetry()
        )
        _, _, front_digest = _run_frontend(
            config, prepared, workers=workers, telemetry=Telemetry()
        )
        assert front_digest == sync_digest

    @pytest.mark.parametrize("workers", [1, 4])
    def test_parity_under_chaos(self, prepared_system, workers):
        config, _, prepared = prepared_system
        sync_reports, sync_summary, sync_digest = _run_sync(
            config,
            prepared,
            workers=workers,
            chaos=ChaosConfig.demo(7),
            telemetry=Telemetry(),
        )
        front, summary, digest = _run_frontend(
            config,
            prepared,
            workers=workers,
            chaos=ChaosConfig.demo(7),
            telemetry=Telemetry(),
        )
        assert [_key(r) for r in front.reports] == [
            _key(r) for r in sync_reports
        ]
        assert summary["chaos"]["timeline_digest"] == (
            sync_summary["chaos"]["timeline_digest"]
        )
        assert digest == sync_digest

    def test_monitor_attachment_changes_nothing(
        self, prepared_system
    ):
        config, _, prepared = prepared_system
        monitor_config = FleetHealthConfig(enabled=True)
        baseline, base_summary, base_digest = _run_frontend(
            config, prepared, telemetry=Telemetry()
        )
        front, summary, digest = _run_frontend(
            config,
            prepared,
            telemetry=Telemetry(),
            monitor_config=monitor_config,
        )
        assert [_key(r) for r in front.reports] == [
            _key(r) for r in baseline.reports
        ]
        assert digest == base_digest
        assert front.monitor is not None
        assert baseline.monitor is None
        # Monitor decisions are themselves deterministic across
        # worker counts.
        again, _, _ = _run_frontend(
            config,
            prepared,
            workers=4,
            telemetry=Telemetry(),
            monitor_config=monitor_config,
        )
        assert (
            again.monitor["decision_digest"]
            == front.monitor["decision_digest"]
        )

    def test_backpressure_accounting_is_deterministic(
        self, prepared_system
    ):
        config, _, prepared = prepared_system
        front_a, _, _ = _run_frontend(config, prepared)
        front_b, _, _ = _run_frontend(config, prepared)
        assert front_a.queue == front_b.queue
        assert front_a.queue["producer_wait_s"] == 0.0
        assert front_a.queue["consumer_wait_s"] == 0.0
        assert front_a.queue["puts"] == front_a.consumed_chunks
        assert front_a.queue["gets"] == front_a.consumed_chunks
        # Capacity 3 against a 20-chunk stream must stall: the queue
        # fills, one chunk drains, one pending chunk re-offers.
        assert front_a.backpressure_stalls > 0
        assert front_a.queue["max_depth"] == 3

    def test_latency_quantiles_populate(self, prepared_system):
        config, _, prepared = prepared_system
        front, _, _ = _run_frontend(config, prepared)
        assert front.latency_p50_us is not None
        assert front.latency_p99_us is not None
        assert front.latency_p50_us <= front.latency_p99_us


class TestThroughputMode:
    def test_zero_loss_and_order(self, prepared_system):
        config, _, prepared = prepared_system
        front, summary, _ = _run_frontend(
            config,
            prepared,
            pipeline="throughput",
            refresh_async=True,
        )
        assert front.consumed_requests == len(prepared)
        assert front.produced_requests == len(prepared)
        indices = [r.chunk_index for r in front.reports]
        assert indices == sorted(indices)
        assert len(indices) == len(set(indices))
        assert summary["refresh_async"]["pending"] is False

    def test_matches_sync_when_refresh_disabled(
        self, prepared_system
    ):
        config, _, prepared = prepared_system
        baseline = _service(
            config, prepared, refresh_enabled=False
        )
        try:
            sync_reports = baseline.ingest(
                prepared.page_indices, prepared.is_write
            )
        finally:
            baseline.close()
        # Without refresh the schedule cannot influence results: the
        # consumer still sees the global chunk sequence in order.
        service = _service(
            config,
            prepared,
            pipeline="throughput",
            refresh_enabled=False,
            ingest_queue_chunks=3,
        )
        try:
            front = ServingFrontend(service).run(_windows(prepared))
        finally:
            service.close()
        sync_keys = [
            (k[0], k[1], k[2], k[3]) for k in map(_key, sync_reports)
        ]
        front_keys = [
            (k[0], k[1], k[2], k[3])
            for k in map(_key, front.reports)
        ]
        assert front_keys == sync_keys

    def test_producer_error_propagates(self, prepared_system):
        config, _, prepared = prepared_system

        def poisoned():
            yield prepared.page_indices[:CHUNK], prepared.is_write[
                :CHUNK
            ]
            raise RuntimeError("reader exploded")

        service = _service(
            config, prepared, pipeline="throughput",
            refresh_async=True,
        )
        try:
            frontend = ServingFrontend(service)
            with pytest.raises(RuntimeError, match="reader exploded"):
                frontend.run(poisoned())
        finally:
            service.close()


class TestValidation:
    def test_mode_off_is_rejected(self, prepared_system):
        config, _, prepared = prepared_system
        service = _service(config, prepared)
        try:
            with pytest.raises(ValueError, match="off"):
                ServingFrontend(service)  # serving.pipeline == "off"
            with pytest.raises(ValueError, match="one of"):
                ServingFrontend(service, mode="warp")
        finally:
            service.close()

    def test_deterministic_refresh_async_is_rejected(
        self, prepared_system
    ):
        config, _, prepared = prepared_system
        with pytest.raises(ValueError, match="byte-parity"):
            ServingConfig(
                pipeline="deterministic", refresh_async=True
            )
        service = _service(
            config, prepared, pipeline="throughput",
            refresh_async=True,
        )
        try:
            with pytest.raises(ValueError, match="byte-parity"):
                ServingFrontend(service, mode="deterministic")
        finally:
            service.close()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="pipeline"):
            ServingConfig(pipeline="sideways")
        with pytest.raises(ValueError, match="ingest_queue_chunks"):
            ServingConfig(ingest_queue_chunks=0)

    def test_queue_chunks_override(self, prepared_system):
        config, _, prepared = prepared_system
        service = _service(config, prepared, pipeline="deterministic")
        try:
            frontend = ServingFrontend(service, queue_chunks=1)
            assert frontend.queue_chunks == 1
            with pytest.raises(ValueError, match="queue_chunks"):
                ServingFrontend(service, queue_chunks=0)
        finally:
            service.close()

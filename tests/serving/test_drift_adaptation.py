"""System-level drift adaptation: OnlineGmm refresh through the
serving loop.

A two-phase Zipf stream (the hot slab region jumps at the midpoint,
modelling a failover / cache rebuild) is replayed through the full
service.  A frozen engine scores the new hot pages as cold and
bypasses/evicts them -- post-drift its miss rate collapses toward
100%.  The drift-aware service must detect the shift on the score
distribution, fold recent chunks into the mixture with stepwise EM,
swap the refreshed engine in, and end up with a materially better
post-drift miss rate.
"""

import numpy as np
import pytest

from repro.cache.setassoc import CacheGeometry
from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ServingConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.serving import IcgmmCacheService
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

N_PHASE = 30_000
HOT_PAGES = 1_500


@pytest.fixture(scope="module")
def drift_scenario():
    """Stream, frozen engine and system config, shared per module."""
    rng = np.random.default_rng(0)
    phase_a = ZipfSampler(
        base_page=0, n_pages=HOT_PAGES, alpha=1.2, write_fraction=0.25
    )
    phase_b = ZipfSampler(
        base_page=6_000,
        n_pages=HOT_PAGES,
        alpha=1.2,
        write_fraction=0.25,
    )
    pages_a, writes_a = phase_a.sample(N_PHASE, rng)
    pages_b, writes_b = phase_b.sample(N_PHASE, rng)
    pages = np.concatenate([pages_a, pages_b])
    writes = np.concatenate([writes_a, writes_b])

    n_train = N_PHASE // 2
    timestamps = transform_timestamps(n_train, mode="prose")
    features = np.column_stack(
        [pages[:n_train].astype(float), timestamps.astype(float)]
    )
    engine = GmmPolicyEngine.train(
        features,
        GmmEngineConfig(
            n_components=8, max_iter=20, max_train_samples=8_000
        ),
        np.random.default_rng(1),
    )
    config = IcgmmConfig(
        geometry=CacheGeometry(
            capacity_bytes=64 * 8 * 4096,
            block_bytes=4096,
            associativity=8,
        ),
        gmm=GmmEngineConfig(n_components=8),
    )
    return pages, writes, engine, config


def _replay(pages, writes, engine, config, refresh):
    serving = ServingConfig(
        chunk_requests=4_096,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=refresh,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    # Post-drift steady state only: skip the detect/refresh transient.
    measure_from = N_PHASE + int(0.4 * N_PHASE)
    service = IcgmmCacheService(
        engine, config=config, serving=serving, measure_from=measure_from
    )
    service.ingest(pages, writes)
    return service


class TestDriftAdaptation:
    def test_online_beats_frozen_after_drift(self, drift_scenario):
        pages, writes, engine, config = drift_scenario
        frozen = _replay(pages, writes, engine, config, refresh=False)
        online = _replay(pages, writes, engine, config, refresh=True)

        # The frozen engine admits almost nothing post-drift.
        assert frozen.totals.miss_rate > 0.8
        # The refreshed engine must recover most of the traffic --
        # comfortably more than half the frozen engine's miss rate.
        assert (
            online.totals.miss_rate
            < frozen.totals.miss_rate * 0.5
        )

    def test_refresh_actually_happened(self, drift_scenario):
        pages, writes, engine, config = drift_scenario
        online = _replay(pages, writes, engine, config, refresh=True)
        assert len(online.swaps) >= 1
        assert online.generation == len(online.swaps)
        first = online.swaps[0]
        # The swap fired after the drift point, not before it.
        assert first.access_cursor > N_PHASE
        # ... and within a handful of chunks of it (prompt detection).
        assert first.access_cursor < N_PHASE + 12 * 4_096

    def test_frozen_service_never_swaps(self, drift_scenario):
        pages, writes, engine, config = drift_scenario
        frozen = _replay(pages, writes, engine, config, refresh=False)
        assert frozen.swaps == []
        assert frozen.generation == 0

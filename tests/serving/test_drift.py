"""Tests for the score-distribution drift detector."""

import numpy as np
import pytest

from repro.serving.drift import DriftDetector, ks_statistic


class TestKsStatistic:
    def test_identical_samples_score_zero(self):
        sample = np.linspace(0, 1, 100)
        assert ks_statistic(sample, sample) == 0.0

    def test_disjoint_samples_score_one(self):
        assert ks_statistic(
            np.zeros(50), np.ones(50)
        ) == pytest.approx(1.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 1, 300)
        b = rng.normal(0.5, 1.2, 200)
        grid = np.concatenate([a, b])
        brute = max(
            abs(np.mean(a <= v) - np.mean(b <= v)) for v in grid
        )
        assert ks_statistic(a, b) == pytest.approx(brute)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ks_statistic(np.array([]), np.array([1.0]))


class TestDriftDetector:
    def _detector(self, **kwargs):
        # Threshold at the 10% quantile of the stationary N(0, 1)
        # score stream the tests feed in.
        defaults = dict(
            threshold=-1.2816,
            quantile=0.1,
            ks_threshold=0.2,
            quantile_tolerance=0.2,
            patience=2,
            baseline_chunks=2,
        )
        defaults.update(kwargs)
        return DriftDetector(**defaults)

    def test_baseline_then_stationary_never_fires(self):
        rng = np.random.default_rng(1)
        detector = self._detector()
        for _ in range(10):
            report = detector.observe(rng.normal(0, 1, 3000))
            assert not report.drifted
        assert detector.ready

    def test_baselining_flag(self):
        rng = np.random.default_rng(2)
        detector = self._detector(baseline_chunks=3)
        reports = [
            detector.observe(rng.normal(0, 1, 500)) for _ in range(4)
        ]
        assert [r.baselining for r in reports] == [
            True, True, True, False,
        ]
        assert np.isnan(reports[0].ks)
        assert not np.isnan(reports[3].ks)

    def test_distribution_shift_fires_after_patience(self):
        rng = np.random.default_rng(3)
        detector = self._detector(patience=2)
        for _ in range(4):
            detector.observe(rng.normal(0, 1, 2000))
        first = detector.observe(rng.normal(4, 1, 2000))
        assert first.signal and not first.drifted  # debounced
        second = detector.observe(rng.normal(4, 1, 2000))
        assert second.signal and second.drifted

    def test_quantile_signal_catches_threshold_starvation(self):
        """A frozen engine under drift scores ~all traffic below its
        admission cut -- the cheap signal must catch it even when the
        KS alarm is off."""
        rng = np.random.default_rng(4)
        detector = self._detector(
            threshold=0.1,
            ks_threshold=1.0,  # disable the KS alarm
            quantile_tolerance=0.3,
            patience=1,
        )
        for _ in range(2):
            detector.observe(rng.uniform(0.2, 1.0, 1000))
        report = detector.observe(rng.uniform(-1.0, 0.05, 1000))
        assert report.below_threshold_fraction > 0.9
        assert report.drifted

    def test_intermittent_signal_resets_patience(self):
        rng = np.random.default_rng(5)
        detector = self._detector(patience=2)
        for _ in range(3):
            detector.observe(rng.normal(0, 1, 2000))
        assert detector.observe(rng.normal(4, 1, 2000)).signal
        assert not detector.observe(rng.normal(0, 1, 2000)).signal
        # Streak was broken: one more drifted chunk is not enough.
        assert not detector.observe(rng.normal(4, 1, 2000)).drifted

    def test_rebase_restarts_baseline(self):
        rng = np.random.default_rng(6)
        detector = self._detector()
        for _ in range(3):
            detector.observe(rng.normal(0, 1, 1000))
        assert detector.ready
        detector.rebase(threshold=0.5, quantile=0.1)
        assert not detector.ready
        report = detector.observe(rng.normal(4, 1, 1000))
        assert report.baselining and not report.drifted

    def test_reference_subsampling_bounds_memory(self):
        rng = np.random.default_rng(7)
        detector = self._detector(baseline_chunks=1)
        detector.observe(rng.normal(0, 1, 100_000))
        assert detector._reference.size <= 8192
        # Still detects an obvious shift.
        report = detector.observe(rng.normal(5, 1, 2000))
        assert report.signal

    def test_validation(self):
        with pytest.raises(ValueError):
            self._detector(ks_threshold=0.0)
        with pytest.raises(ValueError):
            self._detector(patience=0)
        with pytest.raises(ValueError):
            self._detector(quantile_tolerance=0.0)
        detector = self._detector()
        with pytest.raises(ValueError):
            detector.observe(np.array([]))

"""Tests for the engine slot and the stepwise-EM model refresher."""

import threading

import numpy as np
import pytest

from repro.core.config import GmmEngineConfig
from repro.core.engine import GmmPolicyEngine
from repro.serving.refresh import (
    EngineSlot,
    ModelRefresher,
    StaleSwapError,
    validate_engine,
)
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler


def _features(base_page, n, rng):
    sampler = ZipfSampler(base_page=base_page, n_pages=800, alpha=1.2)
    pages, _ = sampler.sample(n, rng)
    timestamps = transform_timestamps(n, mode="prose")
    return np.column_stack(
        [pages.astype(float), timestamps.astype(float)]
    )


def _engine(features, seed=0):
    return GmmPolicyEngine.train(
        features,
        GmmEngineConfig(
            n_components=6, max_iter=15, max_train_samples=6000
        ),
        np.random.default_rng(seed),
    )


class TestEngineSlot:
    def test_swap_bumps_generation(self):
        rng = np.random.default_rng(0)
        engine = _engine(_features(0, 4000, rng))
        slot = EngineSlot(engine)
        assert slot.generation == 0
        assert slot.engine is engine
        other = _engine(_features(0, 4000, rng), seed=1)
        assert slot.swap(other) == 1
        assert slot.engine is other
        assert slot.generation == 1

    def test_stale_swap_is_refused(self):
        rng = np.random.default_rng(5)
        slot = EngineSlot(_engine(_features(0, 4000, rng)))
        engine, generation = slot.read()
        newer = _engine(_features(0, 4000, rng), seed=1)
        slot.swap(newer, expected_generation=generation)
        # A second builder that also read generation 0 must not roll
        # the slot back past `newer`.
        stale = _engine(_features(0, 4000, rng), seed=2)
        with pytest.raises(StaleSwapError, match="generation 0"):
            slot.swap(stale, expected_generation=generation)
        assert slot.engine is newer
        assert slot.generation == 1

    def test_concurrent_cas_admits_exactly_one(self):
        rng = np.random.default_rng(6)
        slot = EngineSlot(_engine(_features(0, 4000, rng)))
        candidates = [
            _engine(_features(0, 4000, rng), seed=s) for s in range(8)
        ]
        _, generation = slot.read()
        outcomes = []
        barrier = threading.Barrier(len(candidates))

        def contend(engine):
            barrier.wait()
            try:
                slot.swap(engine, expected_generation=generation)
                outcomes.append("won")
            except StaleSwapError:
                outcomes.append("stale")

        threads = [
            threading.Thread(target=contend, args=(c,))
            for c in candidates
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("won") == 1
        assert outcomes.count("stale") == len(candidates) - 1
        assert slot.generation == 1
        assert slot.engine in candidates


class TestValidateEngine:
    def test_accepts_healthy_engine(self):
        rng = np.random.default_rng(7)
        validate_engine(_engine(_features(0, 4000, rng)))

    def test_rejects_non_finite_threshold(self):
        rng = np.random.default_rng(8)
        engine = _engine(_features(0, 4000, rng))
        corrupt = GmmPolicyEngine(
            model=engine.model,
            scaler=engine.scaler,
            admission_threshold=float("nan"),
        )
        with pytest.raises(ValueError, match="admission_threshold"):
            validate_engine(corrupt)

    def test_rejects_non_finite_model_parameters(self):
        rng = np.random.default_rng(9)
        engine = _engine(_features(0, 4000, rng))
        engine.model._weights[0] = np.nan  # accessor returns a copy
        with pytest.raises(ValueError, match="weights"):
            validate_engine(engine)


class TestModelRefresher:
    def test_buffer_is_bounded(self):
        refresher = ModelRefresher(buffer_chunks=3)
        rng = np.random.default_rng(1)
        for _ in range(10):
            refresher.ingest(_features(0, 500, rng))
        assert refresher.buffered_samples == 3 * 500

    def test_build_requires_data(self):
        refresher = ModelRefresher()
        rng = np.random.default_rng(2)
        engine = _engine(_features(0, 4000, rng))
        with pytest.raises(ValueError, match="buffered"):
            refresher.build(engine)

    def test_refresh_adapts_to_drifted_traffic(self):
        """Folding post-drift chunks in must raise the new traffic's
        likelihood well above the frozen engine's."""
        rng = np.random.default_rng(3)
        pre = _features(0, 12_000, rng)
        post = _features(5_000, 12_000, rng)
        engine = _engine(pre)
        refresher = ModelRefresher(
            buffer_chunks=6, batch_size=1024, step_exponent=0.6
        )
        for start in range(0, 12_000, 2_000):
            refresher.ingest(post[start : start + 2_000])
        refreshed = refresher.build(engine)
        assert refresher.refreshes_built == 1
        # Shared scaler: scores stay in one comparable space.
        assert refreshed.scaler is engine.scaler
        holdout = engine.scaler.transform(_features(5_000, 4_000, rng))
        frozen_ll = float(
            np.mean(engine.model.log_score_samples(holdout))
        )
        refreshed_ll = float(
            np.mean(refreshed.model.log_score_samples(holdout))
        )
        assert refreshed_ll > frozen_ll + 1.0

    def test_threshold_recut_at_quantile(self):
        rng = np.random.default_rng(4)
        engine = _engine(_features(0, 8_000, rng))
        refresher = ModelRefresher(threshold_quantile=0.1)
        chunk = _features(0, 4_000, rng)
        refresher.ingest(chunk)
        refreshed = refresher.build(engine)
        scores = refreshed.model.score_samples(
            engine.scaler.transform(chunk)
        )
        below = np.mean(scores < refreshed.admission_threshold)
        assert below == pytest.approx(0.1, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelRefresher(buffer_chunks=0)
        with pytest.raises(ValueError):
            ModelRefresher(batch_size=0)
        refresher = ModelRefresher()
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            refresher.ingest(np.zeros((5, 3)))


class TestSnapshotFeatures:
    """The off-critical-path snapshot contract used by async refresh."""

    def test_empty_buffer_snapshots_to_none(self):
        assert ModelRefresher().snapshot_features() is None

    def test_snapshot_is_an_immutable_copy(self):
        # The worker thread folds over the snapshot while the serving
        # loop keeps ingesting; later ingests (including ones that
        # evict the snapshotted chunks from the bounded deque) must
        # not change what the in-flight build sees.
        refresher = ModelRefresher(buffer_chunks=2)
        rng = np.random.default_rng(5)
        first = _features(0, 300, rng)
        refresher.ingest(first)
        snapshot = refresher.snapshot_features()
        np.testing.assert_array_equal(snapshot, first)
        refresher.ingest(_features(9_000, 300, rng))
        refresher.ingest(_features(9_000, 300, rng))
        np.testing.assert_array_equal(snapshot, first)

    def test_snapshot_concatenates_in_ingest_order(self):
        refresher = ModelRefresher(buffer_chunks=4)
        rng = np.random.default_rng(6)
        chunks = [_features(0, 200, rng) for _ in range(3)]
        for chunk in chunks:
            refresher.ingest(chunk)
        np.testing.assert_array_equal(
            refresher.snapshot_features(), np.concatenate(chunks)
        )

    def test_build_from_counts_attempt_before_raising(self):
        rng = np.random.default_rng(7)
        engine = _engine(_features(0, 4_000, rng))
        refresher = ModelRefresher()
        with pytest.raises(ValueError, match="buffered"):
            refresher.build_from(None, engine)
        with pytest.raises(ValueError, match="buffered"):
            refresher.build_from(np.empty((0, 2)), engine)
        # Both entry points keep the same bookkeeping as an
        # empty-buffer build(): the attempt is counted, no build is.
        assert refresher.builds_attempted == 2
        assert refresher.refreshes_built == 0

    def test_build_equals_build_from_snapshot(self):
        rng = np.random.default_rng(8)
        engine = _engine(_features(0, 6_000, rng))
        chunk = _features(2_500, 3_000, rng)
        via_build = ModelRefresher()
        via_build.ingest(chunk)
        via_snapshot = ModelRefresher()
        via_snapshot.ingest(chunk)
        a = via_build.build(engine)
        b = via_snapshot.build_from(
            via_snapshot.snapshot_features(), engine
        )
        assert a.admission_threshold == b.admission_threshold
        np.testing.assert_array_equal(a.model.weights, b.model.weights)
        np.testing.assert_array_equal(a.model.means, b.model.means)

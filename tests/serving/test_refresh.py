"""Tests for the engine slot and the stepwise-EM model refresher."""

import numpy as np
import pytest

from repro.core.config import GmmEngineConfig
from repro.core.engine import GmmPolicyEngine
from repro.serving.refresh import EngineSlot, ModelRefresher
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler


def _features(base_page, n, rng):
    sampler = ZipfSampler(base_page=base_page, n_pages=800, alpha=1.2)
    pages, _ = sampler.sample(n, rng)
    timestamps = transform_timestamps(n, mode="prose")
    return np.column_stack(
        [pages.astype(float), timestamps.astype(float)]
    )


def _engine(features, seed=0):
    return GmmPolicyEngine.train(
        features,
        GmmEngineConfig(
            n_components=6, max_iter=15, max_train_samples=6000
        ),
        np.random.default_rng(seed),
    )


class TestEngineSlot:
    def test_swap_bumps_generation(self):
        rng = np.random.default_rng(0)
        engine = _engine(_features(0, 4000, rng))
        slot = EngineSlot(engine)
        assert slot.generation == 0
        assert slot.engine is engine
        other = _engine(_features(0, 4000, rng), seed=1)
        assert slot.swap(other) == 1
        assert slot.engine is other
        assert slot.generation == 1


class TestModelRefresher:
    def test_buffer_is_bounded(self):
        refresher = ModelRefresher(buffer_chunks=3)
        rng = np.random.default_rng(1)
        for _ in range(10):
            refresher.ingest(_features(0, 500, rng))
        assert refresher.buffered_samples == 3 * 500

    def test_build_requires_data(self):
        refresher = ModelRefresher()
        rng = np.random.default_rng(2)
        engine = _engine(_features(0, 4000, rng))
        with pytest.raises(ValueError, match="buffered"):
            refresher.build(engine)

    def test_refresh_adapts_to_drifted_traffic(self):
        """Folding post-drift chunks in must raise the new traffic's
        likelihood well above the frozen engine's."""
        rng = np.random.default_rng(3)
        pre = _features(0, 12_000, rng)
        post = _features(5_000, 12_000, rng)
        engine = _engine(pre)
        refresher = ModelRefresher(
            buffer_chunks=6, batch_size=1024, step_exponent=0.6
        )
        for start in range(0, 12_000, 2_000):
            refresher.ingest(post[start : start + 2_000])
        refreshed = refresher.build(engine)
        assert refresher.refreshes_built == 1
        # Shared scaler: scores stay in one comparable space.
        assert refreshed.scaler is engine.scaler
        holdout = engine.scaler.transform(_features(5_000, 4_000, rng))
        frozen_ll = float(
            np.mean(engine.model.log_score_samples(holdout))
        )
        refreshed_ll = float(
            np.mean(refreshed.model.log_score_samples(holdout))
        )
        assert refreshed_ll > frozen_ll + 1.0

    def test_threshold_recut_at_quantile(self):
        rng = np.random.default_rng(4)
        engine = _engine(_features(0, 8_000, rng))
        refresher = ModelRefresher(threshold_quantile=0.1)
        chunk = _features(0, 4_000, rng)
        refresher.ingest(chunk)
        refreshed = refresher.build(engine)
        scores = refreshed.model.score_samples(
            engine.scaler.transform(chunk)
        )
        below = np.mean(scores < refreshed.admission_threshold)
        assert below == pytest.approx(0.1, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelRefresher(buffer_chunks=0)
        with pytest.raises(ValueError):
            ModelRefresher(batch_size=0)
        refresher = ModelRefresher()
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            refresher.ingest(np.zeros((5, 3)))

"""Unit tests for the fleet health monitor's state machine.

Synthetic per-chunk feeds (no fabric) drive every transition edge:
breach streaks, quarantine cool-down, probation probes, the
improving-severity exemption, observed-only median voting, and the
survivable-fleet floor.  ``ewma_alpha=1.0`` makes the smoothed
severity equal the instantaneous one, so each chunk's verdict is a
pure function of that chunk's feed.
"""

import pytest

from repro.cache.stats import CacheStats
from repro.core.config import FleetHealthConfig
from repro.serving.health import (
    EVENT_CLEARED,
    EVENT_PROBATION,
    EVENT_QUARANTINED,
    EVENT_REINSTATED,
    EVENT_SUSPECT,
    FleetHealthMonitor,
)


def _monitor(n_devices=3, **overrides):
    base = dict(
        enabled=True,
        latency_threshold=2.0,
        breach_chunks=2,
        quarantine_chunks=2,
        probation_chunks=2,
        ewma_alpha=1.0,
    )
    base.update(overrides)
    return FleetHealthMonitor(FleetHealthConfig(**base), n_devices)


def _chunk(monitor, chunk, latencies, miss=0.1, accesses=100):
    """Observe one chunk -- ``latencies`` maps device -> ns/access --
    then step, returning the fired transitions."""
    for device, latency in latencies.items():
        misses = int(round(accesses * miss))
        stats = CacheStats(hits=accesses - misses, misses=misses)
        monitor.observe(device, stats, int(latency * accesses))
    return monitor.step(chunk)


class TestFromConfig:
    def test_none_when_disabled(self):
        assert FleetHealthMonitor.from_config(None, 4) is None
        assert (
            FleetHealthMonitor.from_config(
                FleetHealthConfig(enabled=False), 4
            )
            is None
        )

    def test_none_on_single_device_fleet(self):
        """No fleet median and nowhere to re-home."""
        assert (
            FleetHealthMonitor.from_config(
                FleetHealthConfig(enabled=True), 1
            )
            is None
        )

    def test_monitor_when_enabled(self):
        monitor = FleetHealthMonitor.from_config(
            FleetHealthConfig(enabled=True), 2
        )
        assert monitor is not None
        assert monitor.n_devices == 2


class TestStateMachineWalk:
    def test_full_walk_to_reinstatement(self):
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        assert _chunk(monitor, 0, fleet) == []
        assert _chunk(monitor, 1, fleet) == []
        # Device 2 breaches 2x the median: one chunk of suspicion...
        fired = _chunk(monitor, 2, {**fleet, 2: 5_000})
        assert [(k, d) for k, d, _ in fired] == [(EVENT_SUSPECT, 2)]
        assert monitor.state(2) == "suspect"
        # ...a second consecutive breach quarantines it.
        fired = _chunk(monitor, 3, {**fleet, 2: 6_000})
        assert [(k, d) for k, d, _ in fired] == [
            (EVENT_QUARANTINED, 2)
        ]
        assert monitor.blocked_devices() == (2,)
        # Quarantined devices receive no traffic; the cool-down runs
        # on the chunk clock alone.
        healthy = {0: 1_000, 1: 1_000}
        assert _chunk(monitor, 4, healthy) == []
        fired = _chunk(monitor, 5, healthy)
        assert [(k, d) for k, d, _ in fired] == [(EVENT_PROBATION, 2)]
        assert monitor.blocked_devices() == ()
        # Two clean probe chunks reinstate it.
        assert _chunk(monitor, 6, fleet) == []
        fired = _chunk(monitor, 7, fleet)
        assert [(k, d) for k, d, _ in fired] == [
            (EVENT_REINSTATED, 2)
        ]
        assert monitor.state(2) == "healthy"
        assert monitor.quarantines == 1
        assert monitor.reinstatements == 1

    def test_single_breach_clears_without_quarantine(self):
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        _chunk(monitor, 0, fleet)
        _chunk(monitor, 1, {**fleet, 2: 5_000})
        fired = _chunk(monitor, 2, fleet)
        assert [(k, d) for k, d, _ in fired] == [(EVENT_CLEARED, 2)]
        assert monitor.quarantines == 0

    def test_probation_breach_requarantines(self):
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        for chunk, latencies in enumerate(
            [fleet, fleet, {**fleet, 2: 5_000}, {**fleet, 2: 6_000}]
        ):
            _chunk(monitor, chunk, latencies)
        healthy = {0: 1_000, 1: 1_000}
        _chunk(monitor, 4, healthy)
        _chunk(monitor, 5, healthy)  # -> probation
        # First probe seeds the severity trend (the EWMA was reset);
        # a second, still-worsening probe fails probation.
        assert _chunk(monitor, 6, {**fleet, 2: 6_000}) == []
        fired = _chunk(monitor, 7, {**fleet, 2: 7_000})
        assert [(k, d) for k, d, _ in fired] == [
            (EVENT_QUARANTINED, 2)
        ]
        assert fired[0][2]["probation_failed"] is True
        assert monitor.quarantines == 2


class TestImprovingSeverityExemption:
    def test_healing_device_is_never_quarantined(self):
        """Still breaching but visibly recovering chunk over chunk
        (cold cache re-warming): the streak holds, never advances."""
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        _chunk(monitor, 0, fleet)
        fired = _chunk(monitor, 1, {**fleet, 2: 6_000})
        assert [(k, d) for k, d, _ in fired] == [(EVENT_SUSPECT, 2)]
        # 6000 -> 5000 -> 4100: all breaches, all improving.
        assert _chunk(monitor, 2, {**fleet, 2: 5_000}) == []
        assert _chunk(monitor, 3, {**fleet, 2: 4_100}) == []
        fired = _chunk(monitor, 4, fleet)
        assert [(k, d) for k, d, _ in fired] == [(EVENT_CLEARED, 2)]
        assert monitor.quarantines == 0

    def test_worsening_ramp_is_not_exempted(self):
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        _chunk(monitor, 0, fleet)
        _chunk(monitor, 1, {**fleet, 2: 5_000})
        fired = _chunk(monitor, 2, {**fleet, 2: 6_000})
        assert [(k, d) for k, d, _ in fired] == [
            (EVENT_QUARANTINED, 2)
        ]


class TestMedianVoting:
    def test_unobserved_devices_do_not_vote(self):
        """Devices sitting out a chunk (e.g. an outage) carry stale
        EWMAs; letting them vote would drag the median to a workload
        the serving fleet no longer sees and fire false breaches."""
        monitor = _monitor(
            n_devices=4, latency_threshold=1.4, breach_chunks=1
        )
        fleet = {d: 1_000 for d in range(4)}
        _chunk(monitor, 0, fleet)
        _chunk(monitor, 1, fleet)
        # Devices 2 and 3 go dark; the surviving half's workload
        # shifts 3x.  Against the observed-only median (3000) nobody
        # breaches; against a stale-inclusive median (2000) both
        # survivors would.
        for chunk in range(2, 6):
            fired = _chunk(monitor, chunk, {0: 3_000, 1: 3_000})
            assert fired == []
        assert monitor.quarantines == 0
        assert monitor.suspects == 0

    def test_fewer_than_two_voters_defers_judgement(self):
        monitor = _monitor()
        assert _chunk(monitor, 0, {0: 9_000}) == []
        assert monitor.suspects == 0


class TestGuards:
    def test_min_active_devices_floor_blocks_quarantine(self):
        monitor = _monitor(min_active_devices=3)
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        _chunk(monitor, 0, fleet)
        for chunk in range(1, 5):
            _chunk(monitor, chunk, {**fleet, 2: 5_000 + chunk * 500})
        # The breach streak runs but the fleet is already at the
        # survivable floor: suspicion only, never a quarantine.
        assert monitor.suspects == 1
        assert monitor.quarantines == 0
        assert monitor.state(2) == "suspect"

    def test_thin_chunks_are_not_judged(self):
        monitor = _monitor(min_chunk_accesses=64)
        fleet = {0: 1_000, 1: 1_000, 2: 9_000}
        for chunk in range(4):
            assert _chunk(monitor, chunk, fleet, accesses=10) == []
        assert monitor.suspects == 0


class TestDecisionLog:
    def _walk(self):
        monitor = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        _chunk(monitor, 0, fleet)
        _chunk(monitor, 1, {**fleet, 2: 5_000})
        _chunk(monitor, 2, {**fleet, 2: 6_000})
        return monitor

    def test_digest_is_deterministic(self):
        assert (
            self._walk().decision_digest()
            == self._walk().decision_digest()
        )

    def test_digest_tracks_decisions(self):
        quiet = _monitor()
        fleet = {0: 1_000, 1: 1_000, 2: 1_000}
        for chunk in range(3):
            _chunk(quiet, chunk, fleet)
        assert (
            quiet.decision_digest() != self._walk().decision_digest()
        )

    def test_summary_carries_the_log(self):
        summary = self._walk().summary()
        assert summary["quarantines"] == 1
        assert summary["states"][2] == "quarantined"
        assert [d["transition"] for d in summary["decisions"]] == [
            EVENT_SUSPECT,
            EVENT_QUARANTINED,
        ]
        assert summary["decision_digest"]

"""Disabled-chaos parity: no injector means the pre-chaos bit stream.

The chaos wiring gates every hot-path hook on ``injector is not
None``; these tests pin the contract that a run with chaos disabled
(``chaos=None`` or ``ChaosConfig(enabled=False)``) is byte-identical
-- counters, summaries, payload keys -- to a run constructed without
any chaos argument at all.
"""

import json

import pytest

from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    FleetHealthConfig,
    ServingConfig,
)
from repro.cxl.fabric import CxlFabric
from repro.serving import IcgmmCacheService

#: The three spellings of "chaos off".
DISABLED = {
    "omitted": "omitted",
    "none": None,
    "disabled-config": ChaosConfig(enabled=False, seed=9),
}


def _serve(config, engine, pages, writes, chaos):
    serving = ServingConfig(
        chunk_requests=2_000,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=True,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    kwargs = {} if chaos == "omitted" else {"chaos": chaos}
    service = IcgmmCacheService(
        engine, config=config, serving=serving, **kwargs
    )
    try:
        service.ingest(pages, writes)
        return service.summary()
    finally:
        service.close()


def _stream_fabric(config, pages, writes, chaos):
    kwargs = {} if chaos == "omitted" else {"chaos": chaos}
    fabric = CxlFabric(
        FabricTopology(n_devices=4), config=config, **kwargs
    )
    try:
        fabric.bind("lru", 0.0)
        for start in range(0, pages.shape[0], 2_000):
            fabric.ingest(
                pages[start : start + 2_000],
                writes[start : start + 2_000],
            )
        return fabric.results().as_dict()
    finally:
        fabric.close()


class TestServingParity:
    @pytest.mark.parametrize("spelling", list(DISABLED))
    def test_summary_is_byte_identical(
        self, chaos_workload, spelling
    ):
        config, engine, pages, writes = chaos_workload
        reference = _serve(config, engine, pages, writes, "omitted")
        candidate = _serve(
            config, engine, pages, writes, DISABLED[spelling]
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_disabled_summary_has_no_chaos_section(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        summary = _serve(config, engine, pages, writes, None)
        assert "chaos" not in summary


class TestFabricParity:
    @pytest.mark.parametrize("spelling", list(DISABLED))
    def test_streamed_results_are_byte_identical(
        self, chaos_workload, spelling
    ):
        config, _, pages, writes = chaos_workload
        reference = _stream_fabric(config, pages, writes, "omitted")
        candidate = _stream_fabric(
            config, pages, writes, DISABLED[spelling]
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_disabled_devices_have_no_failover_keys(
        self, chaos_workload
    ):
        config, _, pages, writes = chaos_workload
        result = _stream_fabric(config, pages, writes, None)
        for device in result["devices"]:
            assert "failover_accesses" not in device
            assert "degraded_time_ns" not in device


def _prepared_workload(pages, writes):
    import numpy as np

    from repro.core.pipeline import PreparedWorkload

    class _StubEngine:
        admission_threshold = 0.0

    return PreparedWorkload(
        name="parity-prepared",
        page_indices=np.asarray(pages, dtype=np.int64),
        is_write=np.asarray(writes, dtype=bool),
        scores=np.zeros(pages.shape[0], dtype=np.float64),
        page_frequency_scores=np.zeros(
            pages.shape[0], dtype=np.float64
        ),
        engine=_StubEngine(),
    )


def _run_prepared(config, pages, writes, chaos="omitted", health="omitted"):
    kwargs = {}
    if chaos != "omitted":
        kwargs["chaos"] = chaos
    if health != "omitted":
        kwargs["health"] = health
    fabric = CxlFabric(
        FabricTopology(n_devices=4), config=config, **kwargs
    )
    try:
        return fabric.run_prepared(
            _prepared_workload(pages, writes), "lru"
        ).as_dict()
    finally:
        fabric.close()


class TestPreparedParity:
    """``run_prepared`` keeps the disabled-chaos contract too: with
    no injector and no monitor it executes the exact pre-chaos
    one-shot path, byte for byte."""

    @pytest.mark.parametrize("spelling", list(DISABLED))
    def test_prepared_results_are_byte_identical(
        self, chaos_workload, spelling
    ):
        config, _, pages, writes = chaos_workload
        reference = _run_prepared(config, pages, writes)
        candidate = _run_prepared(
            config, pages, writes, chaos=DISABLED[spelling]
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    @pytest.mark.parametrize(
        "health",
        [
            None,
            FleetHealthConfig(enabled=False),
        ],
        ids=["none", "disabled-config"],
    )
    def test_disabled_monitor_is_byte_identical(
        self, chaos_workload, health
    ):
        config, _, pages, writes = chaos_workload
        reference = _run_prepared(config, pages, writes)
        candidate = _run_prepared(
            config, pages, writes, health=health
        )
        assert json.dumps(candidate, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_single_device_fleet_gets_no_monitor(self, chaos_workload):
        """No fleet median to compare against and nowhere to re-home:
        a 1-device fabric silently drops the monitor and keeps the
        pre-monitor path."""
        config, _, pages, writes = chaos_workload
        fabric = CxlFabric(
            FabricTopology(n_devices=1),
            config=config,
            health=FleetHealthConfig(enabled=True),
        )
        try:
            assert fabric.monitor is None
            result = fabric.run_prepared(
                _prepared_workload(pages, writes), "lru"
            )
            assert result.accesses > 0
        finally:
            fabric.close()

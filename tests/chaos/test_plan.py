"""Fault-plan generation: deterministic, canonical, independent."""

import pytest

from repro.chaos import (
    FAULT_KINDS,
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    SCENARIO_NAMES,
    scenario_chaos,
)
from repro.core.config import ChaosConfig


def _config(**overrides):
    base = dict(
        enabled=True,
        seed=3,
        horizon_chunks=64,
        device_fail_rate=0.05,
        device_fail_chunks=4,
        link_degrade_rate=0.05,
        link_degrade_chunks=4,
        link_degrade_factor=3.0,
        shard_stall_rate=0.05,
        shard_stall_attempts=2,
        refresh_fail_rate=0.2,
        refresh_corrupt_rate=0.1,
        worker_crash_rate=0.02,
        worker_crash_attempts=1,
    )
    base.update(overrides)
    return ChaosConfig(**base)


def _generate(config):
    return FaultPlan.generate(
        config, n_devices=4, n_shards=4, task_lanes=4
    )


class TestDeterminism:
    def test_same_seed_same_timeline(self):
        one = _generate(_config())
        two = _generate(_config())
        assert one.events == two.events
        assert one.digest() == two.digest()

    def test_different_seed_different_timeline(self):
        one = _generate(_config(seed=3))
        two = _generate(_config(seed=4))
        assert one.digest() != two.digest()

    def test_channels_are_independent(self):
        """Silencing one channel must not move another's events."""
        full = _generate(_config())
        no_link = _generate(_config(link_degrade_rate=0.0))
        assert full.by_kind(KIND_DEVICE_FAIL) == no_link.by_kind(
            KIND_DEVICE_FAIL
        )
        assert full.by_kind(KIND_WORKER_CRASH) == no_link.by_kind(
            KIND_WORKER_CRASH
        )
        assert not no_link.by_kind(KIND_LINK_DEGRADE)


class TestShape:
    def test_events_sorted_and_within_horizon(self):
        plan = _generate(_config())
        assert list(plan.events) == sorted(plan.events)
        for event in plan.events:
            assert event.kind in FAULT_KINDS
            assert 0 <= event.start < 64
            if event.kind in (KIND_DEVICE_FAIL, KIND_LINK_DEGRADE):
                # Windows clamp to the horizon.
                assert event.start + event.duration <= 64

    def test_targets_match_topology(self):
        plan = _generate(_config())
        for event in plan.events:
            if event.kind in (KIND_REFRESH_FAIL, KIND_REFRESH_CORRUPT):
                assert event.target == -1
            else:
                assert 0 <= event.target < 4

    def test_zero_rates_empty_plan(self):
        plan = _generate(
            ChaosConfig(enabled=True, seed=3, horizon_chunks=64)
        )
        assert len(plan) == 0

    def test_direct_construction_is_canonical(self):
        config = ChaosConfig(enabled=True, seed=0)
        events = [
            FaultEvent(start=5, kind=KIND_SHARD_STALL, target=1),
            FaultEvent(start=2, kind=KIND_DEVICE_FAIL, target=0),
        ]
        plan = FaultPlan(config, events)
        assert [e.start for e in plan.events] == [2, 5]
        assert plan.as_dicts()[0]["kind"] == KIND_DEVICE_FAIL


class TestCorrelatedChannel:
    def test_blasts_hit_k_devices_together(self):
        plan = _generate(
            _config(
                correlated_fail_rate=0.1,
                correlated_fail_chunks=4,
                correlated_fail_k=2,
            )
        )
        blasts = plan.by_kind(KIND_DEVICE_CORRELATED)
        assert blasts
        by_start: dict[int, list] = {}
        for event in blasts:
            by_start.setdefault(event.start, []).append(event)
        for start, group in by_start.items():
            targets = [e.target for e in group]
            assert len(targets) == 2
            assert len(set(targets)) == 2
            assert targets == sorted(targets)
            assert len({e.duration for e in group}) == 1

    def test_k_exceeding_fleet_rejected_up_front(self):
        with pytest.raises(ValueError, match="exceeds the fleet"):
            _generate(
                _config(
                    correlated_fail_rate=0.1, correlated_fail_k=5
                )
            )

    def test_enabling_new_channels_preserves_old_streams(self):
        """The new channels append SeedSequence children; the first
        six channels' streams -- and therefore every pre-existing
        plan -- must be byte-identical at equal seeds."""
        old = _generate(_config())
        extended = _generate(
            _config(
                correlated_fail_rate=0.1,
                correlated_fail_k=2,
                failslow_rate=0.05,
                failslow_chunks=16,
                failslow_max_factor=4.0,
            )
        )
        for kind in (
            KIND_DEVICE_FAIL,
            KIND_LINK_DEGRADE,
            KIND_SHARD_STALL,
            KIND_REFRESH_FAIL,
            KIND_REFRESH_CORRUPT,
            KIND_WORKER_CRASH,
        ):
            assert old.by_kind(kind) == extended.by_kind(kind)


class TestFailslowChannel:
    @staticmethod
    def _failslow_only(**overrides):
        base = dict(
            enabled=True,
            seed=3,
            horizon_chunks=64,
            failslow_rate=0.05,
            failslow_chunks=4096,
            failslow_max_factor=6.0,
        )
        base.update(overrides)
        return ChaosConfig(**base)

    def test_ramps_carry_peak_magnitude_and_clamp(self):
        plan = _generate(self._failslow_only())
        ramps = plan.by_kind(KIND_DEVICE_FAILSLOW)
        assert ramps
        for event in ramps:
            assert event.magnitude == 6.0
            # Windows clamp to the horizon end: a fail-slow device
            # stays sick until the run ends.
            assert event.start + event.duration == 64

    def test_reset_blips_disabled_by_default(self):
        plan = _generate(self._failslow_only())
        assert not plan.by_kind(KIND_DEVICE_FAIL)

    def test_reset_blips_follow_window_geometry(self):
        plan = _generate(
            self._failslow_only(
                failslow_max_factor=8.0,
                failslow_reset_factor=4.0,
                failslow_reset_period=3,
            )
        )
        ramps = plan.by_kind(KIND_DEVICE_FAILSLOW)
        blips = plan.by_kind(KIND_DEVICE_FAIL)
        assert ramps and blips
        for ramp in ramps:
            mine = sorted(
                e.start for e in blips if e.target == ramp.target
            )
            assert mine, "every ramp past the reset factor blips"
            # factor(c) = 1 + 7 * (c - start + 1) / duration: the
            # first blip lands where the interpolation crosses 4.0.
            first = mine[0]
            duration = ramp.duration
            reached = 1.0 + 7.0 * (first - ramp.start + 1) / duration
            assert reached >= 4.0
            before = 1.0 + 7.0 * (first - ramp.start) / duration
            assert before < 4.0 or first == ramp.start
            for a, b in zip(mine, mine[1:]):
                assert b - a == 3
            for blip in mine:
                assert ramp.start <= blip < ramp.start + duration
        for event in blips:
            assert event.duration == 1


class TestScenarioFactory:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_scenarios_build_single_channel_configs(self, name):
        config = scenario_chaos(name, seed=5)
        assert config.enabled
        assert config.seed == 5
        plan = _generate(config)
        kinds = {event.kind for event in plan.events}
        assert kinds, f"scenario {name} scheduled nothing"

    def test_horizon_override(self):
        config = scenario_chaos("device_failure", 0, horizon_chunks=10)
        assert config.horizon_chunks == 10
        plan = _generate(config)
        for event in plan.events:
            assert event.start + event.duration <= 10

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            scenario_chaos("power-loss")

"""Graceful degradation + recovery of every victim layer.

Targeted, hand-written fault plans (not sampled ones) drive each
degradation path deterministically: fabric failover and degraded-link
pricing, serving stall retry/degrade, refresh backoff + circuit
breaker, executor crash retries -- plus the cross-cutting guarantee
that a chaotic run is bit-identical at every worker count.
"""

import numpy as np
import pytest

from repro.chaos import (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    ParallelConfig,
    ServingConfig,
)
from repro.core.parallel import ParallelExecutor, WorkerCrashError
from repro.cxl.fabric import CxlFabric
from repro.serving import IcgmmCacheService


def _inject(victim, events):
    """Swap a hand-written plan into an already-wired victim."""
    injector = FaultInjector(
        FaultPlan(ChaosConfig(enabled=True, seed=0), events)
    )
    victim.injector = injector
    victim._executor.fault_hook = injector.worker_crash_attempts
    return injector


#: Zero-rate but enabled: the victims build an (empty) injector and
#: activate every chaos gate, then tests swap in a targeted plan.
ARMED = ChaosConfig(enabled=True, seed=0)


def _fabric(config, chaos=ARMED, failover=True):
    return CxlFabric(
        FabricTopology(n_devices=4, failover=failover),
        config=config,
        chaos=chaos,
    )


def _stream(fabric, pages, writes, chunk=2_000):
    for start in range(0, pages.shape[0], chunk):
        fabric.ingest(
            pages[start : start + chunk],
            writes[start : start + chunk],
        )
    return fabric.results()


class TestFabricFailover:
    def test_outage_loses_zero_accesses(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=1, kind=KIND_DEVICE_FAIL, target=2,
                    duration=3,
                )
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]
        # The outage traffic was re-homed onto healthy devices and
        # billed the failover link premium.
        failover = sum(
            d.failover_stats.accesses
            for d in result.devices
            if d.failover_stats is not None
        )
        assert failover > 0
        assert sum(d.degraded_time_ns for d in result.devices) > 0
        kinds = [e.kind for e in fabric.metrics.events()]
        assert kinds.count("device-down") == 1
        assert kinds.count("device-restored") == 1
        assert fabric.metrics.recovery_latencies(
            "device-down", "device-restored"
        ) == [3]

    def test_failover_disabled_bypasses_but_keeps_accounting(
        self, chaos_workload
    ):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config, failover=False)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        # Bypass-priced, not dropped: the totals still cover the
        # whole stream and the failed device's slice shows up in its
        # own failover (degraded) counters.
        assert result.accesses == pages.shape[0]
        device = result.devices[1]
        assert device.failover_stats is not None
        assert device.failover_stats.accesses > 0
        assert device.failover_stats.misses == (
            device.failover_stats.accesses
        )

    def test_whole_fleet_down_degrades_to_bypass(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAIL, target=d,
                    duration=1,
                )
                for d in range(4)
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]

    def test_link_degradation_prices_only_the_window(
        self, chaos_workload
    ):
        config, _, pages, writes = chaos_workload

        def run(events):
            fabric = _fabric(config)
            _inject(fabric, events)
            try:
                fabric.bind("lru", 0.0)
                return _stream(fabric, pages, writes)
            finally:
                fabric.close()

        clean = run([])
        degraded = run(
            [
                FaultEvent(
                    start=0, kind=KIND_LINK_DEGRADE, target=0,
                    duration=2, magnitude=4.0,
                )
            ]
        )
        # Same bits, higher bill -- and only on the degraded device.
        assert degraded.totals == clean.totals
        assert degraded.devices[0].degraded_time_ns > 0
        assert degraded.devices[0].time_ns > clean.devices[0].time_ns
        for d in range(1, 4):
            assert degraded.devices[d].time_ns == clean.devices[d].time_ns


def _service(config, engine, serving, chaos=ARMED):
    return IcgmmCacheService(
        engine, config=config, serving=serving, chaos=chaos
    )


def _serving_config(**overrides):
    base = dict(
        chunk_requests=2_000,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=True,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestServingStalls:
    def test_stall_within_budget_is_transparent(self, chaos_workload):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config()
        clean = _service(config, engine, serving, chaos=None)
        clean.ingest(pages, writes)

        stalled = _service(config, engine, serving)
        _inject(
            stalled,
            [
                FaultEvent(
                    start=1, kind=KIND_SHARD_STALL, target=2,
                    duration=serving.shard_retry_limit,
                )
            ],
        )
        stalled.ingest(pages, writes)
        assert stalled.totals == clean.totals
        assert stalled._stall_retries == serving.shard_retry_limit
        events = stalled.shard_metrics.events("shard:2")
        assert [e.kind for e in events] == ["stall-recovered"]

    def test_stall_beyond_budget_degrades_shard_chunk(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config()
        clean = _service(config, engine, serving, chaos=None)
        clean.ingest(pages, writes)

        stalled = _service(config, engine, serving)
        _inject(
            stalled,
            [
                FaultEvent(
                    start=1, kind=KIND_SHARD_STALL, target=2,
                    duration=serving.shard_retry_limit + 1,
                )
            ],
        )
        stalled.ingest(pages, writes)
        # Degraded to SSD-direct for one shard-chunk: every access
        # still accounted, misses strictly higher.
        assert stalled.totals.accesses == clean.totals.accesses
        assert stalled.totals.misses > clean.totals.misses
        events = stalled.shard_metrics.events("shard:2")
        assert [e.kind for e in events] == ["stall-degraded"]
        assert stalled.shard_metrics.degraded_total(
            "shard:2"
        ).accesses > 0


class TestRefreshFaults:
    def test_failed_build_backs_off_and_keeps_serving(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        service = _service(config, engine, _serving_config())
        _inject(
            service,
            [FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1)],
        )
        service.ingest(pages, writes)
        assert service.totals.accesses == pages.shape[0]
        assert service._refresh_attempts >= 2
        engine_events = [
            e.kind for e in service.shard_metrics.events("engine")
        ]
        assert "refresh-failed" in engine_events
        # Build 1 was clean: the service recovered with a swap.
        assert "refresh-swap" in engine_events
        assert service.generation >= 1

    def test_corrupt_build_is_rejected_by_validation(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        service = _service(config, engine, _serving_config())
        _inject(
            service,
            [
                FaultEvent(
                    start=0, kind=KIND_REFRESH_CORRUPT, target=-1
                )
            ],
        )
        service.ingest(pages, writes)
        failed = [
            e
            for e in service.shard_metrics.events("engine")
            if e.kind == "refresh-failed"
        ]
        assert failed and "finite" in failed[0].info["reason"]
        assert service.generation >= 1  # later clean build landed

    def test_breaker_opens_then_half_opens(self, chaos_workload):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config(
            refresh_backoff_chunks=1,
            refresh_breaker_threshold=2,
            quarantine_chunks=2,
        )
        service = _service(config, engine, serving)
        _inject(
            service,
            [
                FaultEvent(
                    start=build, kind=KIND_REFRESH_FAIL, target=-1
                )
                for build in range(2)
            ],
        )
        service.ingest(pages, writes)
        kinds = [
            e.kind for e in service.shard_metrics.events("engine")
        ]
        assert kinds.count("refresh-failed") == 2
        assert "breaker-open" in kinds
        assert "breaker-close" in kinds
        assert kinds.index("breaker-open") < kinds.index(
            "breaker-close"
        )
        latencies = service.shard_metrics.recovery_latencies(
            "breaker-open", "breaker-close"
        )
        assert latencies and latencies[0] >= serving.quarantine_chunks
        # The breaker never took generation 0 out of service.
        assert service.totals.accesses == pages.shape[0]


class TestExecutorCrashes:
    def test_crashes_within_budget_are_transparent(self):
        def hook(dispatch_round, task):
            return 1 if (dispatch_round, task) == (0, 1) else 0

        executor = ParallelExecutor(workers=2, max_retries=2)
        executor.fault_hook = hook
        try:
            assert executor.map(lambda v: v * v, [1, 2, 3]) == [1, 4, 9]
            assert executor.retries_performed == 1
        finally:
            executor.shutdown()

    def test_budget_exhaustion_raises_worker_crash_error(self):
        executor = ParallelExecutor(workers=2, max_retries=1)
        executor.fault_hook = lambda r, t: 2
        try:
            with pytest.raises(WorkerCrashError, match="retry budget"):
                executor.map(lambda v: v, [1])
        finally:
            executor.shutdown()


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_chaotic_run_is_bit_identical_across_workers(
        self, chaos_workload, workers
    ):
        config, engine, pages, writes = chaos_workload
        chaos = ChaosConfig(
            enabled=True,
            seed=13,
            horizon_chunks=8,
            shard_stall_rate=0.2,
            shard_stall_attempts=3,
            refresh_fail_rate=0.5,
            worker_crash_rate=0.1,
            worker_crash_attempts=1,
        )

        def run(n_workers):
            serving = _serving_config(
                parallel=ParallelConfig(
                    workers=n_workers, backend="thread", max_retries=2
                )
            )
            service = _service(config, engine, serving, chaos=chaos)
            try:
                service.ingest(pages, writes)
                return (
                    service.totals,
                    service.generation,
                    service.injector.timeline_digest(),
                    [
                        e.as_dict()
                        for e in service.shard_metrics.events()
                    ],
                )
            finally:
                service.close()

        assert run(1) == run(workers)

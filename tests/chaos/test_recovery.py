"""Graceful degradation + recovery of every victim layer.

Targeted, hand-written fault plans (not sampled ones) drive each
degradation path deterministically: fabric failover and degraded-link
pricing, serving stall retry/degrade, refresh backoff + circuit
breaker, executor crash retries -- plus the cross-cutting guarantee
that a chaotic run is bit-identical at every worker count.
"""

import numpy as np
import pytest

from repro.chaos import (
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    FleetHealthConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.parallel import ParallelExecutor, WorkerCrashError
from repro.cxl.fabric import CxlFabric
from repro.serving import IcgmmCacheService


def _inject(victim, events):
    """Swap a hand-written plan into an already-wired victim."""
    injector = FaultInjector(
        FaultPlan(ChaosConfig(enabled=True, seed=0), events)
    )
    victim.injector = injector
    victim._executor.fault_hook = injector.worker_crash_attempts
    return injector


#: Zero-rate but enabled: the victims build an (empty) injector and
#: activate every chaos gate, then tests swap in a targeted plan.
ARMED = ChaosConfig(enabled=True, seed=0)


def _fabric(config, chaos=ARMED, failover=True, health=None):
    return CxlFabric(
        FabricTopology(n_devices=4, failover=failover),
        config=config,
        chaos=chaos,
        health=health,
    )


def _stream(fabric, pages, writes, chunk=2_000):
    for start in range(0, pages.shape[0], chunk):
        fabric.ingest(
            pages[start : start + chunk],
            writes[start : start + chunk],
        )
    return fabric.results()


class TestFabricFailover:
    def test_outage_loses_zero_accesses(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=1, kind=KIND_DEVICE_FAIL, target=2,
                    duration=3,
                )
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]
        # The outage traffic was re-homed onto healthy devices and
        # billed the failover link premium.
        failover = sum(
            d.failover_stats.accesses
            for d in result.devices
            if d.failover_stats is not None
        )
        assert failover > 0
        assert sum(d.degraded_time_ns for d in result.devices) > 0
        kinds = [e.kind for e in fabric.metrics.events()]
        assert kinds.count("device-down") == 1
        assert kinds.count("device-restored") == 1
        assert fabric.metrics.recovery_latencies(
            "device-down", "device-restored"
        ) == [3]

    def test_failover_disabled_bypasses_but_keeps_accounting(
        self, chaos_workload
    ):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config, failover=False)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        # Bypass-priced, not dropped: the totals still cover the
        # whole stream and the failed device's slice shows up in its
        # own failover (degraded) counters.
        assert result.accesses == pages.shape[0]
        device = result.devices[1]
        assert device.failover_stats is not None
        assert device.failover_stats.accesses > 0
        assert device.failover_stats.misses == (
            device.failover_stats.accesses
        )

    def test_whole_fleet_down_degrades_to_bypass(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAIL, target=d,
                    duration=1,
                )
                for d in range(4)
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]

    def test_link_degradation_prices_only_the_window(
        self, chaos_workload
    ):
        config, _, pages, writes = chaos_workload

        def run(events):
            fabric = _fabric(config)
            _inject(fabric, events)
            try:
                fabric.bind("lru", 0.0)
                return _stream(fabric, pages, writes)
            finally:
                fabric.close()

        clean = run([])
        degraded = run(
            [
                FaultEvent(
                    start=0, kind=KIND_LINK_DEGRADE, target=0,
                    duration=2, magnitude=4.0,
                )
            ]
        )
        # Same bits, higher bill -- and only on the degraded device.
        assert degraded.totals == clean.totals
        assert degraded.devices[0].degraded_time_ns > 0
        assert degraded.devices[0].time_ns > clean.devices[0].time_ns
        for d in range(1, 4):
            assert degraded.devices[d].time_ns == clean.devices[d].time_ns


class TestFailslowDegradation:
    def _run(self, config, pages, writes, events):
        fabric = _fabric(config)
        _inject(fabric, events)
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
            events_out = [
                (e.key, e.kind, e.chunk_index)
                for e in fabric.metrics.events()
            ]
            return result, events_out
        finally:
            fabric.close()

    def test_ramp_prices_only_the_target(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        clean, _ = self._run(config, pages, writes, [])
        slow, events = self._run(
            config,
            pages,
            writes,
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAILSLOW, target=3,
                    duration=4, magnitude=3.0,
                )
            ],
        )
        # Same bits, higher bill -- a fail-slow device still answers
        # correctly, it just answers slowly, and only it pays.
        assert slow.totals == clean.totals
        assert slow.devices[3].degraded_time_ns > 0
        assert slow.devices[3].time_ns > clean.devices[3].time_ns
        for d in range(3):
            assert slow.devices[d].time_ns == clean.devices[d].time_ns
        # The fabric stamps the ramp's edges on the timeline.
        assert ("device:3", "failslow-onset", 0) in events
        assert ("device:3", "failslow-cleared", 4) in events

    def test_watchdog_reset_restarts_cold(self, chaos_workload):
        """An outage beginning mid-ramp is a controller reset: the
        device must come back with wiped (cold) cache planes, unlike
        a plain outage whose cache survives."""
        config, _, pages, writes = chaos_workload
        # Mid-phase blip: the hot set is unchanged across it, so a
        # surviving cache re-hits immediately while a wiped one
        # re-faults the very pages it just held.
        blip = [
            FaultEvent(
                start=2, kind=KIND_DEVICE_FAIL, target=0, duration=1
            )
        ]
        warm, _ = self._run(config, pages, writes, blip)
        cold, _ = self._run(
            config,
            pages,
            writes,
            blip
            + [
                FaultEvent(
                    start=1, kind=KIND_DEVICE_FAILSLOW, target=0,
                    duration=6, magnitude=2.0,
                )
            ],
        )
        assert warm.accesses == cold.accesses == pages.shape[0]
        # Cold restart re-faults the working set the warm restart
        # still holds.
        assert cold.devices[0].stats.misses > warm.devices[0].stats.misses


class TestCorrelatedBlast:
    def test_blast_loses_zero_accesses(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=2, kind=KIND_DEVICE_CORRELATED, target=d,
                    duration=2,
                )
                for d in (1, 2)
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes)
            kinds = [e.kind for e in fabric.metrics.events()]
            recovery = fabric.metrics.recovery_latencies(
                "device-down", "device-restored"
            )
        finally:
            fabric.close()
        # Half the fleet down together: everything still served, the
        # blast traffic re-homed onto the two survivors.
        assert result.accesses == pages.shape[0]
        for victim in (1, 2):
            assert result.devices[victim].failover_stats.accesses > 0
        assert kinds.count("device-down") == 2
        assert kinds.count("device-restored") == 2
        assert recovery == [2, 2]


class TestHealthMonitorRecovery:
    def test_quarantine_rehomes_then_reinstates(self, chaos_workload):
        """End-to-end monitor walk on a live fabric: a fail-slow ramp
        breaches the fleet median, the device is quarantined (its
        traffic re-homed score-aware like an outage), then probed and
        reinstated once the ramp clears -- with zero access loss."""
        config, _, pages, writes = chaos_workload
        health = FleetHealthConfig(
            enabled=True,
            latency_threshold=2.5,
            breach_chunks=2,
            quarantine_chunks=3,
            probation_chunks=2,
        )
        fabric = _fabric(config, health=health)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=2, kind=KIND_DEVICE_FAILSLOW, target=1,
                    duration=8, magnitude=8.0,
                )
            ],
        )
        try:
            fabric.bind("lru", 0.0)
            result = _stream(fabric, pages, writes, chunk=1_000)
            monitor = fabric.monitor
            kinds = [
                e.kind
                for e in fabric.metrics.events("device:1")
            ]
            failover = sum(
                d.failover_stats.accesses
                for d in result.devices
                if d.failover_stats is not None
            )
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]
        assert monitor.quarantines == 1
        assert monitor.reinstatements == 1
        # The sick device walked the full state machine, in order.
        walk = [
            "device-suspect",
            "device-quarantined",
            "device-probation",
            "device-reinstated",
        ]
        positions = [kinds.index(k) for k in walk]
        assert positions == sorted(positions)
        # Quarantined traffic was re-homed, not dropped.
        assert failover > 0
        # Nobody else was touched: one quarantine, one reinstatement.
        assert monitor.state(1) == "healthy"
        assert all(
            monitor.state(d) == "healthy" for d in range(4)
        )

    def test_monitor_idle_on_healthy_fleet(self, chaos_workload):
        """No faults: the monitor must not fire -- results match the
        monitor-free fabric bit for bit (modulo the chaos lens)."""
        config, _, pages, writes = chaos_workload
        health = FleetHealthConfig(
            enabled=True,
            latency_threshold=2.5,
            breach_chunks=2,
        )
        plain = _fabric(config, chaos=None)
        watched = _fabric(config, chaos=None, health=health)
        try:
            plain.bind("lru", 0.0)
            watched.bind("lru", 0.0)
            reference = _stream(plain, pages, writes)
            candidate = _stream(watched, pages, writes)
            monitor = watched.monitor
        finally:
            plain.close()
            watched.close()
        assert monitor.quarantines == 0
        assert candidate.totals == reference.totals
        for ours, theirs in zip(
            candidate.devices, reference.devices, strict=True
        ):
            assert ours.stats == theirs.stats
            assert ours.time_ns == theirs.time_ns


def _prepared(pages, writes):
    from repro.core.pipeline import PreparedWorkload

    class _StubEngine:
        admission_threshold = 0.0

    return PreparedWorkload(
        name="recovery-prepared",
        page_indices=np.asarray(pages, dtype=np.int64),
        is_write=np.asarray(writes, dtype=bool),
        scores=np.zeros(pages.shape[0], dtype=np.float64),
        page_frequency_scores=np.zeros(
            pages.shape[0], dtype=np.float64
        ),
        engine=_StubEngine(),
    )


class TestPreparedChaos:
    def test_prepared_outage_loses_zero_accesses(self, chaos_workload):
        """The one-shot entry point survives faults by degrading to
        the chunked ingest path: outages fire and fail over exactly
        as on a streamed run."""
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        _inject(
            fabric,
            [
                FaultEvent(
                    start=1, kind=KIND_DEVICE_FAIL, target=2,
                    duration=3,
                )
            ],
        )
        try:
            result = fabric.run_prepared(
                _prepared(pages, writes), "lru", chunk_requests=2_000
            )
            kinds = [e.kind for e in fabric.metrics.events()]
        finally:
            fabric.close()
        assert result.accesses == pages.shape[0]
        assert result.devices[2].failover_stats.accesses > 0
        assert kinds.count("device-down") == 1
        assert kinds.count("device-restored") == 1

    def test_keep_outcomes_rejected_under_chaos(self, chaos_workload):
        config, _, pages, writes = chaos_workload
        fabric = _fabric(config)
        try:
            with pytest.raises(ValueError, match="keep_outcomes"):
                fabric.run_prepared(
                    _prepared(pages, writes),
                    "lru",
                    keep_outcomes=True,
                )
        finally:
            fabric.close()

    def test_monitored_prepared_matches_streamed(self, chaos_workload):
        """A monitor (no injector) also routes run_prepared through
        the chunked path; counters must match a streamed run with the
        same chunking bit for bit."""
        config, _, pages, writes = chaos_workload
        health = FleetHealthConfig(enabled=True, latency_threshold=2.5)
        streamed = _fabric(config, chaos=None, health=health)
        prepared = _fabric(config, chaos=None, health=health)
        try:
            streamed.bind("lru", 0.0)
            reference = _stream(streamed, pages, writes)
            candidate = prepared.run_prepared(
                _prepared(pages, writes), "lru", chunk_requests=2_000
            )
        finally:
            streamed.close()
            prepared.close()
        assert candidate.totals == reference.totals
        assert candidate.total_time_ns == reference.total_time_ns


def _service(config, engine, serving, chaos=ARMED):
    return IcgmmCacheService(
        engine, config=config, serving=serving, chaos=chaos
    )


def _serving_config(**overrides):
    base = dict(
        chunk_requests=2_000,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=True,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestServingStalls:
    def test_stall_within_budget_is_transparent(self, chaos_workload):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config()
        clean = _service(config, engine, serving, chaos=None)
        clean.ingest(pages, writes)

        stalled = _service(config, engine, serving)
        _inject(
            stalled,
            [
                FaultEvent(
                    start=1, kind=KIND_SHARD_STALL, target=2,
                    duration=serving.shard_retry_limit,
                )
            ],
        )
        stalled.ingest(pages, writes)
        assert stalled.totals == clean.totals
        assert stalled._stall_retries == serving.shard_retry_limit
        events = stalled.shard_metrics.events("shard:2")
        assert [e.kind for e in events] == ["stall-recovered"]

    def test_stall_beyond_budget_degrades_shard_chunk(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config()
        clean = _service(config, engine, serving, chaos=None)
        clean.ingest(pages, writes)

        stalled = _service(config, engine, serving)
        _inject(
            stalled,
            [
                FaultEvent(
                    start=1, kind=KIND_SHARD_STALL, target=2,
                    duration=serving.shard_retry_limit + 1,
                )
            ],
        )
        stalled.ingest(pages, writes)
        # Degraded to SSD-direct for one shard-chunk: every access
        # still accounted, misses strictly higher.
        assert stalled.totals.accesses == clean.totals.accesses
        assert stalled.totals.misses > clean.totals.misses
        events = stalled.shard_metrics.events("shard:2")
        assert [e.kind for e in events] == ["stall-degraded"]
        assert stalled.shard_metrics.degraded_total(
            "shard:2"
        ).accesses > 0


class TestRefreshFaults:
    def test_failed_build_backs_off_and_keeps_serving(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        service = _service(config, engine, _serving_config())
        _inject(
            service,
            [FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1)],
        )
        service.ingest(pages, writes)
        assert service.totals.accesses == pages.shape[0]
        assert service._refresh_attempts >= 2
        engine_events = [
            e.kind for e in service.shard_metrics.events("engine")
        ]
        assert "refresh-failed" in engine_events
        # Build 1 was clean: the service recovered with a swap.
        assert "refresh-swap" in engine_events
        assert service.generation >= 1

    def test_corrupt_build_is_rejected_by_validation(
        self, chaos_workload
    ):
        config, engine, pages, writes = chaos_workload
        service = _service(config, engine, _serving_config())
        _inject(
            service,
            [
                FaultEvent(
                    start=0, kind=KIND_REFRESH_CORRUPT, target=-1
                )
            ],
        )
        service.ingest(pages, writes)
        failed = [
            e
            for e in service.shard_metrics.events("engine")
            if e.kind == "refresh-failed"
        ]
        assert failed and "finite" in failed[0].info["reason"]
        assert service.generation >= 1  # later clean build landed

    def test_breaker_opens_then_half_opens(self, chaos_workload):
        config, engine, pages, writes = chaos_workload
        serving = _serving_config(
            refresh_backoff_chunks=1,
            refresh_breaker_threshold=2,
            quarantine_chunks=2,
        )
        service = _service(config, engine, serving)
        _inject(
            service,
            [
                FaultEvent(
                    start=build, kind=KIND_REFRESH_FAIL, target=-1
                )
                for build in range(2)
            ],
        )
        service.ingest(pages, writes)
        kinds = [
            e.kind for e in service.shard_metrics.events("engine")
        ]
        assert kinds.count("refresh-failed") == 2
        assert "breaker-open" in kinds
        assert "breaker-close" in kinds
        assert kinds.index("breaker-open") < kinds.index(
            "breaker-close"
        )
        latencies = service.shard_metrics.recovery_latencies(
            "breaker-open", "breaker-close"
        )
        assert latencies and latencies[0] >= serving.quarantine_chunks
        # The breaker never took generation 0 out of service.
        assert service.totals.accesses == pages.shape[0]


class TestExecutorCrashes:
    def test_crashes_within_budget_are_transparent(self):
        def hook(dispatch_round, task):
            return 1 if (dispatch_round, task) == (0, 1) else 0

        executor = ParallelExecutor(workers=2, max_retries=2)
        executor.fault_hook = hook
        try:
            assert executor.map(lambda v: v * v, [1, 2, 3]) == [1, 4, 9]
            assert executor.retries_performed == 1
        finally:
            executor.shutdown()

    def test_budget_exhaustion_raises_worker_crash_error(self):
        executor = ParallelExecutor(workers=2, max_retries=1)
        executor.fault_hook = lambda r, t: 2
        try:
            with pytest.raises(WorkerCrashError, match="retry budget"):
                executor.map(lambda v: v, [1])
        finally:
            executor.shutdown()


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_chaotic_run_is_bit_identical_across_workers(
        self, chaos_workload, workers
    ):
        config, engine, pages, writes = chaos_workload
        chaos = ChaosConfig(
            enabled=True,
            seed=13,
            horizon_chunks=8,
            shard_stall_rate=0.2,
            shard_stall_attempts=3,
            refresh_fail_rate=0.5,
            worker_crash_rate=0.1,
            worker_crash_attempts=1,
        )

        def run(n_workers):
            serving = _serving_config(
                parallel=ParallelConfig(
                    workers=n_workers, backend="thread", max_retries=2
                )
            )
            service = _service(config, engine, serving, chaos=chaos)
            try:
                service.ingest(pages, writes)
                return (
                    service.totals,
                    service.generation,
                    service.injector.timeline_digest(),
                    [
                        e.as_dict()
                        for e in service.shard_metrics.events()
                    ],
                )
            finally:
                service.close()

        assert run(1) == run(workers)

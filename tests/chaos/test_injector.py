"""Injector queries: pure lookups, deduped observed timeline."""

import pytest

from repro.chaos import (
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.core.config import ChaosConfig


def _injector(events):
    config = ChaosConfig(enabled=True, seed=0)
    return FaultInjector(FaultPlan(config, events))


class TestFromConfig:
    def test_none_when_disabled(self):
        assert FaultInjector.from_config(None) is None
        assert (
            FaultInjector.from_config(ChaosConfig(enabled=False))
            is None
        )

    def test_injector_when_enabled(self):
        injector = FaultInjector.from_config(
            ChaosConfig(enabled=True, seed=1, device_fail_rate=0.5),
            n_devices=2,
        )
        assert injector is not None
        assert len(injector.plan) > 0


class TestQueries:
    def test_device_windows(self):
        injector = _injector(
            [
                FaultEvent(
                    start=3, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ]
        )
        assert not injector.device_down(1, 2)
        assert injector.device_down(1, 3)
        assert injector.device_down(1, 4)
        assert not injector.device_down(1, 5)
        assert not injector.device_down(0, 3)
        assert injector.outage_end(1, 3) == 5
        assert injector.outage_end(1, 5) is None

    def test_link_factor(self):
        injector = _injector(
            [
                FaultEvent(
                    start=1, kind=KIND_LINK_DEGRADE, target=0,
                    duration=2, magnitude=4.0,
                )
            ]
        )
        assert injector.link_factor(0, 0) == 1.0
        assert injector.link_factor(0, 1) == 4.0
        assert injector.link_factor(1, 1) == 1.0

    def test_stall_refresh_crash(self):
        injector = _injector(
            [
                FaultEvent(
                    start=2, kind=KIND_SHARD_STALL, target=3,
                    duration=2,
                ),
                FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1),
                FaultEvent(
                    start=1, kind=KIND_REFRESH_CORRUPT, target=-1
                ),
                FaultEvent(
                    start=4, kind=KIND_WORKER_CRASH, target=1,
                    duration=1,
                ),
            ]
        )
        assert injector.shard_stall_attempts(2, 3) == 2
        assert injector.shard_stall_attempts(2, 0) == 0
        assert injector.refresh_fault(0) == "fail"
        assert injector.refresh_fault(1) == "corrupt"
        assert injector.refresh_fault(2) is None
        assert injector.worker_crash_attempts(4, 1) == 1
        assert injector.worker_crash_attempts(4, 0) == 0


class TestOverlappingWindows:
    def test_same_target_windows_merge(self):
        """Regression: two overlapping outage windows on the same
        (kind, target) must behave -- and be recorded -- as one
        continuous outage, not double-recorded or truncated at the
        first window's end."""
        injector = _injector(
            [
                FaultEvent(
                    start=2, kind=KIND_DEVICE_FAIL, target=1,
                    duration=3,
                ),
                FaultEvent(
                    start=4, kind=KIND_DEVICE_FAIL, target=1,
                    duration=3,
                ),
            ]
        )
        assert not injector.device_down(1, 1)
        for chunk in range(2, 7):
            assert injector.device_down(1, chunk)
        assert not injector.device_down(1, 7)
        # The merged window reports one outage ending at 7...
        assert injector.outage_end(1, 2) == 7
        assert injector.outage_end(1, 6) == 7
        # ...and the observed timeline holds exactly one record.
        assert len(injector.records) == 1
        record = injector.records[0]
        assert record.start == 2 and record.duration == 5

    def test_correlated_counts_as_outage(self):
        injector = _injector(
            [
                FaultEvent(
                    start=3, kind=KIND_DEVICE_CORRELATED, target=0,
                    duration=2,
                ),
                FaultEvent(
                    start=3, kind=KIND_DEVICE_CORRELATED, target=2,
                    duration=2,
                ),
            ]
        )
        assert injector.device_down(0, 3)
        assert injector.device_down(2, 4)
        assert not injector.device_down(1, 3)
        assert not injector.device_down(0, 5)

    def test_correlated_and_plain_windows_merge(self):
        """A correlated blast overlapping a plain outage on the same
        device is one continuous down window."""
        injector = _injector(
            [
                FaultEvent(
                    start=2, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                ),
                FaultEvent(
                    start=3, kind=KIND_DEVICE_CORRELATED, target=1,
                    duration=3,
                ),
            ]
        )
        for chunk in range(2, 6):
            assert injector.device_down(1, chunk)
        assert injector.outage_end(1, 2) == 6


class TestFailslowFactor:
    def test_ramp_interpolates_to_peak(self):
        injector = _injector(
            [
                FaultEvent(
                    start=4, kind=KIND_DEVICE_FAILSLOW, target=2,
                    duration=4, magnitude=5.0,
                )
            ]
        )
        assert injector.failslow_factor(2, 3) == 1.0
        assert injector.failslow_factor(2, 4) == pytest.approx(2.0)
        assert injector.failslow_factor(2, 5) == pytest.approx(3.0)
        assert injector.failslow_factor(2, 6) == pytest.approx(4.0)
        assert injector.failslow_factor(2, 7) == pytest.approx(5.0)
        assert injector.failslow_factor(2, 8) == 1.0
        assert injector.failslow_factor(0, 5) == 1.0

    def test_repeated_queries_record_once(self):
        injector = _injector(
            [
                FaultEvent(
                    start=0, kind=KIND_DEVICE_FAILSLOW, target=1,
                    duration=8, magnitude=3.0,
                )
            ]
        )
        for chunk in range(8):
            injector.failslow_factor(1, chunk)
            injector.failslow_factor(1, chunk)
        assert len(injector.records) == 1
        assert injector.records[0].kind == KIND_DEVICE_FAILSLOW


class TestObservedTimeline:
    def test_queries_are_pure_and_records_dedupe(self):
        injector = _injector(
            [
                FaultEvent(
                    start=3, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ]
        )
        # A retried chunk re-queries the same tick: same answer,
        # recorded once.
        for _ in range(3):
            assert injector.device_down(1, 3)
        assert injector.device_down(1, 4)  # same window, later tick
        assert len(injector.records) == 1
        record = injector.records[0]
        assert record.start == 3 and record.duration == 2

    def test_timeline_only_holds_fired_faults(self):
        injector = _injector(
            [
                FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1),
                FaultEvent(start=9, kind=KIND_REFRESH_FAIL, target=-1),
            ]
        )
        injector.refresh_fault(0)
        # Build 9 never happens: it must not appear in the record.
        timeline = injector.timeline()
        assert len(timeline) == 1
        assert timeline[0]["start"] == 0

    def test_digest_tracks_observations(self):
        events = [
            FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1)
        ]
        one, two = _injector(events), _injector(events)
        assert one.timeline_digest() == two.timeline_digest()
        one.refresh_fault(0)
        assert one.timeline_digest() != two.timeline_digest()
        two.refresh_fault(0)
        assert one.timeline_digest() == two.timeline_digest()

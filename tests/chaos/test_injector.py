"""Injector queries: pure lookups, deduped observed timeline."""

from repro.chaos import (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.core.config import ChaosConfig


def _injector(events):
    config = ChaosConfig(enabled=True, seed=0)
    return FaultInjector(FaultPlan(config, events))


class TestFromConfig:
    def test_none_when_disabled(self):
        assert FaultInjector.from_config(None) is None
        assert (
            FaultInjector.from_config(ChaosConfig(enabled=False))
            is None
        )

    def test_injector_when_enabled(self):
        injector = FaultInjector.from_config(
            ChaosConfig(enabled=True, seed=1, device_fail_rate=0.5),
            n_devices=2,
        )
        assert injector is not None
        assert len(injector.plan) > 0


class TestQueries:
    def test_device_windows(self):
        injector = _injector(
            [
                FaultEvent(
                    start=3, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ]
        )
        assert not injector.device_down(1, 2)
        assert injector.device_down(1, 3)
        assert injector.device_down(1, 4)
        assert not injector.device_down(1, 5)
        assert not injector.device_down(0, 3)
        assert injector.outage_end(1, 3) == 5
        assert injector.outage_end(1, 5) is None

    def test_link_factor(self):
        injector = _injector(
            [
                FaultEvent(
                    start=1, kind=KIND_LINK_DEGRADE, target=0,
                    duration=2, magnitude=4.0,
                )
            ]
        )
        assert injector.link_factor(0, 0) == 1.0
        assert injector.link_factor(0, 1) == 4.0
        assert injector.link_factor(1, 1) == 1.0

    def test_stall_refresh_crash(self):
        injector = _injector(
            [
                FaultEvent(
                    start=2, kind=KIND_SHARD_STALL, target=3,
                    duration=2,
                ),
                FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1),
                FaultEvent(
                    start=1, kind=KIND_REFRESH_CORRUPT, target=-1
                ),
                FaultEvent(
                    start=4, kind=KIND_WORKER_CRASH, target=1,
                    duration=1,
                ),
            ]
        )
        assert injector.shard_stall_attempts(2, 3) == 2
        assert injector.shard_stall_attempts(2, 0) == 0
        assert injector.refresh_fault(0) == "fail"
        assert injector.refresh_fault(1) == "corrupt"
        assert injector.refresh_fault(2) is None
        assert injector.worker_crash_attempts(4, 1) == 1
        assert injector.worker_crash_attempts(4, 0) == 0


class TestObservedTimeline:
    def test_queries_are_pure_and_records_dedupe(self):
        injector = _injector(
            [
                FaultEvent(
                    start=3, kind=KIND_DEVICE_FAIL, target=1,
                    duration=2,
                )
            ]
        )
        # A retried chunk re-queries the same tick: same answer,
        # recorded once.
        for _ in range(3):
            assert injector.device_down(1, 3)
        assert injector.device_down(1, 4)  # same window, later tick
        assert len(injector.records) == 1
        record = injector.records[0]
        assert record.start == 3 and record.duration == 2

    def test_timeline_only_holds_fired_faults(self):
        injector = _injector(
            [
                FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1),
                FaultEvent(start=9, kind=KIND_REFRESH_FAIL, target=-1),
            ]
        )
        injector.refresh_fault(0)
        # Build 9 never happens: it must not appear in the record.
        timeline = injector.timeline()
        assert len(timeline) == 1
        assert timeline[0]["start"] == 0

    def test_digest_tracks_observations(self):
        events = [
            FaultEvent(start=0, kind=KIND_REFRESH_FAIL, target=-1)
        ]
        one, two = _injector(events), _injector(events)
        assert one.timeline_digest() == two.timeline_digest()
        one.refresh_fault(0)
        assert one.timeline_digest() != two.timeline_digest()
        two.refresh_fault(0)
        assert one.timeline_digest() == two.timeline_digest()

"""Tests for cache statistics."""

import pytest

from repro.cache.stats import CacheStats


class TestDerivedRates:
    def test_miss_rate(self):
        stats = CacheStats(hits=75, misses=25)
        assert stats.miss_rate == 0.25
        assert stats.hit_rate == 0.75
        assert stats.accesses == 100

    def test_empty_run_rates_are_zero(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0
        assert stats.bypass_rate == 0.0
        assert stats.dirty_eviction_rate == 0.0

    def test_bypass_rate(self):
        stats = CacheStats(hits=0, misses=10, bypasses=4)
        assert stats.bypass_rate == 0.4

    def test_dirty_eviction_rate(self):
        stats = CacheStats(misses=20, evictions=10, dirty_evictions=5)
        assert stats.dirty_eviction_rate == 0.25


class TestMerge:
    def test_merge_sums_counters(self):
        a = CacheStats(hits=1, misses=2, bypasses=1, fills=1,
                       evictions=1, dirty_evictions=1, write_hits=1,
                       write_misses=1)
        b = CacheStats(hits=10, misses=20, bypasses=10, fills=10,
                       evictions=10, dirty_evictions=10, write_hits=10,
                       write_misses=10)
        merged = a.merge(b)
        assert merged.hits == 11
        assert merged.misses == 22
        assert merged.accesses == 33
        assert merged.dirty_evictions == 11

    def test_merge_does_not_mutate(self):
        a = CacheStats(hits=1)
        b = CacheStats(hits=2)
        a.merge(b)
        assert a.hits == 1
        assert b.hits == 2


class TestAsDict:
    def test_contains_counters_and_rates(self):
        stats = CacheStats(hits=3, misses=1)
        payload = stats.as_dict()
        assert payload["hits"] == 3
        assert payload["miss_rate"] == pytest.approx(0.25)
        assert set(payload) >= {
            "hits",
            "misses",
            "bypasses",
            "fills",
            "evictions",
            "dirty_evictions",
            "miss_rate",
            "hit_rate",
        }

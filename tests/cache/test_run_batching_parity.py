"""Differential tests: per-set run-length batching vs the reference.

The run-length engine of :mod:`repro.cache.simulate_fast` collapses
consecutive same-page accesses into closed-form kernel updates
(``on_hit_runs``) and replays bypassed runs' admission scans
vectorized.  Its contract is the fast path's usual one -- *bit
identical* counters, final cache planes, and per-access outcomes
against the scalar reference -- stressed here with the hot-set-skewed
traces run batching exists for: a single hammered page, a single
scorching set, two-set ping-pong, long geometric runs, and
memtier-style traffic with hot fraction 0.99.
"""

import numpy as np
import pytest

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    ScoreBasedPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.policies.kernels import kernel_for
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.core.policy import CombinedIcgmmPolicy

#: Every registered-kernel policy (RandomPolicy is scalar-only by
#: design and exercises no batching path).
POLICY_FACTORIES = [
    ("lru", lambda pages, universe: LruPolicy()),
    ("fifo", lambda pages, universe: FifoPolicy()),
    ("lfu", lambda pages, universe: LfuPolicy()),
    ("lfu-decay", lambda pages, universe: LfuPolicy(decay=0.9)),
    ("clock", lambda pages, universe: ClockPolicy()),
    ("slru", lambda pages, universe: SlruPolicy()),
    ("2q", lambda pages, universe: TwoQPolicy()),
    ("belady", lambda pages, universe: BeladyPolicy(pages)),
    (
        "counter-random",
        lambda pages, universe: CounterRandomPolicy(seed=11),
    ),
    (
        "score-update",
        lambda pages, universe: ScoreBasedPolicy(
            threshold=0.1, update_score_on_hit=True
        ),
    ),
    (
        "gmm-caching",
        lambda pages, universe: GmmCachePolicy(
            threshold=0.2, eviction=False
        ),
    ),
    (
        "gmm-eviction",
        lambda pages, universe: GmmCachePolicy(admission=False),
    ),
    (
        "combined",
        lambda pages, universe: CombinedIcgmmPolicy(
            threshold=0.1,
            page_scores={
                page: (page % 31) / 31.0
                for page in range(0, universe, 3)
            },
        ),
    ),
]

N = 24_000


def _geometry(n_sets: int, ways: int) -> CacheGeometry:
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


def _hot_traces(n_sets: int):
    """The hot-set-skewed page streams run batching targets."""
    rng = np.random.default_rng(99)
    traces = {}
    traces["single-page"] = np.zeros(N, dtype=np.int64)
    # One scorching set, a handful of distinct pages (pure conflict,
    # repeat density above the run-batching gate).
    traces["single-set"] = (
        rng.integers(0, 4, N) * n_sets
    ).astype(np.int64)
    # Two sets, short repeat bursts ping-ponging between them.
    burst = np.repeat(rng.integers(0, 4, N // 4 + 1), 4)[:N]
    traces["2set-pingpong"] = (
        burst % 2 + (burst // 2) * n_sets
    ).astype(np.int64)
    # memtier-style: hot fraction 0.99 over a handful of keys.
    hot = rng.integers(0, 5, N)
    cold = rng.integers(0, 50_000, N)
    traces["memtier-hot99"] = np.where(
        rng.random(N) < 0.99, hot, cold
    ).astype(np.int64)
    # Geometric run lengths over a mid-size universe.
    reps = rng.geometric(0.3, N)
    vals = rng.integers(0, 3_000, N)
    traces["runs-geometric"] = np.repeat(vals, reps)[:N].astype(
        np.int64
    )
    # Sparse repeats: density below the gate, so batching must stand
    # down chunk by chunk without changing anything.
    traces["sparse-runs"] = np.where(
        rng.random(N) < 0.05,
        np.repeat(rng.integers(0, 500, N // 2 + 1), 2)[:N],
        rng.integers(0, 5_000, N),
    ).astype(np.int64)
    return traces


def _run_all_three(geometry, make, pages, is_write, scores, warmup,
                   index_offset=0):
    """Reference, unbatched fast, batched fast -- with outcomes."""
    results = []
    for runner, kwargs in (
        (simulate, {}),
        (simulate_fast, {"run_batching": False}),
        (simulate_fast, {"run_batching": True}),
    ):
        cache = SetAssociativeCache(geometry)
        policy = make(pages, int(pages.max()) + 1)
        outcome = np.empty(pages.shape[0], dtype=np.uint8)
        stats = runner(
            cache,
            policy,
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup,
            index_offset=index_offset,
            outcome=outcome,
            **kwargs,
        )
        results.append((stats, cache, outcome))
    return results


@pytest.mark.parametrize(
    "name,make", POLICY_FACTORIES, ids=[n for n, _ in POLICY_FACTORIES]
)
@pytest.mark.parametrize("n_sets,ways", [(64, 8), (8, 4), (1, 4)])
def test_batched_matches_reference_on_hot_traces(
    name, make, n_sets, ways
):
    geometry = _geometry(n_sets, ways)
    rng = np.random.default_rng(7)
    for trace_name, pages in _hot_traces(n_sets).items():
        is_write = rng.random(N) < 0.3
        scores = rng.standard_normal(N)
        (ref, ref_cache, ref_out), unbatched, (
            bat,
            bat_cache,
            bat_out,
        ) = _run_all_three(
            geometry, make, pages, is_write, scores, warmup=0.2
        )
        context = f"{name}/{trace_name}/{n_sets}x{ways}"
        assert ref == bat, f"{context}: counters diverge"
        assert ref == unbatched[0], f"{context}: unbatched diverges"
        np.testing.assert_array_equal(
            ref_cache.tags, bat_cache.tags, err_msg=context
        )
        np.testing.assert_array_equal(
            ref_cache.dirty, bat_cache.dirty, err_msg=context
        )
        np.testing.assert_array_equal(
            ref_cache.meta, bat_cache.meta, err_msg=context
        )
        np.testing.assert_array_equal(
            ref_cache.stamp, bat_cache.stamp, err_msg=context
        )
        np.testing.assert_array_equal(
            ref_out, bat_out, err_msg=context
        )


@pytest.mark.parametrize(
    "name,make",
    [p for p in POLICY_FACTORIES if p[0] != "belady"],
    ids=[n for n, _ in POLICY_FACTORIES if n != "belady"],
)
def test_batched_resumable_replay_matches(name, make):
    """Chunked replay with index_offset stays exact under batching
    (runs crossing chunk boundaries split without losing parity)."""
    geometry = _geometry(16, 4)
    pages = _hot_traces(16)["memtier-hot99"]
    rng = np.random.default_rng(3)
    is_write = rng.random(N) < 0.3
    scores = rng.standard_normal(N)

    one_cache = SetAssociativeCache(geometry)
    one_policy = make(pages, int(pages.max()) + 1)
    one = simulate_fast(
        one_cache, one_policy, pages, is_write, scores=scores,
        run_batching=True,
    )

    chunk_cache = SetAssociativeCache(geometry)
    chunk_policy = make(pages, int(pages.max()) + 1)
    total = None
    step = 1_711  # odd step so runs straddle chunk boundaries
    for start in range(0, N, step):
        stop = min(start + step, N)
        stats = simulate_fast(
            chunk_cache,
            chunk_policy,
            pages[start:stop],
            is_write[start:stop],
            scores=scores[start:stop],
            index_offset=start,
            run_batching=True,
        )
        total = stats if total is None else total.merge(stats)
    assert total == one, name
    np.testing.assert_array_equal(one_cache.tags, chunk_cache.tags)
    np.testing.assert_array_equal(one_cache.stamp, chunk_cache.stamp)


def test_decaying_lfu_declines_hit_runs():
    """Float decay has no exact closed form, so its kernel opts out
    of run collapse (and stays exact through the plain path)."""
    geometry = _geometry(8, 4)
    cache = SetAssociativeCache(geometry)
    assert kernel_for(LfuPolicy(decay=0.9), cache).supports_hit_runs is False
    assert kernel_for(LfuPolicy(), cache).supports_hit_runs is True


def test_bypass_runs_replay_admission_exactly():
    """A hammered page scoring around the admission cut exercises the
    bypassed-run scan: refusals, the first admitted fill, then hits."""
    geometry = _geometry(4, 2)
    n = 6_000
    rng = np.random.default_rng(21)
    # Far more hammered pages than the 8-block cache holds, so runs
    # regularly open with a miss whose admission depends on the score.
    pages = np.repeat(rng.integers(0, 40, n // 8 + 1), 8)[:n].astype(
        np.int64
    )
    is_write = rng.random(n) < 0.5
    # Scores oscillate around the threshold so runs flip between
    # bypassed and admitted mid-run.
    scores = rng.standard_normal(n) * 0.2

    def make(pages_, universe):
        return GmmCachePolicy(threshold=0.1, eviction=True)

    (ref, ref_cache, ref_out), _, (bat, bat_cache, bat_out) = (
        _run_all_three(
            geometry, make, pages, is_write, scores, warmup=0.1
        )
    )
    assert ref.bypasses > 0  # the scenario actually triggers
    assert ref == bat
    np.testing.assert_array_equal(ref_out, bat_out)
    np.testing.assert_array_equal(ref_cache.meta, bat_cache.meta)

"""Tests for per-access outcome recording and resumable simulation.

Two properties underpin the serving loop's accounting:

* **Outcome completeness** -- every access receives exactly one
  ``OUTCOME_*`` code, and :func:`stats_from_outcomes` over any
  measured mask reproduces the simulator's own counters (so one
  simulation pass can be sliced per tenant / per phase exactly).
* **Resumability** -- replaying a stream in chunks with
  ``index_offset`` against the same cache produces bit-identical
  outcomes, counters and final state to a single-shot run.
"""

import numpy as np
import pytest

from repro.cache.policies import (
    ClockPolicy,
    CounterRandomPolicy,
    GmmCachePolicy,
    LruPolicy,
    RandomPolicy,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.cache.stats import (
    OUTCOME_BYPASS,
    OUTCOME_DIRTY_EVICT,
    OUTCOME_EVICT,
    OUTCOME_FILL,
    OUTCOME_HIT,
    CacheStats,
    stats_from_outcomes,
)

POLICIES = [
    ("lru", lambda: LruPolicy()),
    ("gmm", lambda: GmmCachePolicy(threshold=0.2)),
    ("clock", lambda: ClockPolicy()),
    ("counter-random", lambda: CounterRandomPolicy(seed=1)),
    # Scalar-fallback path (no kernel) must record outcomes too.
    ("random", lambda: RandomPolicy(np.random.default_rng(7))),
]


def _geometry(n_sets=32, ways=4):
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


def _trace(n=15000, universe=600, seed=5):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, universe, n),
        rng.random(n) < 0.3,
        rng.standard_normal(n),
    )


class TestOutcomeReconstruction:
    @pytest.mark.parametrize(
        "name,make", POLICIES, ids=[n for n, _ in POLICIES]
    )
    def test_outcomes_reproduce_counters(self, name, make):
        pages, writes, scores = _trace()
        warmup = 0.3
        cache = SetAssociativeCache(_geometry())
        outcome = np.empty(pages.shape[0], dtype=np.uint8)
        stats = simulate_fast(
            cache, make(), pages, writes, scores=scores,
            warmup_fraction=warmup, outcome=outcome,
        )
        measured = np.arange(pages.shape[0]) >= int(
            pages.shape[0] * warmup
        )
        assert stats_from_outcomes(outcome, writes, measured) == stats

    @pytest.mark.parametrize(
        "name,make", POLICIES, ids=[n for n, _ in POLICIES]
    )
    def test_reference_and_fast_record_identically(self, name, make):
        pages, writes, scores = _trace(n=8000)
        ref_out = np.empty(pages.shape[0], dtype=np.uint8)
        fast_out = np.empty(pages.shape[0], dtype=np.uint8)
        simulate(
            SetAssociativeCache(_geometry()), make(), pages, writes,
            scores=scores, outcome=ref_out,
        )
        simulate_fast(
            SetAssociativeCache(_geometry()), make(), pages, writes,
            scores=scores, outcome=fast_out, chunk_size=1111,
            min_round_width=2,
        )
        np.testing.assert_array_equal(ref_out, fast_out)

    def test_partition_sums_to_whole(self):
        """Any partition of the stream sums back to the totals."""
        pages, writes, scores = _trace()
        outcome = np.empty(pages.shape[0], dtype=np.uint8)
        stats = simulate_fast(
            SetAssociativeCache(_geometry()),
            GmmCachePolicy(threshold=0.2),
            pages, writes, scores=scores, outcome=outcome,
        )
        groups = pages % 3
        merged = CacheStats()
        for g in range(3):
            merged = merged.merge(
                stats_from_outcomes(
                    outcome[groups == g], writes[groups == g]
                )
            )
        assert merged == stats

    def test_outcome_codes_are_disjoint_and_complete(self):
        pages, writes, scores = _trace(n=6000, universe=5000)
        outcome = np.full(pages.shape[0], 255, dtype=np.uint8)
        simulate_fast(
            SetAssociativeCache(_geometry(n_sets=8)),
            GmmCachePolicy(threshold=0.5),
            pages, writes, scores=scores, outcome=outcome,
        )
        valid = {
            OUTCOME_FILL, OUTCOME_HIT, OUTCOME_BYPASS,
            OUTCOME_EVICT, OUTCOME_DIRTY_EVICT,
        }
        assert set(np.unique(outcome).tolist()) <= valid
        assert 255 not in outcome  # every access was coded

    def test_validation(self):
        pages, writes, _ = _trace(n=100)
        cache = SetAssociativeCache(_geometry())
        with pytest.raises(ValueError, match="uint8"):
            simulate_fast(
                cache, LruPolicy(), pages, writes,
                outcome=np.empty(100, dtype=np.int64),
            )
        with pytest.raises(ValueError, match="same shape"):
            simulate_fast(
                cache, LruPolicy(), pages, writes,
                outcome=np.empty(99, dtype=np.uint8),
            )
        with pytest.raises(ValueError, match="index_offset"):
            simulate_fast(
                cache, LruPolicy(), pages, writes, index_offset=-1
            )
        with pytest.raises(ValueError, match="same shape"):
            stats_from_outcomes(
                np.zeros(3, dtype=np.uint8), np.zeros(2, dtype=bool)
            )


class TestResumableChunks:
    @pytest.mark.parametrize(
        "name,make", POLICIES, ids=[n for n, _ in POLICIES]
    )
    def test_chunked_replay_is_exact(self, name, make):
        pages, writes, scores = _trace()
        single_cache = SetAssociativeCache(_geometry())
        single_out = np.empty(pages.shape[0], dtype=np.uint8)
        single = simulate_fast(
            single_cache, make(), pages, writes, scores=scores,
            outcome=single_out,
        )
        chunk_cache = SetAssociativeCache(_geometry())
        chunk_out = np.empty(pages.shape[0], dtype=np.uint8)
        policy = make()
        merged = CacheStats()
        for start in range(0, pages.shape[0], 3001):
            stop = min(start + 3001, pages.shape[0])
            merged = merged.merge(
                simulate_fast(
                    chunk_cache, policy,
                    pages[start:stop], writes[start:stop],
                    scores=scores[start:stop],
                    index_offset=start,
                    outcome=chunk_out[start:stop],
                )
            )
        assert merged == single
        np.testing.assert_array_equal(single_out, chunk_out)
        np.testing.assert_array_equal(
            single_cache.tags, chunk_cache.tags
        )
        np.testing.assert_array_equal(
            single_cache.dirty, chunk_cache.dirty
        )
        np.testing.assert_array_equal(
            single_cache.meta, chunk_cache.meta
        )
        np.testing.assert_array_equal(
            single_cache.stamp, chunk_cache.stamp
        )

    def test_offset_preserves_recency_order_across_chunks(self):
        """Without index_offset, stamps restart per chunk and LRU
        order breaks; with it, chunked equals single-shot."""
        pages = np.array([0, 32, 64, 0, 32, 64, 96] * 40)
        writes = np.zeros(pages.shape[0], dtype=bool)
        geometry = _geometry(n_sets=32, ways=2)
        single_cache = SetAssociativeCache(geometry)
        single = simulate_fast(
            single_cache, LruPolicy(), pages, writes
        )
        good_cache = SetAssociativeCache(geometry)
        policy = LruPolicy()
        merged = CacheStats()
        for start in range(0, pages.shape[0], 7):
            stop = min(start + 7, pages.shape[0])
            merged = merged.merge(
                simulate_fast(
                    good_cache, policy, pages[start:stop],
                    writes[start:stop], index_offset=start,
                )
            )
        assert merged == single
        np.testing.assert_array_equal(
            single_cache.stamp, good_cache.stamp
        )

    def test_reference_path_offset(self):
        """simulate() honours index_offset identically."""
        pages, writes, scores = _trace(n=4000)
        fast_cache = SetAssociativeCache(_geometry())
        ref_cache = SetAssociativeCache(_geometry())
        fast_policy, ref_policy = LruPolicy(), LruPolicy()
        for start in range(0, 4000, 1333):
            stop = min(start + 1333, 4000)
            fast = simulate_fast(
                fast_cache, fast_policy, pages[start:stop],
                writes[start:stop], scores=scores[start:stop],
                index_offset=start,
            )
            ref = simulate(
                ref_cache, ref_policy, pages[start:stop],
                writes[start:stop], scores=scores[start:stop],
                index_offset=start,
            )
            assert fast == ref
        np.testing.assert_array_equal(
            fast_cache.stamp, ref_cache.stamp
        )

"""Tests for the counter-based random policy and its vector kernel.

The fast-path gap the ROADMAP tracked for ``RandomPolicy`` is closed
by :class:`CounterRandomPolicy`: victims are pure SplitMix64 hashes
of the access index, so the vector kernel and the scalar reference
agree under any processing order.  These tests pin the hash itself
(scalar vs vectorized), its statistical behaviour, and the kernel's
bit-exactness (the policy also rides the shared parity suite in
``test_simulate_fast_parity.py``).
"""

import collections

import numpy as np

from repro.cache.policies import CounterRandomPolicy, RandomPolicy
from repro.cache.policies.kernels import (
    CounterRandomKernel,
    kernel_for,
)
from repro.cache.policies.random_ import splitmix64, splitmix64_array
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast


def _geometry(n_sets=16, ways=4):
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


class TestSplitMix64:
    def test_vector_matches_scalar_reference(self):
        values = np.concatenate(
            [
                np.arange(0, 2000, dtype=np.uint64),
                np.array(
                    [2**63, 2**64 - 1, 2**64 - 2, 123456789012345],
                    dtype=np.uint64,
                ),
            ]
        )
        expected = np.array(
            [splitmix64(int(v)) for v in values], dtype=np.uint64
        )
        np.testing.assert_array_equal(
            splitmix64_array(values), expected
        )

    def test_wraps_like_masked_python(self):
        # The additive constant must wrap identically on both sides.
        top = (1 << 64) - 1
        assert splitmix64(top) == int(
            splitmix64_array(np.array([top], dtype=np.uint64))[0]
        )

    def test_avalanche(self):
        # Flipping one input bit flips ~half the output bits.
        a = splitmix64(0x1234)
        flips = [
            bin(a ^ splitmix64(0x1234 ^ (1 << b))).count("1")
            for b in range(64)
        ]
        assert min(flips) > 16

    def test_seeds_decorrelate(self):
        draws_a = [
            CounterRandomPolicy(0).victim_for(i, 8) for i in range(512)
        ]
        draws_b = [
            CounterRandomPolicy(1).victim_for(i, 8) for i in range(512)
        ]
        agree = sum(a == b for a, b in zip(draws_a, draws_b))
        assert agree < 512 * 0.25  # ~1/8 expected for independence


class TestCounterRandomPolicy:
    def test_draws_roughly_uniform(self):
        policy = CounterRandomPolicy(seed=3)
        counts = collections.Counter(
            policy.victim_for(i, 8) for i in range(8000)
        )
        assert set(counts) == set(range(8))
        assert all(800 <= c <= 1200 for c in counts.values())

    def test_pure_function_of_index(self):
        policy = CounterRandomPolicy(seed=5)
        cache = SetAssociativeCache(_geometry())
        first = policy.select_victim(cache, 0, 777)
        # Unrelated draws in between change nothing (no hidden state).
        for i in range(100):
            policy.select_victim(cache, 1, i)
        assert policy.select_victim(cache, 0, 777) == first

    def test_deterministic_across_instances(self):
        a = CounterRandomPolicy(seed=9)
        b = CounterRandomPolicy(seed=9)
        assert [a.victim_for(i, 4) for i in range(64)] == [
            b.victim_for(i, 4) for i in range(64)
        ]


class TestCounterRandomKernel:
    def test_registered(self):
        cache = SetAssociativeCache(_geometry())
        kernel = kernel_for(CounterRandomPolicy(), cache)
        assert isinstance(kernel, CounterRandomKernel)

    def test_sequential_random_still_scalar(self):
        cache = SetAssociativeCache(_geometry())
        assert kernel_for(RandomPolicy(), cache) is None

    def test_parity_with_scalar_reference(self):
        rng = np.random.default_rng(17)
        pages = rng.integers(0, 300, 12000)
        writes = rng.random(12000) < 0.3
        for warmup in (0.0, 0.3):
            ref_cache = SetAssociativeCache(_geometry())
            fast_cache = SetAssociativeCache(_geometry())
            ref = simulate(
                ref_cache, CounterRandomPolicy(seed=2), pages, writes,
                warmup_fraction=warmup,
            )
            fast = simulate_fast(
                fast_cache, CounterRandomPolicy(seed=2), pages, writes,
                warmup_fraction=warmup, chunk_size=997,
                min_round_width=1,
            )
            assert ref == fast
            np.testing.assert_array_equal(
                ref_cache.tags, fast_cache.tags
            )
            np.testing.assert_array_equal(
                ref_cache.stamp, fast_cache.stamp
            )

    def test_resumable_chunks_match_single_shot(self):
        rng = np.random.default_rng(23)
        pages = rng.integers(0, 200, 9000)
        writes = rng.random(9000) < 0.2
        single = SetAssociativeCache(_geometry())
        stats = simulate_fast(
            single, CounterRandomPolicy(seed=4), pages, writes
        )
        chunked = SetAssociativeCache(_geometry())
        policy = CounterRandomPolicy(seed=4)
        merged = None
        for start in range(0, 9000, 2111):
            stop = min(start + 2111, 9000)
            part = simulate_fast(
                chunked, policy, pages[start:stop], writes[start:stop],
                index_offset=start,
            )
            merged = part if merged is None else merged.merge(part)
        assert merged == stats
        np.testing.assert_array_equal(single.tags, chunked.tags)
        np.testing.assert_array_equal(single.stamp, chunked.stamp)

"""Tests for the replacement-policy zoo."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    LstmCachePolicy,
    RandomPolicy,
    ScoreBasedPolicy,
    compute_next_use,
    make_policy,
)
from repro.cache.policies.belady import NEVER
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)


def _cache(ways=4, sets=1):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


def _simulate(pages, policy, ways=4, sets=1, scores=None):
    pages = np.asarray(pages)
    cache = _cache(ways=ways, sets=sets)
    stats = simulate(
        cache,
        policy,
        pages,
        np.zeros(len(pages), dtype=bool),
        scores=scores,
    )
    return cache, stats


class TestRegistry:
    def test_make_policy_known(self):
        assert isinstance(make_policy("lru"), LruPolicy)
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("clock"), ClockPolicy)

    def test_make_policy_kwargs(self):
        policy = make_policy("lfu", decay=0.9)
        assert policy.decay == 0.9

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("oracle")


class TestLru:
    def test_evicts_least_recent(self):
        # 1-set, 2-way: [0, 1], touch 0, insert 2 -> evict 1.
        cache, _ = _simulate([0, 1, 0, 2], LruPolicy(), ways=2)
        assert cache.resident_pages() == {0, 2}

    def test_cyclic_pattern_thrashes(self):
        # Loop of 5 pages through a 4-way set: LRU gets zero hits.
        pages = list(range(5)) * 10
        _, stats = _simulate(pages, LruPolicy(), ways=4)
        assert stats.hits == 0


class TestFifo:
    def test_hit_does_not_refresh(self):
        # [0, 1], touch 0, insert 2: FIFO still evicts 0 (oldest fill).
        cache, _ = _simulate([0, 1, 0, 2], FifoPolicy(), ways=2)
        assert cache.resident_pages() == {1, 2}


class TestRandom:
    def test_deterministic_with_seed(self):
        pages = list(np.random.default_rng(0).integers(0, 20, 200))
        a_cache, a = _simulate(
            pages, RandomPolicy(np.random.default_rng(5)), ways=2
        )
        b_cache, b = _simulate(
            pages, RandomPolicy(np.random.default_rng(5)), ways=2
        )
        assert a.hits == b.hits
        assert a_cache.resident_pages() == b_cache.resident_pages()

    def test_survives_cyclic_pattern(self):
        # Unlike LRU, random eviction keeps some pages across a loop
        # slightly larger than the set.
        pages = list(range(5)) * 40
        _, stats = _simulate(
            pages, RandomPolicy(np.random.default_rng(1)), ways=4
        )
        assert stats.hits > 0


class TestLfu:
    def test_keeps_frequent_block(self):
        # Page 0 hit many times; 1 and 2 compete for the other way.
        pages = [0, 1] + [0] * 8 + [2, 0, 1]
        cache, _ = _simulate(pages, LfuPolicy(), ways=2)
        assert 0 in cache.resident_pages()

    def test_decay_validation(self):
        with pytest.raises(ValueError, match="decay"):
            LfuPolicy(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            LfuPolicy(decay=1.5)

    def test_decay_ages_counters(self):
        # With strong decay, a formerly-hot-but-dead block is evicted
        # in favour of recent traffic.
        pages = [0] * 20 + [1, 2, 3, 1, 2, 3, 1, 2, 3]
        cache, _ = _simulate(pages, LfuPolicy(decay=0.5), ways=2)
        assert 0 not in cache.resident_pages() or len(
            cache.resident_pages()
        ) == 2


class TestClock:
    def test_second_chance(self):
        # 2-way set: fill 0,1 (both referenced). Insert 2: hand clears
        # 0's bit then 1's, wraps, evicts 0.
        cache, _ = _simulate([0, 1, 2], ClockPolicy(), ways=2)
        assert cache.resident_pages() == {1, 2}

    def test_referenced_block_survives(self):
        # [0, 1, 2]: inserting 2 clears both bits, evicts 0 and leaves
        # the hand at way 1 with page 2 freshly referenced (bit set)
        # and page 1 cleared.  Inserting 3 must then give page 2 its
        # second chance and evict page 1.
        cache, _ = _simulate([0, 1, 2, 3], ClockPolicy(), ways=2)
        assert cache.resident_pages() == {2, 3}

    def test_approximates_lru_on_random_traffic(self, rng):
        pages = list(rng.integers(0, 30, size=2000))
        _, clock_stats = _simulate(pages, ClockPolicy(), ways=4, sets=2)
        _, lru_stats = _simulate(pages, LruPolicy(), ways=4, sets=2)
        assert clock_stats.hit_rate == pytest.approx(
            lru_stats.hit_rate, abs=0.1
        )


class TestComputeNextUse:
    def test_simple(self):
        next_use = compute_next_use(np.array([7, 8, 7]))
        assert next_use[0] == 2.0
        assert next_use[1] == NEVER
        assert next_use[2] == NEVER

    def test_empty(self):
        assert compute_next_use(np.array([], dtype=int)).shape == (0,)


class TestBelady:
    def test_evicts_farthest_future(self):
        # 2-way set. Pages 0,1 cached; 2 arrives. Page 0 used next at
        # t=3, page 1 never again -> evict 1.
        pages = np.array([0, 1, 2, 0, 2, 0])
        policy = BeladyPolicy(pages)
        cache, stats = _simulate(list(pages), policy, ways=2)
        # After trace: accesses 3..5 all hit.
        assert stats.hits == 3

    def test_never_worse_than_lru(self, rng):
        # The oracle must dominate LRU on any trace.
        for seed in range(5):
            pages = list(
                np.random.default_rng(seed).integers(0, 40, size=1500)
            )
            _, lru_stats = _simulate(pages, LruPolicy(), ways=4, sets=2)
            _, opt_stats = _simulate(
                pages, BeladyPolicy(np.array(pages)), ways=4, sets=2
            )
            assert opt_stats.hits >= lru_stats.hits


class TestScoreBasedPolicy:
    def test_rejects_no_mechanism(self):
        with pytest.raises(ValueError, match="at least one"):
            ScoreBasedPolicy(admission=False, eviction=False)

    def test_names(self):
        assert GmmCachePolicy().name == "gmm"
        assert LstmCachePolicy().name == "lstm"
        assert isinstance(GmmCachePolicy(), ScoreBasedPolicy)

    def test_update_score_on_hit(self):
        cache = _cache(ways=2)
        policy = GmmCachePolicy(threshold=0.0, update_score_on_hit=True)
        simulate(
            cache,
            policy,
            np.array([0, 0]),
            np.array([False, False]),
            scores=np.array([0.2, 0.9]),
        )
        _, way = cache.lookup(0)
        assert cache.meta[0][way] == 0.9

    def test_no_update_score_on_hit_by_default(self):
        cache = _cache(ways=2)
        policy = GmmCachePolicy(threshold=0.0)
        simulate(
            cache,
            policy,
            np.array([0, 0]),
            np.array([False, False]),
            scores=np.array([0.2, 0.9]),
        )
        _, way = cache.lookup(0)
        assert cache.meta[0][way] == 0.2

    def test_admission_protects_against_scan(self):
        # Hot page 0 + one-touch scan pages with low scores: with
        # admission the hot page stays resident through the scan.
        scan = list(range(1, 9))
        pages = [0] + scan + [0]
        scores = np.array([1.0] + [0.0] * len(scan) + [1.0])
        policy = GmmCachePolicy(threshold=0.5)
        _, stats = _simulate(
            pages, policy, ways=2, sets=1, scores=scores
        )
        assert stats.hits == 1  # final access to page 0
        assert stats.bypasses == len(scan)

    def test_lru_caches_scan_and_loses_hot_page(self):
        scan = list(range(1, 9))
        pages = [0] + scan + [0]
        _, stats = _simulate(pages, LruPolicy(), ways=2, sets=1)
        assert stats.hits == 0  # page 0 evicted by the scan


class TestPolicyInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_all_policies_produce_valid_victims(self, seed):
        rng = np.random.default_rng(seed)
        pages = list(rng.integers(0, 50, size=400))
        policies = [
            LruPolicy(),
            FifoPolicy(),
            RandomPolicy(np.random.default_rng(seed)),
            LfuPolicy(),
            ClockPolicy(),
            BeladyPolicy(np.array(pages)),
            GmmCachePolicy(threshold=0.0),
        ]
        for policy in policies:
            cache = _cache(ways=4, sets=2)
            scores = rng.random(len(pages))
            stats = simulate(
                cache,
                policy,
                np.array(pages),
                np.zeros(len(pages), dtype=bool),
                scores=scores,
            )
            assert stats.accesses == len(pages)
            assert cache.occupancy() <= 8

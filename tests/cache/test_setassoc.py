"""Tests for cache geometry and tag-store mechanics."""

import numpy as np
import pytest

from repro.cache.setassoc import (
    INVALID,
    CacheGeometry,
    SetAssociativeCache,
)


class TestCacheGeometry:
    def test_paper_defaults(self):
        geometry = CacheGeometry()
        assert geometry.capacity_bytes == 64 * 1024 * 1024
        assert geometry.block_bytes == 4096
        assert geometry.associativity == 8
        assert geometry.n_blocks == 16_384
        assert geometry.n_sets == 2_048

    def test_rejects_non_multiple_capacity(self):
        with pytest.raises(ValueError, match="multiple of block_bytes"):
            CacheGeometry(capacity_bytes=1000, block_bytes=4096)

    def test_rejects_bad_associativity(self):
        with pytest.raises(ValueError, match="associativity"):
            CacheGeometry(associativity=0)

    def test_rejects_blocks_not_divisible_by_ways(self):
        with pytest.raises(ValueError, match="multiple of associativity"):
            CacheGeometry(
                capacity_bytes=3 * 4096, block_bytes=4096, associativity=2
            )

    def test_small_geometry(self):
        geometry = CacheGeometry(
            capacity_bytes=16 * 4096, block_bytes=4096, associativity=4
        )
        assert geometry.n_sets == 4


def _small_cache(ways=2, sets=4):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


class TestSetAssociativeCache:
    def test_starts_empty(self):
        cache = _small_cache()
        assert cache.occupancy() == 0
        assert cache.resident_pages() == set()

    def test_set_index_is_page_modulo_sets(self):
        cache = _small_cache(sets=4)
        assert cache.set_index(0) == 0
        assert cache.set_index(5) == 1
        assert cache.set_index(7) == 3

    def test_lookup_miss(self):
        cache = _small_cache()
        set_index, way = cache.lookup(10)
        assert way is None
        assert set_index == 10 % 4

    def test_fill_then_hit(self):
        cache = _small_cache()
        cache.fill(2, 0, page=6, dirty=False, meta=0.5, stamp=1.0)
        set_index, way = cache.lookup(6)
        assert (set_index, way) == (2, 0)
        assert cache.meta[2][0] == 0.5
        assert cache.stamp[2][0] == 1.0

    def test_find_invalid_way(self):
        cache = _small_cache(ways=2)
        assert cache.find_invalid_way(0) == 0
        cache.fill(0, 0, page=0, dirty=False, meta=0.0, stamp=0.0)
        assert cache.find_invalid_way(0) == 1
        cache.fill(0, 1, page=4, dirty=False, meta=0.0, stamp=0.0)
        assert cache.find_invalid_way(0) is None

    def test_occupancy_counts_valid_blocks(self):
        cache = _small_cache()
        cache.fill(0, 0, page=0, dirty=False, meta=0.0, stamp=0.0)
        cache.fill(1, 1, page=5, dirty=True, meta=0.0, stamp=0.0)
        assert cache.occupancy() == 2
        assert cache.resident_pages() == {0, 5}

    def test_invalid_constant(self):
        assert INVALID == -1

    def test_repr_mentions_occupancy(self):
        cache = _small_cache()
        assert "occupancy=0" in repr(cache)

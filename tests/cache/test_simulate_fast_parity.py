"""Differential tests: the fast simulator against the reference loop.

The contract of :func:`repro.cache.simulate_fast.simulate_fast` is
*bit-identical* output to :func:`repro.cache.setassoc.simulate` --
counters, final cache state, and mirrored policy state -- for every
policy, on every trace.  These tests enforce it with randomized
traces across cache geometries, warm-up settings, score streams, and
chunking parameters (including degenerate chunk sizes that force the
same-set round machinery and the scalar tail through every branch).
"""

import zlib

import numpy as np
import pytest

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    ScoreBasedPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.policies.kernels import kernel_for
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.core.policy import CombinedIcgmmPolicy

#: (name, factory(pages, universe)) for every policy in the zoo.
POLICY_FACTORIES = [
    ("lru", lambda pages, universe: LruPolicy()),
    ("fifo", lambda pages, universe: FifoPolicy()),
    ("lfu", lambda pages, universe: LfuPolicy()),
    ("lfu-decay", lambda pages, universe: LfuPolicy(decay=0.9)),
    ("clock", lambda pages, universe: ClockPolicy()),
    ("slru", lambda pages, universe: SlruPolicy()),
    ("2q", lambda pages, universe: TwoQPolicy()),
    ("belady", lambda pages, universe: BeladyPolicy(pages)),
    (
        "random",
        lambda pages, universe: RandomPolicy(np.random.default_rng(7)),
    ),
    (
        "counter-random",
        lambda pages, universe: CounterRandomPolicy(seed=11),
    ),
    ("score", lambda pages, universe: ScoreBasedPolicy(threshold=0.1)),
    (
        "gmm-caching",
        lambda pages, universe: GmmCachePolicy(
            threshold=0.2, eviction=False
        ),
    ),
    (
        "gmm-eviction",
        lambda pages, universe: GmmCachePolicy(admission=False),
    ),
    (
        "combined",
        lambda pages, universe: CombinedIcgmmPolicy(
            threshold=0.1,
            page_scores={
                page: (page % 31) / 31.0
                for page in range(0, universe, 3)
            },
        ),
    ),
]

GEOMETRIES = [
    (2, 2),  # tiny: every chunk is one scorching conflict
    (8, 4),
    (64, 8),  # the scaled simulation default shape
    (1, 4),  # single set
    (16, 1),  # direct-mapped
]


def _geometry(n_sets: int, ways: int) -> CacheGeometry:
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


def _trace(seed: int, n: int, universe: int):
    rng = np.random.default_rng(seed)
    pages = rng.integers(0, universe, n)
    is_write = rng.random(n) < 0.3
    scores = rng.standard_normal(n)
    return pages, is_write, scores


def _assert_identical(name, geometry, make, pages, is_write, scores,
                      warmup, **fast_kwargs):
    ref_cache = SetAssociativeCache(geometry)
    fast_cache = SetAssociativeCache(geometry)
    ref_policy = make(pages, int(pages.max()) + 1 if len(pages) else 1)
    fast_policy = make(pages, int(pages.max()) + 1 if len(pages) else 1)
    ref_stats = simulate(
        ref_cache, ref_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup,
    )
    fast_stats = simulate_fast(
        fast_cache, fast_policy, pages, is_write,
        scores=scores, warmup_fraction=warmup, **fast_kwargs,
    )
    assert ref_stats == fast_stats, f"{name}: counters diverge"
    np.testing.assert_array_equal(
        ref_cache.tags, fast_cache.tags, err_msg=f"{name}: tags"
    )
    np.testing.assert_array_equal(
        ref_cache.dirty, fast_cache.dirty, err_msg=f"{name}: dirty"
    )
    np.testing.assert_array_equal(
        ref_cache.meta, fast_cache.meta, err_msg=f"{name}: meta"
    )
    np.testing.assert_array_equal(
        ref_cache.stamp, fast_cache.stamp, err_msg=f"{name}: stamp"
    )
    if isinstance(ref_policy, ClockPolicy):
        assert ref_policy._hands == fast_policy._hands


class TestPolicyParity:
    @pytest.mark.parametrize(
        "name,make", POLICY_FACTORIES, ids=[n for n, _ in POLICY_FACTORIES]
    )
    @pytest.mark.parametrize("n_sets,ways", GEOMETRIES)
    def test_randomized_trace(self, name, make, n_sets, ways):
        # Stable digest (hash() is salted per process, which would
        # make a failing trace unreproducible).
        seed = zlib.crc32(f"{name}/{n_sets}/{ways}".encode())
        pages, is_write, scores = _trace(
            seed=seed,
            n=4000,
            universe=max(8, n_sets * ways * 3),
        )
        for warmup in (0.0, 0.37):
            _assert_identical(
                name, _geometry(n_sets, ways), make,
                pages, is_write, scores, warmup,
            )

    @pytest.mark.parametrize(
        "name,make", POLICY_FACTORIES, ids=[n for n, _ in POLICY_FACTORIES]
    )
    def test_degenerate_chunking(self, name, make):
        """Tiny chunks + unit round width force every engine branch."""
        pages, is_write, scores = _trace(seed=99, n=1500, universe=600)
        _assert_identical(
            name, _geometry(32, 4), make,
            pages, is_write, scores, 0.25,
            chunk_size=17, min_round_width=1,
        )

    @pytest.mark.parametrize(
        "name,make", POLICY_FACTORIES, ids=[n for n, _ in POLICY_FACTORIES]
    )
    def test_without_scores(self, name, make):
        """Scores omitted entirely (defaulted to zeros) on both paths."""
        pages, is_write, _ = _trace(seed=5, n=2500, universe=400)
        geometry = _geometry(16, 4)
        ref_cache = SetAssociativeCache(geometry)
        fast_cache = SetAssociativeCache(geometry)
        ref_stats = simulate(
            ref_cache, make(pages, 400), pages, is_write
        )
        fast_stats = simulate_fast(
            fast_cache, make(pages, 400), pages, is_write
        )
        assert ref_stats == fast_stats
        np.testing.assert_array_equal(ref_cache.tags, fast_cache.tags)


class TestEdgeCases:
    def test_empty_trace(self):
        geometry = _geometry(4, 2)
        stats = simulate_fast(
            SetAssociativeCache(geometry),
            LruPolicy(),
            np.array([], dtype=np.int64),
            np.array([], dtype=bool),
        )
        assert stats.accesses == 0

    def test_single_access(self):
        geometry = _geometry(4, 2)
        cache = SetAssociativeCache(geometry)
        stats = simulate_fast(
            cache, LruPolicy(), np.array([3]), np.array([True])
        )
        assert stats.misses == 1
        assert cache.occupancy() == 1

    def test_validation_matches_reference(self):
        geometry = _geometry(4, 2)
        with pytest.raises(ValueError, match="same shape"):
            simulate_fast(
                SetAssociativeCache(geometry),
                LruPolicy(),
                np.array([1, 2]),
                np.array([False]),
            )
        with pytest.raises(ValueError, match="scores"):
            simulate_fast(
                SetAssociativeCache(geometry),
                LruPolicy(),
                np.array([1, 2]),
                np.array([False, False]),
                scores=np.array([0.5]),
            )
        with pytest.raises(ValueError, match="warmup_fraction"):
            simulate_fast(
                SetAssociativeCache(geometry),
                LruPolicy(),
                np.array([1]),
                np.array([False]),
                warmup_fraction=1.0,
            )
        with pytest.raises(ValueError, match="chunk_size"):
            simulate_fast(
                SetAssociativeCache(geometry),
                LruPolicy(),
                np.array([1]),
                np.array([False]),
                chunk_size=0,
            )

    def test_mixed_measured_chunk(self):
        """Warm-up boundary falling inside a chunk counts exactly."""
        pages, is_write, scores = _trace(seed=11, n=3000, universe=300)
        _assert_identical(
            "lru", _geometry(8, 4), lambda p, u: LruPolicy(),
            pages, is_write, scores, 0.5,
            chunk_size=4096,  # single chunk straddles the boundary
        )


class TestKernelRegistry:
    def test_known_policies_have_kernels(self):
        cache = SetAssociativeCache(_geometry(4, 2))
        for policy in (
            LruPolicy(), FifoPolicy(), LfuPolicy(), ClockPolicy(),
            SlruPolicy(), TwoQPolicy(), CounterRandomPolicy(),
            ScoreBasedPolicy(threshold=0.0),
            GmmCachePolicy(threshold=0.0),
            CombinedIcgmmPolicy(threshold=0.0, page_scores={}),
            BeladyPolicy(np.array([1, 2, 3])),
        ):
            assert kernel_for(policy, cache) is not None, policy

    def test_random_policy_has_no_kernel(self):
        """Sequential RNG draws cannot survive reordering."""
        cache = SetAssociativeCache(_geometry(4, 2))
        assert kernel_for(RandomPolicy(), cache) is None

    def test_subclass_with_overridden_hook_falls_back(self):
        class WeirdLru(LruPolicy):
            def select_victim(self, cache, set_index, access_index):
                return 0  # not LRU at all

        cache = SetAssociativeCache(_geometry(4, 2))
        assert kernel_for(WeirdLru(), cache) is None
        # ... and simulate_fast still gets it right via fallback.
        pages, is_write, scores = _trace(seed=3, n=1200, universe=80)
        _assert_identical(
            "weird-lru", _geometry(4, 2),
            lambda p, u: WeirdLru(),
            pages, is_write, scores, 0.0,
        )

"""Differential tests: same-set run collapse vs the reference.

The set-run engine of :mod:`repro.cache.simulate_fast` collapses a
contiguous same-set span of runs into one round element -- grouped
per-way ``on_hit_runs`` composites plus exact sequential miss
resolution -- for kernels whose hit updates commute across ways
(``supports_set_runs``).  Contract: *bit identical* counters, final
cache planes, and per-access outcome codes against both the scalar
reference and the uncollapsed fast path, on the set-skewed traces the
mechanism exists for; and order-dependent kernels (SLRU, decayed LFU)
must refuse the collapse entirely while staying exact through the
plain path.
"""

import numpy as np
import pytest

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    ScoreBasedPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.policies.kernels import kernel_for
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.core.policy import CombinedIcgmmPolicy

#: Kernels whose hit updates commute across ways (the collapse set).
COMMUTATIVE_FACTORIES = [
    ("lru", lambda pages, universe: LruPolicy()),
    ("fifo", lambda pages, universe: FifoPolicy()),
    ("lfu", lambda pages, universe: LfuPolicy()),
    ("clock", lambda pages, universe: ClockPolicy()),
    ("2q", lambda pages, universe: TwoQPolicy()),
    ("belady", lambda pages, universe: BeladyPolicy(pages)),
    (
        "counter-random",
        lambda pages, universe: CounterRandomPolicy(seed=17),
    ),
    (
        "score-update",
        lambda pages, universe: ScoreBasedPolicy(
            threshold=0.1, update_score_on_hit=True
        ),
    ),
    (
        "gmm-caching",
        lambda pages, universe: GmmCachePolicy(
            threshold=0.15, eviction=False
        ),
    ),
    (
        "gmm-eviction",
        lambda pages, universe: GmmCachePolicy(admission=False),
    ),
    (
        "combined",
        lambda pages, universe: CombinedIcgmmPolicy(
            threshold=0.1,
            page_scores={
                page: (page % 29) / 29.0
                for page in range(0, universe, 2)
            },
        ),
    ),
]

#: Order-dependent kernels: must refuse set runs, stay exact anyway.
ORDER_DEPENDENT_FACTORIES = [
    ("slru", lambda pages, universe: SlruPolicy()),
    ("lfu-decay", lambda pages, universe: LfuPolicy(decay=0.9)),
]

N = 24_000


def _geometry(n_sets: int, ways: int) -> CacheGeometry:
    return CacheGeometry(
        capacity_bytes=n_sets * ways * 4096,
        block_bytes=4096,
        associativity=ways,
    )


def _set_skewed_traces(n_sets: int, ways: int):
    """The set-skewed streams the collapse targets."""
    rng = np.random.default_rng(31)
    traces = {}
    # One scorching set, working set fits: long all-hit spans.
    fitting = max(2, ways - 2)
    traces["single-set-fits"] = (
        rng.integers(0, fitting, N) * n_sets
    ).astype(np.int64)
    # One scorching set, working set overflows: constant conflict
    # misses exercise the sequential miss resolution and the
    # miss-density bail.
    traces["single-set-thrash"] = (
        rng.integers(0, 2 * ways, N) * n_sets
    ).astype(np.int64)
    # Two sets, burst ping-pong (spans alternate between the sets).
    burst = np.repeat(rng.integers(0, ways, N // 6 + 1), 6)[:N]
    traces["2set-pingpong"] = (
        burst % 2 + (burst // 2) * n_sets
    ).astype(np.int64)
    # memtier-style: hot fraction 0.99 over a handful of keys, with
    # a cold tail that lands in (and occasionally evicts from) the
    # hot sets.
    hot = (rng.integers(0, fitting, N) * n_sets).astype(np.int64)
    cold = rng.integers(0, 40 * n_sets * ways, N).astype(np.int64)
    traces["memtier-hot99"] = np.where(
        rng.random(N) < 0.99, hot, cold
    ).astype(np.int64)
    return traces


def _run_three(geometry, make, pages, is_write, scores, warmup):
    """Reference, fast without collapse, fast with collapse."""
    results = []
    for runner, kwargs in (
        (simulate, {}),
        (simulate_fast, {"set_run_collapse": False}),
        (simulate_fast, {"set_run_collapse": True}),
    ):
        cache = SetAssociativeCache(geometry)
        policy = make(pages, int(pages.max()) + 1)
        outcome = np.empty(pages.shape[0], dtype=np.uint8)
        stats = runner(
            cache,
            policy,
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup,
            outcome=outcome,
            **kwargs,
        )
        results.append((stats, cache, outcome))
    return results


def _assert_identical(reference, other, context):
    (ref_stats, ref_cache, ref_out) = reference
    (stats, cache, out) = other
    assert ref_stats == stats, f"{context}: counters diverge"
    np.testing.assert_array_equal(
        ref_cache.tags, cache.tags, err_msg=context
    )
    np.testing.assert_array_equal(
        ref_cache.dirty, cache.dirty, err_msg=context
    )
    np.testing.assert_array_equal(
        ref_cache.meta, cache.meta, err_msg=context
    )
    np.testing.assert_array_equal(
        ref_cache.stamp, cache.stamp, err_msg=context
    )
    np.testing.assert_array_equal(ref_out, out, err_msg=context)


@pytest.mark.parametrize(
    "name,make",
    COMMUTATIVE_FACTORIES + ORDER_DEPENDENT_FACTORIES,
    ids=[n for n, _ in COMMUTATIVE_FACTORIES]
    + [n for n, _ in ORDER_DEPENDENT_FACTORIES],
)
@pytest.mark.parametrize("n_sets,ways", [(64, 8), (8, 4), (1, 4)])
def test_collapse_bit_identical_on_set_skewed_traces(
    name, make, n_sets, ways
):
    geometry = _geometry(n_sets, ways)
    rng = np.random.default_rng(11)
    for trace_name, pages in _set_skewed_traces(n_sets, ways).items():
        is_write = rng.random(N) < 0.3
        scores = rng.standard_normal(N) * 0.4
        reference, plain, collapsed = _run_three(
            geometry, make, pages, is_write, scores, warmup=0.2
        )
        context = f"{name}/{trace_name}/{n_sets}x{ways}"
        _assert_identical(reference, plain, context + "/plain")
        _assert_identical(reference, collapsed, context + "/collapse")


@pytest.mark.parametrize(
    "name,make",
    COMMUTATIVE_FACTORIES + ORDER_DEPENDENT_FACTORIES,
    ids=[n for n, _ in COMMUTATIVE_FACTORIES]
    + [n for n, _ in ORDER_DEPENDENT_FACTORIES],
)
def test_collapse_with_short_spans_forced(name, make, monkeypatch):
    """Dropping the span-length threshold forces the resolver onto
    every multi-run span (short bursts included), covering the
    expansion/round interleaving that the default threshold skips."""
    import sys

    # The package re-exports simulate_fast the *function* under the
    # module's dotted name, so patch the module object directly.
    module = sys.modules["repro.cache.simulate_fast"]
    monkeypatch.setattr(module, "SET_RUN_MIN_SPAN_REPS", 2)
    geometry = _geometry(16, 4)
    rng = np.random.default_rng(13)
    for trace_name, pages in _set_skewed_traces(16, 4).items():
        is_write = rng.random(N) < 0.3
        scores = rng.standard_normal(N) * 0.4
        reference, _, collapsed = _run_three(
            geometry, make, pages, is_write, scores, warmup=0.1
        )
        _assert_identical(
            reference, collapsed, f"{name}/{trace_name}/forced"
        )


@pytest.mark.parametrize(
    "name,make",
    [p for p in COMMUTATIVE_FACTORIES if p[0] != "belady"],
    ids=[n for n, _ in COMMUTATIVE_FACTORIES if n != "belady"],
)
def test_collapse_resumable_chunked_replay(name, make):
    """Chunked replay with index_offset stays exact under collapse
    (spans straddling chunk boundaries split without losing parity)."""
    geometry = _geometry(4, 4)
    pages = _set_skewed_traces(4, 4)["memtier-hot99"]
    rng = np.random.default_rng(7)
    is_write = rng.random(N) < 0.3
    scores = rng.standard_normal(N) * 0.4

    one_cache = SetAssociativeCache(geometry)
    one_policy = make(pages, int(pages.max()) + 1)
    one = simulate_fast(
        one_cache, one_policy, pages, is_write, scores=scores,
        set_run_collapse=True,
    )

    chunk_cache = SetAssociativeCache(geometry)
    chunk_policy = make(pages, int(pages.max()) + 1)
    total = None
    step = 1_237  # odd step so spans straddle chunk boundaries
    for start in range(0, N, step):
        stop = min(start + step, N)
        stats = simulate_fast(
            chunk_cache,
            chunk_policy,
            pages[start:stop],
            is_write[start:stop],
            scores=scores[start:stop],
            index_offset=start,
            set_run_collapse=True,
        )
        total = stats if total is None else total.merge(stats)
    assert total == one, name
    np.testing.assert_array_equal(one_cache.tags, chunk_cache.tags)
    np.testing.assert_array_equal(one_cache.meta, chunk_cache.meta)
    np.testing.assert_array_equal(one_cache.stamp, chunk_cache.stamp)


@pytest.mark.parametrize(
    "name,make",
    [p for p in COMMUTATIVE_FACTORIES if p[0] != "belady"],
    ids=[n for n, _ in COMMUTATIVE_FACTORIES if n != "belady"],
)
def test_short_span_resumable_chunked_replay(name, make, monkeypatch):
    """Chunk-straddling resumable replay through the *cross-set
    short-span* path: with the span threshold forced *up* every
    multi-rep span counts as short, the density gate forced to zero
    makes them all batch through ``_resolve_short_spans``, and an
    odd chunk step splits spans across chunk boundaries.  Totals and
    final planes must stay bit-identical to both the unbatched fast
    path and the scalar reference."""
    import sys

    module = sys.modules["repro.cache.simulate_fast"]
    monkeypatch.setattr(module, "SET_RUN_MIN_SPAN_REPS", 10**9)
    monkeypatch.setattr(module, "SHORT_SPAN_MIN_ROUND_REPS", 0)
    fired = []
    inner = module._resolve_short_spans

    def counting(*args, **kwargs):
        fired.append(1)
        return inner(*args, **kwargs)

    monkeypatch.setattr(module, "_resolve_short_spans", counting)
    geometry = _geometry(8, 4)
    pages = _set_skewed_traces(8, 4)["2set-pingpong"]
    rng = np.random.default_rng(19)
    is_write = rng.random(N) < 0.3
    scores = rng.standard_normal(N) * 0.4

    reference, plain, _ = _run_three(
        geometry, make, pages, is_write, scores, warmup=0.0
    )

    chunk_cache = SetAssociativeCache(geometry)
    chunk_policy = make(pages, int(pages.max()) + 1)
    chunk_out = np.empty(N, dtype=np.uint8)
    total = None
    step = 1_237  # odd step so spans straddle chunk boundaries
    for start in range(0, N, step):
        stop = min(start + step, N)
        stats = simulate_fast(
            chunk_cache,
            chunk_policy,
            pages[start:stop],
            is_write[start:stop],
            scores=scores[start:stop],
            index_offset=start,
            outcome=chunk_out[start:stop],
            set_run_collapse=True,
            short_span_batching=True,
        )
        total = stats if total is None else total.merge(stats)
    chunked = (total, chunk_cache, chunk_out)
    assert fired, "short-span batcher never engaged"
    _assert_identical(reference, chunked, f"{name}/short-span/ref")
    _assert_identical(plain, chunked, f"{name}/short-span/plain")


@pytest.mark.parametrize("strategy", ["lru", "gmm-caching-eviction"])
def test_short_span_serving_workers_match(strategy, monkeypatch):
    """Parallel shard replay (thread workers share the patched
    module) through the forced short-span path is bit-identical to
    the sequential loop."""
    import sys

    from repro.core.config import (
        GmmEngineConfig,
        IcgmmConfig,
        ParallelConfig,
        ServingConfig,
    )
    from repro.core.engine import GmmPolicyEngine
    from repro.serving import IcgmmCacheService

    module = sys.modules["repro.cache.simulate_fast"]
    monkeypatch.setattr(module, "SET_RUN_MIN_SPAN_REPS", 10**9)
    monkeypatch.setattr(module, "SHORT_SPAN_MIN_ROUND_REPS", 0)

    n, train = 40_000, 4_000
    rng = np.random.default_rng(29)
    # Set-skewed bursts so short multi-rep spans actually form.
    burst = np.repeat(rng.integers(0, 3000, n // 5 + 1), 5)[:n]
    pages = burst.astype(np.int64)
    is_write = rng.random(n) < 0.3
    config = IcgmmConfig(
        gmm=GmmEngineConfig(n_components=4, max_train_samples=2_000)
    )
    features = np.column_stack(
        [
            pages[:train].astype(np.float64),
            np.zeros(train, dtype=np.float64),
        ]
    )
    engine = GmmPolicyEngine.train(
        features, config.gmm, np.random.default_rng(1)
    )

    def serve(workers):
        serving = ServingConfig(
            chunk_requests=4_096,
            n_shards=4,
            strategy=strategy,
            refresh_enabled=False,
            parallel=ParallelConfig(workers=workers, backend="thread"),
        )
        with IcgmmCacheService(
            engine,
            config=config,
            serving=serving,
            measure_from=train,
        ) as service:
            service.ingest(pages, is_write)
            return service.totals, service.summary()

    assert serve(4) == serve(1)


def test_order_dependent_kernels_refuse_set_runs():
    """SLRU promotions can demote *other* ways and decayed-LFU hits
    rescale the whole set row: both must refuse the collapse gate."""
    cache = SetAssociativeCache(_geometry(8, 4))
    assert kernel_for(SlruPolicy(), cache).supports_set_runs is False
    assert (
        kernel_for(LfuPolicy(decay=0.9), cache).supports_set_runs
        is False
    )
    assert kernel_for(LfuPolicy(), cache).supports_set_runs is True
    for name, make in COMMUTATIVE_FACTORIES:
        if name in ("belady", "combined"):
            continue
        kernel = kernel_for(make(np.zeros(4, np.int64), 8), cache)
        assert kernel.supports_set_runs is True, name


def test_collapse_faster_on_single_set_hammer():
    """The mechanism's raison d'etre: a single scorching set must run
    far faster collapsed than through the per-element rounds."""
    import time

    geometry = CacheGeometry()  # paper geometry
    n = 400_000
    rng = np.random.default_rng(3)
    pages = (rng.integers(0, 6, n) * geometry.n_sets).astype(np.int64)
    is_write = rng.random(n) < 0.3
    scores = rng.standard_normal(n)

    timing = {}
    for collapse in (True, False):
        cache = SetAssociativeCache(geometry)
        started = time.perf_counter()
        stats = simulate_fast(
            cache,
            LruPolicy(),
            pages,
            is_write,
            scores=scores,
            set_run_collapse=collapse,
        )
        timing[collapse] = (time.perf_counter() - started, stats)
    assert timing[True][1] == timing[False][1]
    # Generous bound for CI noise; typical observed speedup is ~6x.
    assert timing[True][0] < timing[False][0] / 1.5

"""Tests for the scan-resistant policies (SLRU, 2Q)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import (
    LruPolicy,
    SlruPolicy,
    TwoQPolicy,
    make_policy,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)


def _simulate(pages, policy, ways=4, sets=1):
    pages = np.asarray(pages)
    cache = SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )
    stats = simulate(
        cache, policy, pages, np.zeros(len(pages), dtype=bool)
    )
    return cache, stats


class TestSlru:
    def test_registered(self):
        assert isinstance(make_policy("slru"), SlruPolicy)

    def test_validation(self):
        with pytest.raises(ValueError, match="protected_fraction"):
            SlruPolicy(protected_fraction=1.0)
        with pytest.raises(ValueError, match="protected_fraction"):
            SlruPolicy(protected_fraction=-0.1)

    def test_scan_does_not_evict_protected_block(self):
        # Page 0 is hit (promoted to protected); a scan of new pages
        # churns probation but 0 survives.
        pages = [0, 0] + list(range(1, 10)) + [0]
        _, slru_stats = _simulate(pages, SlruPolicy(), ways=4)
        _, lru_stats = _simulate(pages, LruPolicy(), ways=4)
        # SLRU keeps page 0 through the scan: final access hits.
        assert slru_stats.hits == 2
        # LRU loses it.
        assert lru_stats.hits == 1

    def test_protected_demotion(self):
        # 4 ways, protected cap 2: promoting a third block demotes the
        # LRU protected block rather than growing the segment.
        policy = SlruPolicy(protected_fraction=0.5)
        cache, _ = _simulate(
            [0, 1, 2, 3, 0, 1, 2], policy, ways=4
        )
        protected = [
            way
            for way, m in enumerate(cache.meta[0])
            if m == 1.0
        ]
        assert len(protected) == 2

    def test_zero_protected_cap_degrades_gracefully(self):
        # protected_fraction small enough that the cap is 0: behaves
        # like LRU (no promotions), no crash.
        policy = SlruPolicy(protected_fraction=0.1)
        _, stats = _simulate([0, 0, 1, 2, 3, 4, 0], policy, ways=2)
        assert stats.accesses == 7


class TestTwoQ:
    def test_registered(self):
        assert isinstance(make_policy("2q"), TwoQPolicy)

    def test_validation(self):
        with pytest.raises(ValueError, match="a1_fraction"):
            TwoQPolicy(a1_fraction=0.0)

    def test_one_touch_blocks_evicted_first(self):
        # Pages 0 promoted (hit); 1, 2, 3 are one-touch; inserting 4
        # must evict from the FIFO (page 1), not the promoted page 0.
        cache, _ = _simulate([0, 0, 1, 2, 3, 4], TwoQPolicy(), ways=4)
        assert 0 in cache.resident_pages()
        assert 1 not in cache.resident_pages()

    def test_fifo_order_in_a1(self):
        # Never-hit blocks evict in fill order.
        cache, _ = _simulate([0, 1, 2, 3, 4, 5], TwoQPolicy(), ways=4)
        assert cache.resident_pages() == {2, 3, 4, 5}

    def test_am_fallback_when_a1_empty(self):
        # All blocks promoted: victim falls back to LRU over Am.
        pages = [0, 1, 2, 3] * 2 + [4]
        cache, _ = _simulate(pages, TwoQPolicy(), ways=4)
        assert 4 in cache.resident_pages()
        assert 0 not in cache.resident_pages()  # LRU of Am


class TestScanResistanceOnBurstyTrace:
    def test_slru_and_2q_beat_lru_under_scan_pollution(self, rng):
        # Hot working set + periodic one-touch scan bursts: the
        # scan-resistant policies must beat plain LRU.
        hot = rng.integers(0, 48, size=6000)
        trace = []
        scan_page = 1000
        for i in range(0, 6000, 600):
            trace.extend(hot[i : i + 600])
            trace.extend(range(scan_page, scan_page + 64))
            scan_page += 64
        for policy_name in ("slru", "2q"):
            _, smart = _simulate(
                list(trace), make_policy(policy_name), ways=8, sets=8
            )
            _, lru = _simulate(list(trace), LruPolicy(), ways=8, sets=8)
            assert smart.misses < lru.misses, policy_name

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=300))
    def test_property_valid_behaviour(self, seed):
        rng = np.random.default_rng(seed)
        pages = list(rng.integers(0, 40, size=400))
        for policy in (SlruPolicy(), TwoQPolicy()):
            cache, stats = _simulate(pages, policy, ways=4, sets=2)
            assert stats.accesses == 400
            assert cache.occupancy() <= 8
            # Segment markers stay in {0, 1}.
            for ways in cache.meta:
                assert all(m in (0.0, 1.0) for m in ways)

"""Tests for the trace-driven cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.policies import GmmCachePolicy, LruPolicy
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)


def _cache(ways=2, sets=2):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


def _run(pages, writes=None, cache=None, policy=None, **kwargs):
    pages = np.asarray(pages)
    if writes is None:
        writes = np.zeros(len(pages), dtype=bool)
    if cache is None:
        cache = _cache()
    if policy is None:
        policy = LruPolicy()
    return simulate(cache, policy, pages, np.asarray(writes), **kwargs)


class TestBasicCounting:
    def test_all_misses_on_distinct_pages(self):
        stats = _run([0, 1, 2, 3])
        assert stats.misses == 4
        assert stats.hits == 0
        assert stats.fills == 4

    def test_repeat_hits(self):
        stats = _run([0, 0, 0])
        assert stats.misses == 1
        assert stats.hits == 2

    def test_hits_plus_misses_equals_accesses(self):
        stats = _run([0, 1, 0, 2, 1, 5, 0])
        assert stats.accesses == 7

    def test_write_counters(self):
        stats = _run([0, 0, 1], writes=[True, True, False])
        assert stats.write_misses == 1  # first access to page 0
        assert stats.write_hits == 1  # second access to page 0

    def test_empty_trace(self):
        stats = _run([])
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0


class TestEvictionAccounting:
    def test_eviction_when_set_overflows(self):
        # Cache: 2 sets x 2 ways. Pages 0,2,4 all map to set 0.
        stats = _run([0, 2, 4])
        assert stats.evictions == 1

    def test_dirty_eviction_requires_writeback(self):
        stats = _run([0, 2, 4], writes=[True, False, False])
        assert stats.dirty_evictions == 1

    def test_clean_eviction_no_writeback(self):
        stats = _run([0, 2, 4], writes=[False, False, False])
        assert stats.evictions == 1
        assert stats.dirty_evictions == 0

    def test_write_hit_marks_dirty(self):
        # Page 0 written on its *hit*, then evicted -> dirty eviction.
        stats = _run([0, 0, 2, 4], writes=[False, True, False, False])
        assert stats.dirty_evictions == 1

    def test_lru_victim_order(self):
        # Set 0, 2 ways: fill 0, 2; touch 0; insert 4 -> evicts 2.
        cache = _cache()
        _run([0, 2, 0, 4], cache=cache)
        assert 0 in cache.resident_pages()
        assert 4 in cache.resident_pages()
        assert 2 not in cache.resident_pages()


class TestAdmission:
    def test_bypass_below_threshold(self):
        policy = GmmCachePolicy(threshold=0.5)
        stats = _run(
            [0, 0],
            policy=policy,
            scores=np.array([0.1, 0.1]),
        )
        # Low score: never cached, both accesses miss, both bypassed.
        assert stats.misses == 2
        assert stats.bypasses == 2
        assert stats.fills == 0

    def test_admit_at_threshold(self):
        policy = GmmCachePolicy(threshold=0.5)
        stats = _run(
            [0, 0],
            policy=policy,
            scores=np.array([0.5, 0.5]),
        )
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.bypasses == 0

    def test_eviction_only_admits_everything(self):
        policy = GmmCachePolicy(threshold=0.9, admission=False)
        stats = _run(
            [0, 0],
            policy=policy,
            scores=np.array([0.0, 0.0]),
        )
        assert stats.fills == 1
        assert stats.bypasses == 0


class TestScoreEviction:
    def test_lowest_score_evicted(self):
        # Set 0 ways=2: pages 0 (score .9), 2 (score .1); page 4
        # (score .5) arrives -> victim is page 2.
        cache = _cache()
        policy = GmmCachePolicy(threshold=0.0)
        _run(
            [0, 2, 4],
            cache=cache,
            policy=policy,
            scores=np.array([0.9, 0.1, 0.5]),
        )
        assert cache.resident_pages() == {0, 4, }

    def test_caching_only_falls_back_to_lru(self):
        # Same pattern but eviction=False: LRU evicts page 0 (oldest).
        cache = _cache()
        policy = GmmCachePolicy(threshold=0.0, eviction=False)
        _run(
            [0, 2, 4],
            cache=cache,
            policy=policy,
            scores=np.array([0.9, 0.1, 0.5]),
        )
        assert cache.resident_pages() == {2, 4}


class TestWarmup:
    def test_warmup_excluded_from_counters(self):
        stats = _run([0, 1, 0, 1], warmup_fraction=0.5)
        # First two accesses warm the cache silently; last two hit.
        assert stats.accesses == 2
        assert stats.hits == 2

    def test_warmup_still_updates_state(self):
        cache = _cache()
        _run([0, 1], cache=cache, warmup_fraction=0.99)
        assert cache.occupancy() == 2

    def test_invalid_warmup_fraction(self):
        with pytest.raises(ValueError, match="warmup_fraction"):
            _run([0], warmup_fraction=1.0)


class TestValidation:
    def test_shape_mismatch_pages_writes(self):
        cache = _cache()
        with pytest.raises(ValueError, match="same shape"):
            simulate(
                cache,
                LruPolicy(),
                np.array([1, 2]),
                np.array([False]),
            )

    def test_shape_mismatch_scores(self):
        cache = _cache()
        with pytest.raises(ValueError, match="scores"):
            simulate(
                cache,
                LruPolicy(),
                np.array([1, 2]),
                np.array([False, False]),
                scores=np.array([0.5]),
            )


class TestInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=63),
            min_size=1,
            max_size=300,
        ),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_occupancy_bounded_and_counts_consistent(
        self, pages, seed
    ):
        rng = np.random.default_rng(seed)
        writes = rng.random(len(pages)) < 0.3
        cache = _cache(ways=2, sets=4)
        stats = simulate(
            cache, LruPolicy(), np.array(pages), writes
        )
        assert cache.occupancy() <= cache.geometry.n_blocks
        assert stats.accesses == len(pages)
        assert stats.fills <= stats.misses
        assert stats.dirty_evictions <= stats.evictions
        assert stats.evictions <= stats.fills
        # Every resident page must actually appear in the trace.
        assert cache.resident_pages() <= set(pages)

    @settings(max_examples=20, deadline=None)
    @given(
        pages=st.lists(
            st.integers(min_value=0, max_value=31),
            min_size=1,
            max_size=200,
        )
    )
    def test_property_resident_set_maps_to_correct_sets(self, pages):
        cache = _cache(ways=2, sets=4)
        simulate(
            cache,
            LruPolicy(),
            np.array(pages),
            np.zeros(len(pages), dtype=bool),
        )
        for set_index, ways in enumerate(cache.tags):
            for tag in ways:
                if tag != -1:
                    assert tag % cache.geometry.n_sets == set_index

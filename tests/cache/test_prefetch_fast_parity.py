"""Differential parity: vectorized prefetch simulation vs scalar.

:func:`repro.cache.prefetch.simulate_with_prefetch_fast` must produce
the bit-identical :class:`CacheStats`, :class:`PrefetchStats` and
final cache planes of the scalar reference for every registered
policy kernel on every trace -- the same contract the chunked
simulator holds, extended to the prefetch path (whose miss-order-
dependent stream table forces the adaptive hit-scan design instead of
set reordering).
"""

import numpy as np
import pytest

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    CounterRandomPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    SlruPolicy,
    TwoQPolicy,
)
from repro.cache.prefetch import (
    StridePrefetcher,
    simulate_with_prefetch,
    simulate_with_prefetch_fast,
)
from repro.cache.setassoc import CacheGeometry, SetAssociativeCache

POLICY_FACTORIES = {
    "lru": lambda pages: LruPolicy(),
    "fifo": lambda pages: FifoPolicy(),
    "lfu": lambda pages: LfuPolicy(),
    "lfu-decay": lambda pages: LfuPolicy(decay=0.9),
    "clock": lambda pages: ClockPolicy(),
    "slru": lambda pages: SlruPolicy(),
    "2q": lambda pages: TwoQPolicy(),
    "counter-random": lambda pages: CounterRandomPolicy(seed=11),
    "belady": lambda pages: BeladyPolicy(pages),
    "gmm": lambda pages: GmmCachePolicy(threshold=0.4),
    "gmm-evict": lambda pages: GmmCachePolicy(
        admission=False, eviction=True
    ),
}

TRACES = ("sequential", "random", "mixed")


def _cache(ways=4, sets=8):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


def _trace(kind, n, seed):
    rng = np.random.default_rng(seed)
    if kind == "sequential":
        pages = np.arange(n) // 2
    elif kind == "random":
        pages = rng.integers(0, 150, n)
    else:
        sweep = np.arange(n)
        noise = rng.integers(0, 400, n)
        pages = np.where(rng.random(n) < 0.6, sweep, noise)
    is_write = rng.random(n) < 0.3
    scores = rng.random(n)
    return pages.astype(np.int64), is_write, scores


def _run_both(policy_key, kind, warmup=0.0, seed=3, n=1_200):
    pages, is_write, scores = _trace(kind, n, seed)
    results = []
    for run in (simulate_with_prefetch, simulate_with_prefetch_fast):
        cache = _cache()
        stats, prefetch_stats = run(
            cache,
            POLICY_FACTORIES[policy_key](pages),
            StridePrefetcher(degree=2, distance=4),
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup,
        )
        results.append((cache, stats, prefetch_stats))
    return results


@pytest.mark.parametrize("kind", TRACES)
@pytest.mark.parametrize("policy_key", sorted(POLICY_FACTORIES))
def test_fast_prefetch_matches_reference(policy_key, kind):
    (ref_cache, ref_stats, ref_pf), (
        fast_cache,
        fast_stats,
        fast_pf,
    ) = _run_both(policy_key, kind)
    assert fast_stats == ref_stats
    assert (fast_pf.issued, fast_pf.useful) == (
        ref_pf.issued,
        ref_pf.useful,
    )
    assert np.array_equal(ref_cache.tags, fast_cache.tags)
    assert np.array_equal(ref_cache.dirty, fast_cache.dirty)
    assert np.array_equal(ref_cache.meta, fast_cache.meta)
    assert np.array_equal(ref_cache.stamp, fast_cache.stamp)


@pytest.mark.parametrize("policy_key", ("lru", "clock", "gmm"))
def test_fast_prefetch_matches_with_warmup(policy_key):
    (_, ref_stats, ref_pf), (_, fast_stats, fast_pf) = _run_both(
        policy_key, "mixed", warmup=0.3
    )
    assert fast_stats == ref_stats
    assert (fast_pf.issued, fast_pf.useful) == (
        ref_pf.issued,
        ref_pf.useful,
    )


def test_unregistered_policy_falls_back_to_reference():
    """RandomPolicy has no kernel: both entry points take the scalar
    path and agree (same RNG stream draw order)."""
    pages, is_write, scores = _trace("mixed", 600, seed=5)
    ref_cache, fast_cache = _cache(), _cache()
    ref = simulate_with_prefetch(
        ref_cache,
        RandomPolicy(np.random.default_rng(9)),
        StridePrefetcher(),
        pages,
        is_write,
        scores=scores,
    )
    fast = simulate_with_prefetch_fast(
        fast_cache,
        RandomPolicy(np.random.default_rng(9)),
        StridePrefetcher(),
        pages,
        is_write,
        scores=scores,
    )
    assert fast[0] == ref[0]
    assert np.array_equal(ref_cache.tags, fast_cache.tags)


def test_fast_prefetch_validation():
    cache = _cache()
    with pytest.raises(ValueError, match="same shape"):
        simulate_with_prefetch_fast(
            cache,
            LruPolicy(),
            StridePrefetcher(),
            np.arange(4),
            np.zeros(3, dtype=bool),
        )
    with pytest.raises(ValueError, match="warmup_fraction"):
        simulate_with_prefetch_fast(
            cache,
            LruPolicy(),
            StridePrefetcher(),
            np.arange(4),
            np.zeros(4, dtype=bool),
            warmup_fraction=1.0,
        )


def test_empty_trace():
    stats, prefetch_stats = simulate_with_prefetch_fast(
        _cache(),
        LruPolicy(),
        StridePrefetcher(),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=bool),
    )
    assert stats.accesses == 0
    assert prefetch_stats.issued == 0

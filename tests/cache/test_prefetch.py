"""Tests for the stride prefetcher extension."""

import numpy as np
import pytest

from repro.cache.policies import LruPolicy
from repro.cache.prefetch import (
    PrefetchStats,
    StridePrefetcher,
    simulate_with_prefetch,
)
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)


def _cache(ways=4, sets=8):
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=ways * sets * 4096,
            block_bytes=4096,
            associativity=ways,
        )
    )


def _run(pages, prefetcher=None, **kwargs):
    pages = np.asarray(pages)
    writes = np.zeros(len(pages), dtype=bool)
    if prefetcher is None:
        prefetcher = StridePrefetcher()
    return simulate_with_prefetch(
        _cache(), LruPolicy(), prefetcher, pages, writes, **kwargs
    )


class TestStridePrefetcher:
    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)
        with pytest.raises(ValueError):
            StridePrefetcher(distance=0)
        with pytest.raises(ValueError):
            StridePrefetcher(table_size=0)

    def test_arms_after_degree_sequential_misses(self):
        prefetcher = StridePrefetcher(degree=2, distance=3)
        assert prefetcher.observe_miss(10) == []
        assert prefetcher.observe_miss(11) == [12, 13, 14]

    def test_random_misses_never_arm(self):
        prefetcher = StridePrefetcher(degree=2)
        rng = np.random.default_rng(0)
        for page in rng.integers(0, 10_000, size=100) * 7:
            assert prefetcher.observe_miss(int(page)) == []

    def test_table_eviction_keeps_size_bounded(self):
        prefetcher = StridePrefetcher(table_size=2)
        for page in (100, 200, 300, 400):
            prefetcher.observe_miss(page)
        assert len(prefetcher._table) <= 2

    def test_interleaved_streams_tracked(self):
        prefetcher = StridePrefetcher(degree=2, distance=1)
        prefetcher.observe_miss(10)
        prefetcher.observe_miss(500)
        assert prefetcher.observe_miss(11) == [12]
        assert prefetcher.observe_miss(501) == [502]


class TestSimulateWithPrefetch:
    def test_sequential_sweep_mostly_hits(self):
        # A long sequential scan: after the detector arms, prefetch
        # converts most demand misses into hits.
        pages = list(range(200))
        stats, prefetch_stats = _run(pages)
        baseline = simulate(
            _cache(),
            LruPolicy(),
            np.array(pages),
            np.zeros(200, dtype=bool),
        )
        assert stats.misses < baseline.misses / 2
        assert prefetch_stats.issued > 0
        assert prefetch_stats.accuracy > 0.8

    def test_random_traffic_unharmed_but_unhelped(self, rng):
        pages = list(rng.integers(0, 2000, size=1000) * 3)
        stats, prefetch_stats = _run(pages)
        baseline = simulate(
            _cache(),
            LruPolicy(),
            np.array(pages),
            np.zeros(1000, dtype=bool),
        )
        # No sequential structure: nothing issued, stats match.
        assert prefetch_stats.issued == 0
        assert stats.misses == baseline.misses

    def test_counters_consistent(self):
        pages = list(range(50)) + [0, 1, 2]
        stats, _ = _run(pages)
        assert stats.accesses == 53
        assert stats.dirty_evictions <= stats.evictions

    def test_accuracy_zero_when_nothing_issued(self):
        assert PrefetchStats().accuracy == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="same shape"):
            simulate_with_prefetch(
                _cache(),
                LruPolicy(),
                StridePrefetcher(),
                np.array([1, 2]),
                np.array([False]),
            )
        with pytest.raises(ValueError, match="warmup_fraction"):
            _run([1, 2], warmup_fraction=1.5)

"""Tests for stack-distance analysis and miss-rate curves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mrc import (
    COLD,
    lru_stack_distances,
    miss_rate_curve,
    working_set_curve,
)
from repro.cache.policies import LruPolicy
from repro.cache.setassoc import (
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)


class TestStackDistances:
    def test_cold_misses_are_inf(self):
        distances = lru_stack_distances(np.array([1, 2, 3]))
        assert np.all(np.isinf(distances))

    def test_immediate_reuse_distance_zero(self):
        distances = lru_stack_distances(np.array([5, 5]))
        assert distances[1] == 0.0

    def test_classic_example(self):
        # a b c b a: dist(b@3)=1 (c), dist(a@4)=2 (b, c).
        distances = lru_stack_distances(np.array([0, 1, 2, 1, 0]))
        assert distances[3] == 1.0
        assert distances[4] == 2.0

    def test_repeated_interleave(self):
        distances = lru_stack_distances(np.array([7, 8, 7, 8]))
        np.testing.assert_array_equal(
            distances[2:], [1.0, 1.0]
        )


class TestMissRateCurve:
    def test_validation(self):
        with pytest.raises(ValueError, match="capacities"):
            miss_rate_curve(np.array([1]), [])
        with pytest.raises(ValueError, match=">= 1"):
            miss_rate_curve(np.array([1]), [0])

    def test_empty_trace(self):
        assert miss_rate_curve(np.array([], dtype=int), [4]) == {4: 0.0}

    def test_monotone_in_capacity(self, rng):
        pages = rng.integers(0, 50, size=3000)
        curve = miss_rate_curve(pages, [1, 2, 4, 8, 16, 32, 64])
        values = [curve[c] for c in sorted(curve)]
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_large_capacity_leaves_only_cold_misses(self, rng):
        pages = rng.integers(0, 30, size=2000)
        curve = miss_rate_curve(pages, [10_000])
        assert curve[10_000] == pytest.approx(
            len(np.unique(pages)) / 2000
        )

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_matches_fully_associative_simulation(self, seed):
        # The analytic curve must agree exactly with the trace-driven
        # simulator configured as a fully-associative LRU cache.
        rng = np.random.default_rng(seed)
        pages = rng.integers(0, 25, size=600)
        capacity = int(rng.integers(1, 16))
        curve = miss_rate_curve(pages, [capacity])
        cache = SetAssociativeCache(
            CacheGeometry(
                capacity_bytes=capacity * 4096,
                block_bytes=4096,
                associativity=capacity,  # one set = fully associative
            )
        )
        stats = simulate(
            cache,
            LruPolicy(),
            pages,
            np.zeros(len(pages), dtype=bool),
        )
        assert curve[capacity] == pytest.approx(stats.miss_rate)


class TestWorkingSetCurve:
    def test_simple_windows(self):
        pages = np.array([1, 1, 2, 3, 3, 3])
        sizes = working_set_curve(pages, window=3)
        np.testing.assert_array_equal(sizes, [2, 1])

    def test_partial_last_window(self):
        sizes = working_set_curve(np.array([1, 2, 3]), window=2)
        np.testing.assert_array_equal(sizes, [2, 1])

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            working_set_curve(np.array([1]), 0)

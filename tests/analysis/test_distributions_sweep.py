"""Tests for Fig. 2 distribution analysis and ablation sweeps."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    gmm_spatial_fit,
    temporal_information_gain,
    workload_distributions,
)
from repro.analysis.sweep import (
    SweepPoint,
    sweep_n_components,
    sweep_threshold_quantile,
)
from repro.core.config import GmmEngineConfig, IcgmmConfig
from repro.traces import TracePreprocessor, get_workload


@pytest.fixture(scope="module")
def dlrm_trace():
    rng = np.random.default_rng(7)
    return get_workload("dlrm", scale=1 / 32).generate(40_000, rng)


class TestWorkloadDistributions:
    def test_fig2_panels(self, dlrm_trace):
        dist = workload_distributions("dlrm", dlrm_trace)
        assert dist.workload == "dlrm"
        assert dist.spatial.counts.sum() == len(dlrm_trace)
        assert dist.temporal.counts.sum() == len(dlrm_trace)

    def test_dlrm_multimodal_and_time_varying(self, dlrm_trace):
        # The two Fig. 2 claims, quantified.
        dist = workload_distributions("dlrm", dlrm_trace)
        assert dist.spatial_modality >= 2
        assert dist.temporal_nonuniformity > 0.05


class TestGmmSpatialFit:
    def test_mixture_beats_single_gaussian(self, dlrm_trace):
        fits = gmm_spatial_fit(
            dlrm_trace, component_counts=(1, 8), max_samples=5_000
        )
        # "Spatial distribution can be fitted with different Gaussian
        # functions": more components fit distinctly better.
        assert fits[8] > fits[1] + 0.1


class TestTemporalInformationGain:
    def test_phased_workload_has_positive_gain(self):
        rng = np.random.default_rng(3)
        trace = get_workload("memtier", scale=1 / 32).generate(
            60_000, rng
        )
        features = TracePreprocessor().process(trace).features
        gain = temporal_information_gain(
            features, n_components=8, max_samples=6_000
        )
        # Sec. 2.3: the temporal dimension carries real information
        # (the expiry bursts live in a fixed timestamp band).
        assert gain > 0.0

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError, match=r"\(N, 2\)"):
            temporal_information_gain(np.zeros((10, 3)))


def _fast_config():
    return IcgmmConfig(
        trace_length=40_000,
        gmm=GmmEngineConfig(
            n_components=8, max_iter=10, max_train_samples=6_000
        ),
    )


class TestSweeps:
    def test_sweep_n_components(self):
        points = sweep_n_components(
            "stream", component_counts=(4, 8), config=_fast_config()
        )
        assert [p.value for p in points] == [4, 8]
        for point in points:
            assert isinstance(point, SweepPoint)
            assert point.lru_miss_percent > 0

    def test_sweep_threshold(self):
        points = sweep_threshold_quantile(
            "stream", quantiles=(0.0, 0.05), config=_fast_config()
        )
        assert [p.value for p in points] == [0.0, 0.05]
        # reduction_points is derived consistently.
        for point in points:
            assert point.reduction_points == pytest.approx(
                point.lru_miss_percent - point.gmm_miss_percent
            )

"""Tests for text rendering of tables and figures."""

import numpy as np
import pytest

from repro.analysis.figures import (
    bar_chart,
    grouped_bar_chart,
    histogram_figure,
)
from repro.analysis.tables import render_dict_table, render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["workload", "miss"], [["memtier", 2.67], ["stream", 36.78]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "memtier" in lines[2]
        assert "2.67" in lines[2]

    def test_markdown_compatible(self):
        text = render_table(["a"], [["x"]])
        assert text.splitlines()[1].startswith("|-")

    def test_float_format(self):
        text = render_table(["v"], [[1.23456]], float_format="{:.4f}")
        assert "1.2346" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [["only-one"]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValueError, match="headers"):
            render_table([], [])

    def test_dict_table_column_order(self):
        text = render_dict_table(
            [{"b": 2, "a": 1}], columns=["a", "b"]
        )
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_dict_table_defaults_to_first_row_keys(self):
        text = render_dict_table([{"x": 1, "y": 2}])
        assert "x" in text.splitlines()[0]

    def test_dict_table_rejects_empty(self):
        with pytest.raises(ValueError, match="rows"):
            render_dict_table([])


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values(self):
        text = bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError, match="nothing"):
            bar_chart([], [])
        with pytest.raises(ValueError, match="width"):
            bar_chart(["a"], [1.0], width=0)


class TestGroupedBarChart:
    def test_layout(self):
        text = grouped_bar_chart(
            ["memtier", "stream"],
            {"lru": [2.67, 36.78], "gmm": [1.48, 30.64]},
        )
        assert "memtier:" in text
        assert "stream:" in text
        assert text.count("lru") == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="length mismatch"):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})
        with pytest.raises(ValueError, match="series"):
            grouped_bar_chart(["a"], {})


class TestHistogramFigure:
    def test_peak_reaches_height(self):
        text = histogram_figure(np.array([1, 4, 2]), height=4)
        lines = text.splitlines()
        assert lines[0][1] == "#"  # the peak column at the top row
        assert lines[-1] == "---"

    def test_title(self):
        text = histogram_figure(np.array([1]), title="dlrm")
        assert text.splitlines()[0] == "dlrm"

    def test_all_zero(self):
        text = histogram_figure(np.zeros(5), height=3)
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            histogram_figure(np.array([]))
        with pytest.raises(ValueError, match="height"):
            histogram_figure(np.array([1]), height=0)

"""Fleet replay: one workload over a multi-device CXL fabric.

Prepares a workload once through the shared staged pipeline, then
replays it over a four-device CXL fabric under each placement rule --
page-interleaved striping, contiguous ranges, and score-aware
placement that steers the GMM-hot pages onto the lowest-latency
links.  The fleet is heterogeneous (two near devices, two far ones)
so the placements actually price differently.

Run with::

    python examples/fabric_fleet.py
"""

from repro import FabricTopology, IcgmmConfig, StagedPipeline
from repro.analysis import render_table
from repro.core.config import PLACEMENTS, GmmEngineConfig
from repro.cxl import CxlFabric
from repro.traces.record import CACHE_LINE_SIZE

#: Two near devices (switchless) and two far ones (one switch hop).
LINK_OVERHEADS_NS = (110, 110, 290, 290)


def main() -> None:
    config = IcgmmConfig(
        trace_length=100_000,
        gmm=GmmEngineConfig(n_components=24, max_train_samples=15_000),
    )
    pipeline = StagedPipeline(config)
    print("Preparing the dlrm workload (shared staged pipeline)...")
    prepared = pipeline.prepare("dlrm")

    strategy = "gmm-caching-eviction"
    rows = []
    per_device = {}
    for placement in PLACEMENTS:
        topology = FabricTopology(
            n_devices=4,
            placement=placement,
            link_overhead_ns=LINK_OVERHEADS_NS,
        )
        fabric = CxlFabric(topology, config=config)
        result = fabric.run_prepared(prepared, strategy)
        totals = result.totals
        rows.append(
            [
                placement,
                100 * totals.miss_rate,
                result.average_latency_us,
                max(d.accesses for d in result.devices),
                min(d.accesses for d in result.devices),
            ]
        )
        per_device[placement] = result

    print()
    print(
        render_table(
            [
                "placement",
                "miss rate (%)",
                "avg latency (us)",
                "max dev load",
                "min dev load",
            ],
            rows,
        )
    )

    print("\nPer-device view of the score-aware placement:")
    result = per_device["score"]
    print(
        render_table(
            ["device", "link ns", "accesses", "miss rate (%)",
             "avg latency (us)"],
            [
                [
                    d.device_id,
                    d.link.request_latency_ns(CACHE_LINE_SIZE),
                    d.accesses,
                    100 * d.stats.miss_rate,
                    d.average_latency_us,
                ]
                for d in result.devices
            ],
        )
    )
    print(
        "\nScore-aware placement keeps the hottest pages on the"
        " near links; every sub-stream replayed at fast-path speed"
        " through the same pipeline stages the offline run uses."
    )


if __name__ == "__main__":
    main()

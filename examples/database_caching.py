"""Scenario: database page caching -- ICGMM against the policy zoo.

Runs the two database workloads (memtier, sysbench) under every
classical policy in the repository plus the GMM policy and the offline
Belady oracle, showing where the learned policy sits between LRU and
the theoretical optimum.

Run with::

    python examples/database_caching.py
"""

import numpy as np

from repro import IcgmmConfig, IcgmmSystem
from repro.analysis import render_table
from repro.cache import (
    BeladyPolicy,
    SetAssociativeCache,
    simulate,
)
from repro.cache.policies import make_policy
from repro.core.config import GmmEngineConfig


def main() -> None:
    config = IcgmmConfig(
        trace_length=150_000,
        gmm=GmmEngineConfig(n_components=24, max_train_samples=15_000),
    )
    system = IcgmmSystem(config)

    for workload in ("memtier", "sysbench"):
        print(f"=== {workload} ===")
        prepared = system.prepare(workload)
        rows = []

        # Classical policies.
        for name in ("lru", "fifo", "clock", "lfu", "random"):
            policy = (
                make_policy(name, rng=np.random.default_rng(0))
                if name == "random"
                else make_policy(name)
            )
            cache = SetAssociativeCache(config.geometry)
            stats = simulate(
                cache,
                policy,
                prepared.page_indices,
                prepared.is_write,
                warmup_fraction=config.warmup_fraction,
            )
            rows.append(
                [name.upper(), 100 * stats.miss_rate,
                 system.latency_model.average_access_time_us(stats)]
            )

        # The GMM policy (best Fig. 6 strategy for this workload).
        best = min(
            (
                system.run_strategy(prepared, s)
                for s in (
                    "gmm-caching",
                    "gmm-eviction",
                    "gmm-caching-eviction",
                )
            ),
            key=lambda o: o.stats.miss_rate,
        )
        rows.append(
            [
                f"ICGMM ({best.strategy.replace('gmm-', '')})",
                best.miss_rate_percent,
                best.average_time_us,
            ]
        )

        # Belady: the offline bound no online policy can beat.
        cache = SetAssociativeCache(config.geometry)
        oracle_stats = simulate(
            cache,
            BeladyPolicy(prepared.page_indices),
            prepared.page_indices,
            prepared.is_write,
            warmup_fraction=config.warmup_fraction,
        )
        rows.append(
            [
                "Belady (offline bound)",
                100 * oracle_stats.miss_rate,
                system.latency_model.average_access_time_us(
                    oracle_stats
                ),
            ]
        )
        print(
            render_table(
                ["policy", "miss rate (%)", "avg access (us)"], rows
            )
        )
        print()


if __name__ == "__main__":
    main()

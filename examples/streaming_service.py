"""Scenario: running ICGMM as a long-lived streaming cache service.

The paper's pipeline is one-shot: collect a trace, train the GMM,
freeze it in the FPGA weight buffer, evaluate.  A production CXL
memory-expansion device instead faces an *endless* request stream
whose distribution drifts -- after a failover, a rebuilt key-value
store serves a different slab region, and a frozen density model
now scores the new hot pages as cold, bypassing and evicting exactly
the traffic that matters.

This walkthrough drives the repository's serving subsystem
(:mod:`repro.serving`) through such an event and watches it react:

1. an offline engine is trained on pre-drift traffic (what the paper
   ships),
2. the stream is replayed in chunks through the sharded
   :class:`repro.serving.IcgmmCacheService`,
3. at the drift point the score-distribution detector fires, recent
   chunks are folded into the mixture by stepwise EM, and the
   refreshed engine is swapped in atomically (the software analogue
   of a weight-buffer reload),
4. post-drift miss rates are compared against the frozen deployment
   and an oracle retrained on the drifted distribution.

Run with::

    python examples/streaming_service.py
"""

import numpy as np

from repro.analysis import render_table
from repro.cache.setassoc import CacheGeometry
from repro.core.config import GmmEngineConfig, IcgmmConfig, ServingConfig
from repro.core.engine import GmmPolicyEngine
from repro.serving import IcgmmCacheService
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler

N_PHASE = 30_000
HOT_PAGES = 1_500
GMM = GmmEngineConfig(n_components=8, max_iter=20, max_train_samples=8_000)


def build_two_phase_stream(rng):
    """Hot slab at pages [0, 1500) -- then a failover moves it."""
    phase_a = ZipfSampler(
        base_page=0, n_pages=HOT_PAGES, alpha=1.2, write_fraction=0.2
    )
    phase_b = ZipfSampler(
        base_page=6_000, n_pages=HOT_PAGES, alpha=1.2, write_fraction=0.2
    )
    pages_a, writes_a = phase_a.sample(N_PHASE, rng)
    pages_b, writes_b = phase_b.sample(N_PHASE, rng)
    return (
        np.concatenate([pages_a, pages_b]),
        np.concatenate([writes_a, writes_b]),
    )


def train(pages, lo, hi, seed):
    """Offline-train an engine on the slice ``[lo, hi)``."""
    timestamps = transform_timestamps(hi - lo, mode="prose")
    features = np.column_stack(
        [pages[lo:hi].astype(float), timestamps.astype(float)]
    )
    return GmmPolicyEngine.train(
        features, GMM, np.random.default_rng(seed)
    )


def replay(engine, config, pages, writes, refresh, measure_from):
    """Stream the whole trace through a fresh service instance."""
    serving = ServingConfig(
        chunk_requests=4_096,
        n_shards=4,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=refresh,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
    )
    service = IcgmmCacheService(
        engine, config=config, serving=serving, measure_from=measure_from
    )
    service.ingest(pages, writes)
    return service


def main() -> None:
    rng = np.random.default_rng(0)
    pages, writes = build_two_phase_stream(rng)
    config = IcgmmConfig(
        geometry=CacheGeometry(
            capacity_bytes=64 * 8 * 4096, block_bytes=4096, associativity=8
        ),
        gmm=GMM,
    )
    # Post-drift steady state: skip the detection/refresh transient.
    measure_from = N_PHASE + int(0.4 * N_PHASE)

    print("Training the offline engine on pre-drift traffic...")
    frozen_engine = train(pages, 0, N_PHASE // 2, seed=1)
    print("Retraining the oracle on post-drift traffic...")
    oracle_engine = train(pages, N_PHASE, N_PHASE + N_PHASE // 2, seed=1)

    print("Replaying the stream through three deployments...\n")
    frozen = replay(
        frozen_engine, config, pages, writes, False, measure_from
    )
    online = replay(
        frozen_engine, config, pages, writes, True, measure_from
    )
    oracle = replay(
        oracle_engine, config, pages, writes, False, measure_from
    )

    for event in online.swaps:
        print(
            f"  engine swap at chunk {event.chunk_index}"
            f" (access {event.access_cursor:,}):"
            f" generation {event.generation},"
            f" new admission threshold {event.threshold:.4g}"
        )

    rows = [
        ["frozen offline", 100 * frozen.totals.miss_rate],
        ["online (drift-aware refresh)", 100 * online.totals.miss_rate],
        ["retrained oracle", 100 * oracle.totals.miss_rate],
    ]
    print()
    print(
        render_table(
            ["deployment", "post-drift miss rate %"],
            rows,
            float_format="{:.2f}",
        )
    )
    gap = frozen.totals.miss_rate - oracle.totals.miss_rate
    recovered = (
        (frozen.totals.miss_rate - online.totals.miss_rate) / gap
        if gap > 0
        else 1.0
    )
    print(
        f"\nThe online service recovers {100 * recovered:.0f}% of the"
        " miss-rate gap the frozen engine opens under drift, using"
        f" {len(online.swaps)} weight-buffer refresh(es) and no"
        " offline retraining."
    )


if __name__ == "__main__":
    main()

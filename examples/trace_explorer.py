"""Scenario: explore a workload trace before deploying ICGMM.

Prints the Fig. 2-style profile of any of the seven benchmark
workloads -- spatial histogram, temporal structure, hot-set
concentration, reuse-gap distribution -- the numbers an operator
checks to predict whether a density-based policy will pay off.

Run with::

    python examples/trace_explorer.py [workload] [n_requests]
"""

import sys

import numpy as np

from repro.analysis import histogram_figure, render_table
from repro.analysis.distributions import workload_distributions
from repro.traces import get_workload, hot_page_concentration, reuse_gaps
from repro.traces.workloads import WORKLOAD_NAMES


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "sysbench"
    n_requests = int(sys.argv[2]) if len(sys.argv) > 2 else 120_000
    if workload not in WORKLOAD_NAMES:
        print(
            f"unknown workload {workload!r};"
            f" choose from {', '.join(WORKLOAD_NAMES)}",
            file=sys.stderr,
        )
        raise SystemExit(2)

    rng = np.random.default_rng(42)
    trace = get_workload(workload, scale=1 / 32).generate(
        n_requests, rng
    )
    dist = workload_distributions(workload, trace, n_spatial_bins=90)
    gaps = reuse_gaps(trace)

    print(f"=== {workload} ({n_requests} requests) ===\n")
    print(
        histogram_figure(
            dist.spatial.counts,
            height=8,
            title="Spatial access density (Fig. 2 left)",
        )
    )
    print()
    rows = [
        ["footprint (4 KB pages)", trace.unique_page_count()],
        ["write fraction", trace.write_fraction()],
        ["spatial peaks", dist.spatial_modality],
        ["temporal nonuniformity", dist.temporal_nonuniformity],
        [
            "traffic on hottest 5% of pages",
            hot_page_concentration(trace, 0.05),
        ],
        ["median reuse gap (requests)", float(np.median(gaps))],
        [
            "reuse gaps beyond 512-block cache",
            float(np.mean(gaps > 512)),
        ],
    ]
    print(
        render_table(
            ["metric", "value"], rows, float_format="{:.3f}"
        )
    )
    print(
        "\nRules of thumb: multiple spatial peaks and high temporal"
        "\nnonuniformity favour the 2-D GMM; a large fraction of reuse"
        "\ngaps beyond the cache size is where score-based eviction"
        "\nbeats recency."
    )


if __name__ == "__main__":
    main()

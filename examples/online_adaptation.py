"""Scenario: adapting the policy engine to workload drift online.

The paper trains the GMM offline and freezes it in the FPGA weight
buffer.  Long-running services drift: after a failover or a cache
rebuild, a *different* slab region of a key-value store becomes hot,
and a frozen density model now scores the new hot pages as cold.
This example uses the repository's stepwise-EM extension
(:class:`repro.gmm.OnlineGmm`) to refresh the mixture from the live
request stream, comparing three engines on the post-drift traffic:

* the frozen offline model (what the paper ships),
* the online model (periodic weight-buffer refresh), and
* an oracle retrained on the drifted distribution (upper bound).

Run with::

    python examples/online_adaptation.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core.engine import FeatureScaler
from repro.gmm import EMTrainer, OnlineGmm
from repro.traces.preprocess import transform_timestamps
from repro.traces.synthetic import ZipfSampler


def _features(sampler, n, rng):
    """(page, transformed timestamp) features for a sampled stream."""
    pages, _ = sampler.sample(n, rng)
    timestamps = transform_timestamps(n, mode="prose")
    return np.column_stack(
        [pages.astype(float), timestamps.astype(float)]
    )


def main() -> None:
    rng = np.random.default_rng(0)
    # Phase A: the hot slab region sits at pages [0, 1500).
    # Phase B (after failover): a rebuilt store is hot at [3000, 4500).
    phase_a = ZipfSampler(base_page=0, n_pages=1_500, alpha=1.3)
    phase_b = ZipfSampler(base_page=3_000, n_pages=1_500, alpha=1.3)

    features_a = _features(phase_a, 40_000, rng)
    features_b = _features(phase_b, 40_000, rng)
    scaler = FeatureScaler.fit(
        np.concatenate([features_a, features_b])
    )
    scaled_a = scaler.transform(features_a)
    scaled_b = scaler.transform(features_b)

    print("Training the offline engine on phase A...")
    offline = EMTrainer(n_components=16, max_iter=40).fit(
        scaled_a[:20_000], rng
    ).model

    print("Streaming phase B through the online engine...")
    online = OnlineGmm.from_model(offline, step_exponent=0.6)
    for start in range(0, 30_000, 2_000):
        online.update(scaled_b[start : start + 2_000])

    print("Retraining the oracle on phase B...")
    oracle = EMTrainer(n_components=16, max_iter=40).fit(
        scaled_b[:20_000], rng
    ).model

    holdout = scaled_b[30_000:]
    rows = [
        [
            "frozen offline",
            float(np.mean(offline.log_score_samples(holdout))),
        ],
        [
            "online (stepwise EM)",
            float(np.mean(online.model.log_score_samples(holdout))),
        ],
        [
            "retrained oracle",
            float(np.mean(oracle.log_score_samples(holdout))),
        ],
    ]
    print()
    print(
        render_table(
            ["engine", "post-drift log-likelihood"],
            rows,
            float_format="{:.3f}",
        )
    )
    frozen_ll, online_ll, oracle_ll = (row[1] for row in rows)
    recovered = (online_ll - frozen_ll) / (oracle_ll - frozen_ll)
    print(
        f"\nThe online engine recovers {100 * recovered:.0f}% of the"
        " likelihood the frozen model loses to drift, with no offline"
        " retraining -- on hardware this is just a periodic weight-"
        "buffer refresh."
    )


if __name__ == "__main__":
    main()

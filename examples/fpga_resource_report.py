"""Scenario: FPGA deployment report for the two policy engines.

Reproduces Table 2 and the Sec. 5.1 utilisation figures from the
analytic hardware models, then validates the fixed-point score
pipeline against the float reference -- everything a hardware engineer
checks before committing to the HLS build.

Run with::

    python examples/fpga_resource_report.py
"""

import numpy as np

from repro.analysis import render_table
from repro.gmm import EMTrainer, QuantizedGmm
from repro.hardware import (
    FpgaSpec,
    GmmEngineTiming,
    LstmEngineTiming,
    engine_speedup,
    estimate_gmm_engine,
    estimate_icgmm_system,
    estimate_lstm_engine,
)


def main() -> None:
    fpga = FpgaSpec()
    gmm_resources = estimate_gmm_engine()
    lstm_resources = estimate_lstm_engine()
    gmm_timing = GmmEngineTiming()
    lstm_timing = LstmEngineTiming()

    print(f"Target platform: {fpga.name} @ {fpga.clock_mhz:.0f} MHz")
    print()
    print("Table 2 -- policy engine comparison:")
    print(
        render_table(
            ["engine", "BRAM", "DSP", "LUT", "FF", "latency"],
            [
                [
                    "LSTM",
                    lstm_resources.bram,
                    lstm_resources.dsp,
                    lstm_resources.lut,
                    lstm_resources.ff,
                    f"{lstm_timing.latency_us(fpga) / 1000:.1f} ms",
                ],
                [
                    "GMM",
                    gmm_resources.bram,
                    gmm_resources.dsp,
                    gmm_resources.lut,
                    gmm_resources.ff,
                    f"{gmm_timing.latency_us(fpga):.1f} us",
                ],
            ],
        )
    )
    speedup = engine_speedup(lstm_timing, gmm_timing, fpga)
    print(f"\nGMM latency advantage: {speedup:,.0f}x")

    system = estimate_icgmm_system()
    utilization = system.utilization(fpga)
    print(
        f"\nFull ICGMM system: {system.bram} BRAM"
        f" ({utilization['bram']:.0%}), {system.dsp} DSP"
        f" ({utilization['dsp']:.0%}) -- fits: {system.fits(fpga)}"
    )

    # Fixed-point validation: the quantized pipeline must preserve the
    # score ordering the policy relies on.
    print("\nValidating the fixed-point score pipeline...")
    rng = np.random.default_rng(0)
    hot = rng.normal(0.0, 1.0, size=(3000, 2))
    cold = rng.normal(6.0, 2.0, size=(1000, 2))
    model = EMTrainer(n_components=8).fit(
        np.concatenate([hot, cold]), rng
    ).model
    quantized = QuantizedGmm(model)
    probe = rng.uniform(-4, 10, size=(2000, 2))
    error = quantized.max_abs_error(model, probe)
    print(
        f"  max |quantized - float| score error over 2000 probes:"
        f" {error:.2e}"
    )


if __name__ == "__main__":
    main()

"""Scenario: validating the dataflow overlap on the cycle simulator.

Sec. 4.3 claims the free-running dataflow architecture hides the 3 us
GMM inference inside the 75 us SSD read.  This example runs the same
request stream through the discrete-event model of Fig. 5 twice --
with concurrent (dataflow) and sequential (naive) miss handling -- and
then routes a trace through the full CXL system model (host DRAM +
link + device).

Run with::

    python examples/dataflow_overlap.py
"""

import numpy as np

from repro.analysis import render_table
from repro.cache import LruPolicy, SetAssociativeCache
from repro.cache.setassoc import CacheGeometry
from repro.cxl import CxlMemoryDevice, CxlSystem, UnifiedAddressSpace
from repro.desim import DataflowTiming, IcgmmDataflow
from repro.traces import get_workload


def _small_cache():
    return SetAssociativeCache(
        CacheGeometry(
            capacity_bytes=256 * 4096, block_bytes=4096, associativity=8
        )
    )


def main() -> None:
    rng = np.random.default_rng(1)
    trace = get_workload("sysbench", scale=1 / 128).generate(4_000, rng)
    pages = trace.page_indices()
    writes = trace.is_write

    print("Cycle-level dataflow simulation (4,000 requests)...")
    rows = []
    results = {}
    for label, overlap in (("dataflow (overlapped)", True),
                           ("naive (sequential)", False)):
        dataflow = IcgmmDataflow(
            cache=_small_cache(),
            policy=LruPolicy(),
            timing=DataflowTiming(overlap=overlap),
        )
        result = dataflow.run(pages, writes)
        results[label] = result
        rows.append(
            [
                label,
                result.average_latency_us,
                result.percentile_us(99),
                result.total_time_ns / 1e6,
            ]
        )
    print(
        render_table(
            ["control scheme", "avg (us)", "p99 (us)", "total (ms)"],
            rows,
        )
    )
    fast = results["dataflow (overlapped)"]
    slow = results["naive (sequential)"]
    per_miss = (
        (slow.total_time_ns - fast.total_time_ns)
        / max(1, slow.stats.misses)
        / 1000.0
    )
    print(
        f"\nThe dataflow hides {per_miss:.2f} us per miss -- the GMM"
        " inference latency, exactly as Sec. 5.3 reports."
    )

    print("\nRouting the trace through the CXL system model...")
    space = UnifiedAddressSpace(
        host_bytes=16 << 20, device_bytes=1 << 32
    )
    device = CxlMemoryDevice(_small_cache(), LruPolicy())
    system = CxlSystem(space, device)
    # Rebase the trace into the device range of the unified space.
    rebased = trace.addresses + space.device_range.base
    from repro.traces.record import MemoryTrace

    routed = system.run_trace(MemoryTrace(rebased, writes))
    print(
        f"  {routed.device_accesses} device accesses,"
        f" avg end-to-end {routed.average_device_latency_us:.1f} us"
        f" (incl. {system.link.request_latency_ns(64)} ns CXL link)"
    )


if __name__ == "__main__":
    main()

"""Quickstart: run one ICGMM benchmark end to end.

Generates a synthetic memtier trace, preprocesses it per Sec. 3.1,
trains the GMM policy engine, simulates the DRAM cache under all four
Fig. 6 strategies and prints the miss rates and average SSD access
times.

Run with::

    python examples/quickstart.py
"""

from repro import IcgmmConfig, IcgmmSystem
from repro.analysis import render_table
from repro.core.config import GmmEngineConfig


def main() -> None:
    # A reduced profile so the example finishes in a few seconds; drop
    # the overrides for the full experiment configuration.
    config = IcgmmConfig(
        trace_length=120_000,
        gmm=GmmEngineConfig(n_components=24, max_train_samples=15_000),
    )
    system = IcgmmSystem(config)

    print("Running the ICGMM pipeline on the memtier workload...")
    result = system.run_benchmark("memtier")

    rows = []
    for strategy, outcome in result.outcomes.items():
        rows.append(
            [
                strategy,
                outcome.miss_rate_percent,
                outcome.average_time_us,
                outcome.stats.bypasses,
            ]
        )
    print()
    print(
        render_table(
            ["strategy", "miss rate (%)", "avg access (us)", "bypasses"],
            rows,
        )
    )
    print()
    best = result.best_gmm
    print(
        f"Best GMM strategy: {best.strategy} -- "
        f"{result.miss_reduction_points:.2f} points lower miss rate and "
        f"{result.time_reduction_percent:.1f}% lower average access time "
        "than LRU."
    )


if __name__ == "__main__":
    main()

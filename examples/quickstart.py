"""Quickstart: run one ICGMM benchmark end to end.

Walks the unified staged pipeline explicitly -- the same four stages
every entry point (offline system, streaming service, CXL fabric)
shares:

1. **Prepare**: generate a synthetic memtier trace, preprocess it per
   Sec. 3.1, train the GMM policy engine, score the stream.
2. **Score**: select each Fig. 6 strategy's score view and build its
   policy.
3. **Simulate**: replay the stream against the DRAM cache.
4. **Price**: convert the counters into Table 1 access times.

Run with::

    python examples/quickstart.py
"""

from repro import BenchmarkResult, IcgmmConfig, StagedPipeline
from repro.analysis import render_table
from repro.core.config import STRATEGIES, GmmEngineConfig


def main() -> None:
    # A reduced profile so the example finishes in a few seconds; drop
    # the overrides for the full experiment configuration.
    config = IcgmmConfig(
        trace_length=120_000,
        gmm=GmmEngineConfig(n_components=24, max_train_samples=15_000),
    )
    pipeline = StagedPipeline(config)

    print("Stage 1 (Prepare): trace + training + scoring...")
    prepared = pipeline.prepare("memtier")
    print(
        f"  {len(prepared):,} requests prepared,"
        f" engine {prepared.engine!r}"
    )

    print("Stages 2-4 (Score/Simulate/Price) per strategy...")
    rows = []
    outcomes = {}
    for strategy in STRATEGIES:
        outcome = pipeline.run_strategy(prepared, strategy)
        outcomes[strategy] = outcome
        rows.append(
            [
                strategy,
                outcome.miss_rate_percent,
                outcome.average_time_us,
                outcome.stats.bypasses,
            ]
        )
    print()
    print(
        render_table(
            ["strategy", "miss rate (%)", "avg access (us)", "bypasses"],
            rows,
        )
    )
    print()
    result = BenchmarkResult(workload="memtier", outcomes=outcomes)
    best = result.best_gmm
    print(
        f"Best GMM strategy: {best.strategy} -- "
        f"{result.miss_reduction_points:.2f} points lower miss rate and "
        f"{result.time_reduction_percent:.1f}% lower average access time "
        "than LRU."
    )


if __name__ == "__main__":
    main()

"""Scenario: sizing CXL memory expansion for DLRM inference.

Recommendation inference keeps terabyte-scale embedding tables on
cheap storage; the question a systems architect asks is how much of
the SSD penalty a smarter device cache removes.  This example:

1. generates a DLRM trace (embedding tables with rotating popularity
   plus per-batch dense-activation streaming),
2. shows the Fig. 2-style spatial histogram the GMM learns from,
3. compares LRU against the full ICGMM policy, including the latency
   breakdown that explains where the time goes.

Run with::

    python examples/dlrm_recommendation.py
"""

import numpy as np

from repro import IcgmmConfig, IcgmmSystem
from repro.analysis import histogram_figure, render_table
from repro.analysis.distributions import workload_distributions
from repro.core.config import GmmEngineConfig
from repro.hardware.latency import LatencyModel


def main() -> None:
    config = IcgmmConfig(
        trace_length=300_000,
        gmm=GmmEngineConfig(n_components=48, max_train_samples=25_000),
    )
    system = IcgmmSystem(config)

    print("Generating the DLRM trace...")
    rng = np.random.default_rng(config.seed)
    trace = system.generate_trace("dlrm", rng)
    dist = workload_distributions("dlrm", trace, n_spatial_bins=72)
    print()
    print(
        histogram_figure(
            dist.spatial.counts,
            height=8,
            title="Spatial access density (Fig. 2a style; "
            f"{dist.spatial_modality} separated peaks)",
        )
    )

    print()
    print("Training the GMM engine and simulating the cache...")
    result = system.run_benchmark("dlrm", trace=trace)
    lru = result.lru
    gmm = result.best_gmm
    print()
    print(
        render_table(
            ["policy", "miss rate (%)", "avg access (us)"],
            [
                ["LRU", lru.miss_rate_percent, lru.average_time_us],
                [
                    f"ICGMM ({gmm.strategy})",
                    gmm.miss_rate_percent,
                    gmm.average_time_us,
                ],
            ],
        )
    )

    model = LatencyModel()
    print()
    print("Latency breakdown (us per access):")
    for policy_name, outcome in (("LRU", lru), ("ICGMM", gmm)):
        parts = model.breakdown_us(outcome.stats)
        formatted = ", ".join(
            f"{name}={value:.2f}" for name, value in parts.items()
        )
        print(f"  {policy_name:6s} {formatted}")
    print()
    print(
        f"ICGMM serves embedding lookups {result.time_reduction_percent:.1f}%"
        " faster on average than the LRU-managed device cache."
    )


if __name__ == "__main__":
    main()
